//! End-to-end server-consolidation tests (the paper's Section 5.5): the
//! consolidated system serves the same peak load with fewer machines, less
//! power, and a bounded QoS loss.

use powerdial::analytic::consolidation::ConsolidationModel;
use powerdial::apps::{SearchApp, SwaptionsApp, VideoEncoderApp};
use powerdial::experiments::consolidation_study;
use powerdial::qos::QosLossBound;
use powerdial::{PowerDialConfig, PowerDialSystem};

#[test]
fn parsec_benchmarks_consolidate_four_machines_to_one() {
    for seed in [300u64, 301] {
        let app = SwaptionsApp::test_scale(seed);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let study =
            consolidation_study(&system, 4, QosLossBound::from_percent(5.0).unwrap(), 21).unwrap();
        assert_eq!(study.consolidated_machines, 1, "seed {seed}");
        assert!(study.provisioning_speedup >= 4.0);
        // ~66% savings at 25% utilization, ~75% at peak (the paper's numbers).
        let quarter = study
            .points
            .iter()
            .find(|p| (p.utilization - 0.25).abs() < 0.03)
            .unwrap();
        let quarter_savings = (quarter.original_power_watts - quarter.consolidated_power_watts)
            / quarter.original_power_watts;
        assert!(
            quarter_savings > 0.5,
            "savings fraction {quarter_savings:.2}"
        );
        assert!((study.peak_load_power_savings() - 0.75).abs() < 0.05);
        assert!(study.max_qos_loss_percent() <= 5.0 + 1e-6);
    }
}

#[test]
fn video_encoder_consolidates_with_bounded_quality_loss() {
    let app = VideoEncoderApp::test_scale(302);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let study =
        consolidation_study(&system, 4, QosLossBound::from_percent(10.0).unwrap(), 11).unwrap();
    assert!(study.consolidated_machines < 4);
    assert!(study.max_qos_loss_percent() <= 10.0 + 1e-6);
    // Power savings exist at every utilization level.
    for point in &study.points {
        assert!(point.consolidated_power_watts <= point.original_power_watts + 1e-9);
    }
}

#[test]
fn search_engine_drops_one_of_three_machines() {
    let app = SearchApp::test_scale(303);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let study =
        consolidation_study(&system, 3, QosLossBound::from_percent(30.0).unwrap(), 11).unwrap();
    assert_eq!(study.original_machines, 3);
    assert_eq!(study.consolidated_machines, 2);
    let savings = study.peak_load_power_savings();
    assert!(
        savings > 0.2 && savings < 0.45,
        "peak-load savings {savings:.2} should be roughly the paper's ~25-33%"
    );
}

#[test]
fn experiment_matches_the_analytic_model() {
    // The simulated sweep's end points agree with the closed-form equations
    // of Section 3 evaluated with the same parameters.
    let app = SwaptionsApp::test_scale(304);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let bound = QosLossBound::from_percent(5.0).unwrap();
    let study = consolidation_study(&system, 4, bound, 5).unwrap();

    let speedup = system
        .calibration()
        .knob_table(bound)
        .unwrap()
        .max_speedup();
    let model = ConsolidationModel::new(4, 1.0, 0.25, 220.0, 90.0).unwrap();
    assert_eq!(
        study.consolidated_machines,
        model.machines_needed(speedup).unwrap()
    );

    // At zero utilization both systems idle; the power difference is exactly
    // the idle power of the removed machines.
    let idle_point = &study.points[0];
    let removed = (study.original_machines - study.consolidated_machines) as f64;
    assert!(
        (idle_point.original_power_watts - idle_point.consolidated_power_watts - removed * 90.0)
            .abs()
            < 1e-6
    );
}
