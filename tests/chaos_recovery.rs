//! Daemon crash recovery under chaos: the PR's acceptance suite.
//!
//! The whole daemon side — attach broker plus sharded [`PowerDialDaemon`]
//! — runs in a forked child under a `Supervisor`; this test SIGKILLs it
//! at 50 seeded-random points in a 64-application beat stream and
//! restarts it, while every application keeps beating into its mapped
//! segment. The harness (shared with the `chaos` benchmark binary, see
//! `powerdial_bench::chaos`) enforces the recovery invariants inline:
//!
//! * no client ever reads a `Published` decision from a dead daemon;
//! * every served decision is sane (finite, in-table) — torn decision
//!   blocks are healed or masked, never leaked;
//! * zero beats are lost: everything emitted during each outage is still
//!   in the ring the successor adopts, and drains to it;
//! * every client reads a republished decision within a hard deadline of
//!   each restart.
//!
//! A failure names the seed, so the schedule can be replayed with
//! `POWERDIAL_CHAOS_SEED`.
//!
//! [`PowerDialDaemon`]: powerdial::control::daemon::PowerDialDaemon

#![cfg(target_os = "linux")]

use powerdial_bench::chaos::{percentile, run, ChaosConfig};

/// Concurrent instrumented applications (acceptance floor: 64).
const APPS: usize = 64;

/// SIGKILL/restart cycles (acceptance floor: 50).
const KILLS: usize = 50;

#[test]
fn fifty_seeded_daemon_kills_recover_with_zero_invariant_violations() {
    let mut config = ChaosConfig::new(APPS, KILLS);
    if let Ok(seed) = std::env::var("POWERDIAL_CHAOS_SEED") {
        config.seed = seed
            .trim()
            .parse()
            .or_else(|_| u64::from_str_radix(seed.trim().trim_start_matches("0x"), 16))
            .expect("POWERDIAL_CHAOS_SEED must be a u64 (decimal or 0x-hex)");
    }

    // `run` panics on any invariant violation; what comes back is a
    // passing run's shape, which the assertions below pin down.
    let report = run(&config);

    assert_eq!(report.kills.len(), KILLS);
    assert_eq!(
        report.incarnations,
        KILLS as u32 + 1,
        "every kill answered by exactly one restart"
    );
    assert_eq!(report.beats_dropped, 0, "zero beat loss across all kills");
    assert!(
        report.kills.iter().all(|kill| kill.beats_dropped == 0),
        "zero beat loss in every individual cycle"
    );
    assert!(
        report
            .kills
            .iter()
            .all(|kill| kill.client_recovery.len() == APPS),
        "every cycle measured every client's recovery"
    );

    // Bounded recovery, reported so a failing-trend run is diagnosable
    // from the test log alone.
    let samples: Vec<_> = report
        .kills
        .iter()
        .flat_map(|kill| kill.client_recovery.iter().copied())
        .collect();
    let worst_cycle = report
        .kills
        .iter()
        .map(|kill| kill.all_republished)
        .max()
        .unwrap();
    println!(
        "chaos: seed {:#x}, {} kills x {} apps, recovery p50 {:?} p99 {:?}, \
         slowest full-fleet recovery {:?}, {} beats pushed, 0 dropped",
        config.seed,
        KILLS,
        APPS,
        percentile(&samples, 50.0),
        percentile(&samples, 99.0),
        worst_cycle,
        report.beats_pushed,
    );
    assert!(
        worst_cycle < config.recovery_deadline,
        "recovery must stay within the configured bound"
    );
}
