//! End-to-end power-cap tests (the paper's Section 5.3 and 5.4): PowerDial
//! holds performance when the processor frequency drops, paying a bounded
//! QoS cost, while an uncontrolled run falls behind.

use powerdial::apps::{BodytrackApp, SwaptionsApp};
use powerdial::experiments::sim::{simulate_closed_loop, SimulationOptions};
use powerdial::experiments::{frequency_sweep, power_cap_response};
use powerdial::platform::{FrequencyState, PowerCapSchedule};
use powerdial::{PowerDialConfig, PowerDialSystem};

fn options(units: usize) -> SimulationOptions {
    SimulationOptions {
        work_units: units,
        window_size: 10,
        use_dynamic_knobs: true,
    }
}

#[test]
fn frequency_sweep_trades_power_for_qos() {
    // Figure 6: as the frequency drops, power drops and QoS loss rises while
    // performance stays near the target.
    let app = SwaptionsApp::test_scale(200);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let points = frequency_sweep(&app, &system, options(70)).unwrap();

    assert_eq!(points.len(), 7);
    let highest = points.first().unwrap();
    let lowest = points.last().unwrap();
    assert!(lowest.mean_power_watts < highest.mean_power_watts);
    let reduction = (highest.mean_power_watts - lowest.mean_power_watts) / highest.mean_power_watts;
    assert!(
        reduction > 0.08,
        "power reduction {reduction:.3} should be at least ~10%"
    );
    assert!(lowest.mean_qos_loss_percent >= highest.mean_qos_loss_percent);
    for point in &points {
        assert!(
            point.tail_normalized_performance > 0.85,
            "performance {:.3} at {} GHz",
            point.tail_normalized_performance,
            point.frequency_ghz
        );
    }
}

#[test]
fn power_cap_response_matches_figure_7() {
    let app = BodytrackApp::test_scale(201);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let series = power_cap_response(&app, &system, options(120)).unwrap();

    // With knobs the capped interval recovers close to the target; without
    // knobs it sits near the 2/3 capacity ratio.
    let with = series.capped_performance_with_knobs().unwrap();
    let without = series.capped_performance_without_knobs().unwrap();
    assert!(
        with > without + 0.1,
        "with {with:.3} vs without {without:.3}"
    );
    assert!(without < 0.8);
    assert!(series.peak_knob_gain() > 1.2);

    // Before the cap and well after it is lifted, the controlled run uses the
    // baseline setting (gain 1) and full quality.
    let pre_cap_gain = series.with_knobs[5].knob_gain;
    assert!((pre_cap_gain - 1.0).abs() < 1e-9);
    let final_qos = series.with_knobs.last().unwrap().qos_loss;
    assert!(final_qos < 0.05, "final qos loss {final_qos}");
}

#[test]
fn uncontrolled_run_slows_by_the_frequency_ratio() {
    let app = SwaptionsApp::test_scale(202);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let schedule = PowerCapSchedule::constant(FrequencyState::lowest());
    let outcome = simulate_closed_loop(
        &app,
        &system,
        &schedule,
        SimulationOptions {
            use_dynamic_knobs: false,
            ..options(50)
        },
    )
    .unwrap();
    let tail = outcome.tail_normalized_performance(20).unwrap();
    assert!(
        (tail - 2.0 / 3.0).abs() < 0.08,
        "uncontrolled capped performance {tail:.3} should match the 1.6/2.4 frequency ratio"
    );
    // No QoS is lost because the knobs never move.
    assert!(outcome.mean_qos_loss < 1e-9);
}

#[test]
fn controlled_capped_run_beats_uncontrolled_on_energy_per_unit() {
    // Complementary energy view: holding performance means the controlled run
    // finishes the same work in less time; its energy per work unit is not
    // dramatically worse despite running the machine busier.
    let app = SwaptionsApp::test_scale(203);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let schedule = PowerCapSchedule::constant(FrequencyState::lowest());

    let controlled = simulate_closed_loop(&app, &system, &schedule, options(60)).unwrap();
    let uncontrolled = simulate_closed_loop(
        &app,
        &system,
        &schedule,
        SimulationOptions {
            use_dynamic_knobs: false,
            ..options(60)
        },
    )
    .unwrap();

    assert!(controlled.duration_secs < uncontrolled.duration_secs);
    assert!(controlled.total_energy_joules < uncontrolled.total_energy_joules);
}
