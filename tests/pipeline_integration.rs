//! End-to-end pipeline tests: every benchmark application goes through the
//! full PowerDial workflow (identification, calibration, Pareto filtering,
//! runtime construction) and the resulting trade-off spaces have the shape
//! the paper reports in Section 5.2.

use powerdial::apps::{BodytrackApp, KnobbedApplication, SearchApp, SwaptionsApp, VideoEncoderApp};
use powerdial::experiments::tradeoff_analysis;
use powerdial::qos::QosLossBound;
use powerdial::{PowerDialConfig, PowerDialSystem};

fn build(app: &dyn KnobbedApplication) -> PowerDialSystem {
    PowerDialSystem::build(app, PowerDialConfig::default()).expect("pipeline builds")
}

#[test]
fn every_benchmark_completes_the_full_workflow() {
    let swaptions = SwaptionsApp::test_scale(100);
    let video = VideoEncoderApp::test_scale(100);
    let bodytrack = BodytrackApp::test_scale(100);
    let search = SearchApp::test_scale(100);
    let apps: Vec<&dyn KnobbedApplication> = vec![&swaptions, &video, &bodytrack, &search];

    for app in apps {
        let system = build(app);
        // Control variables were identified for every knob.
        let variables = system
            .control_variables()
            .expect("verification is enabled by default");
        assert_eq!(
            variables.variable_names().len(),
            app.parameter_space().parameter_count(),
            "{} should expose one control variable per knob",
            app.name()
        );
        // Calibration covered the whole space.
        assert_eq!(
            system.calibration().len(),
            app.parameter_space().setting_count()
        );
        // The knob table offers genuine speedups and contains the baseline.
        assert!(system.knob_table().max_speedup() > 1.1, "{}", app.name());
        assert!(system.knob_table().len() >= 2, "{}", app.name());
        // A runtime can be constructed from the calibrated table.
        let runtime = system.runtime(5.0, 5.0).expect("runtime builds");
        assert_eq!(runtime.quantum_heartbeats(), 20);
    }
}

#[test]
fn tradeoff_spaces_match_the_papers_shape() {
    // Section 5.2: swaptions reaches very large speedups at <2% loss, x264
    // and bodytrack reach several-x speedups at modest loss, swish++ is
    // limited to ~1.5x.
    let swaptions = SwaptionsApp::test_scale(101);
    let system = build(&swaptions);
    let analysis = tradeoff_analysis(&swaptions, &system).unwrap();
    assert!(analysis.max_training_speedup() > 20.0);
    // At test scale the trial counts are thousands rather than the paper's
    // hundreds of thousands, so Monte Carlo noise (and therefore QoS loss) is
    // proportionally larger; the structural claim — multi-x speedups at
    // single-digit-percent loss — still holds.
    let small_loss_big_speedup = analysis
        .pareto_training
        .iter()
        .any(|p| p.speedup > 3.0 && p.qos_loss_percent < 10.0);
    assert!(
        small_loss_big_speedup,
        "swaptions should offer cheap speedups"
    );

    let video = VideoEncoderApp::test_scale(101);
    let system = build(&video);
    let analysis = tradeoff_analysis(&video, &system).unwrap();
    assert!(
        analysis.max_training_speedup() > 2.0,
        "x264-style encoder should speed up by 2x+"
    );

    let bodytrack = BodytrackApp::test_scale(101);
    let system = build(&bodytrack);
    let analysis = tradeoff_analysis(&bodytrack, &system).unwrap();
    assert!(
        analysis.max_training_speedup() > 4.0,
        "bodytrack should speed up by 4x+"
    );

    let search = SearchApp::test_scale(101);
    let system = build(&search);
    let analysis = tradeoff_analysis(&search, &system).unwrap();
    let max = analysis.max_training_speedup();
    assert!(
        max > 1.2 && max < 2.5,
        "swish++ speedup {max} should be modest"
    );
}

#[test]
fn training_predicts_production_behaviour() {
    // Table 2: the correlation between training and production measurements
    // is close to 1 for the benchmarks with non-trivial trade-off spaces.
    let swaptions = SwaptionsApp::test_scale(102);
    let system = build(&swaptions);
    let analysis = tradeoff_analysis(&swaptions, &system).unwrap();
    assert!(analysis.speedup_correlation.unwrap() > 0.99);

    let bodytrack = BodytrackApp::test_scale(102);
    let system = build(&bodytrack);
    let analysis = tradeoff_analysis(&bodytrack, &system).unwrap();
    assert!(analysis.speedup_correlation.unwrap() > 0.9);
    // Production speedups should be close to the training speedups point by
    // point, not just correlated.
    for (train, prod) in analysis
        .pareto_training
        .iter()
        .zip(&analysis.pareto_production)
    {
        let ratio = prod.speedup / train.speedup;
        assert!(
            (0.5..2.0).contains(&ratio),
            "production speedup {:.2} vs training {:.2}",
            prod.speedup,
            train.speedup
        );
    }
}

#[test]
fn qos_bound_controls_the_runtime_table() {
    let video = VideoEncoderApp::test_scale(103);
    let strict = PowerDialSystem::build(
        &video,
        PowerDialConfig::default().with_qos_bound(QosLossBound::from_percent(1.0).unwrap()),
    )
    .unwrap();
    let loose = PowerDialSystem::build(
        &video,
        PowerDialConfig::default().with_qos_bound(QosLossBound::from_percent(50.0).unwrap()),
    )
    .unwrap();
    assert!(strict.knob_table().len() <= loose.knob_table().len());
    assert!(strict.knob_table().max_speedup() <= loose.knob_table().max_speedup() + 1e-12);
    // Every retained non-baseline point respects the bound.
    for point in strict.knob_table().iter() {
        if point.setting_index != strict.calibration().baseline().setting_index {
            assert!(point.qos_loss.percent() <= 1.0 + 1e-9);
        }
    }
}
