//! The power-cap experiment through the `DvfsBackend` seam produces
//! bit-identical frequency/QoS/power trajectories to the pre-refactor
//! direct path.
//!
//! `simulate_closed_loop` now actuates frequency through
//! `DvfsActuator` → `SimBackend`; the pre-backend loop — direct
//! `set_frequency` on the frozen `platform::naive` machine and ladder — is
//! preserved as `simulate_closed_loop_naive`. Running both over the same
//! scenarios and comparing every f64 by bit pattern proves the backend seam
//! added exactly nothing to the numerics.

use powerdial::apps::{BodytrackApp, SwaptionsApp};
use powerdial::experiments::sim::{
    simulate_closed_loop, simulate_closed_loop_naive, ClosedLoopOutcome, SimulationOptions,
};
use powerdial::heartbeats::Timestamp;
use powerdial::platform::{naive, PowerCapSchedule};
use powerdial::{PowerDialConfig, PowerDialSystem};

fn assert_bits(label: &str, step: usize, a: f64, b: f64) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{label} diverged at step {step}: {a} vs {b}"
    );
}

fn assert_outcomes_bit_identical(new: &ClosedLoopOutcome, old: &ClosedLoopOutcome) {
    assert_eq!(new.steps.len(), old.steps.len());
    for (i, (n, o)) in new.steps.iter().zip(&old.steps).enumerate() {
        assert_bits("time_secs", i, n.time_secs, o.time_secs);
        assert_bits("latency_secs", i, n.latency_secs, o.latency_secs);
        assert_bits("knob_gain", i, n.knob_gain, o.knob_gain);
        assert_bits("qos_loss", i, n.qos_loss, o.qos_loss);
        assert_bits("frequency_ghz", i, n.frequency_ghz, o.frequency_ghz);
        match (n.normalized_performance, o.normalized_performance) {
            (Some(a), Some(b)) => assert_bits("normalized_performance", i, a, b),
            (None, None) => {}
            (a, b) => panic!("normalized_performance diverged at step {i}: {a:?} vs {b:?}"),
        }
    }
    assert_bits("target_rate", 0, new.target_rate, old.target_rate);
    assert_bits(
        "mean_power_watts",
        0,
        new.mean_power_watts,
        old.mean_power_watts,
    );
    assert_bits("mean_qos_loss", 0, new.mean_qos_loss, old.mean_qos_loss);
    assert_bits(
        "total_energy_joules",
        0,
        new.total_energy_joules,
        old.total_energy_joules,
    );
    assert_bits("duration_secs", 0, new.duration_secs, old.duration_secs);
}

fn options(units: usize, use_dynamic_knobs: bool) -> SimulationOptions {
    SimulationOptions {
        work_units: units,
        window_size: 10,
        use_dynamic_knobs,
    }
}

#[test]
fn power_cap_trajectory_is_bit_identical_through_the_backend_seam() {
    // The paper's power-cap scenario (cap imposed at one quarter, lifted at
    // three quarters), with and without dynamic knobs.
    let app = BodytrackApp::test_scale(97);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
    let nominal = Timestamp::from_secs(120);
    let schedule = PowerCapSchedule::paper_power_cap(nominal);
    let naive_schedule = naive::PowerCapSchedule::paper_power_cap(nominal);

    for use_knobs in [true, false] {
        let new = simulate_closed_loop(&app, &system, &schedule, options(120, use_knobs)).unwrap();
        let old =
            simulate_closed_loop_naive(&app, &system, &naive_schedule, options(120, use_knobs))
                .unwrap();
        assert_outcomes_bit_identical(&new, &old);
    }
}

#[test]
fn constant_cap_trajectories_are_bit_identical_at_every_ladder_state() {
    // The Figure 6 sweep shape: a constant cap at each of the seven states.
    let app = SwaptionsApp::test_scale(98);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();

    for index in 0..7 {
        let state = powerdial::platform::FrequencyState::from_index(index).unwrap();
        let naive_state = naive::FrequencyState::from_index(index).unwrap();
        let new = simulate_closed_loop(
            &app,
            &system,
            &PowerCapSchedule::constant(state),
            options(40, true),
        )
        .unwrap();
        let old = simulate_closed_loop_naive(
            &app,
            &system,
            &naive::PowerCapSchedule::constant(naive_state),
            options(40, true),
        )
        .unwrap();
        assert_outcomes_bit_identical(&new, &old);
    }
}

#[test]
fn a_busy_multi_event_schedule_is_bit_identical() {
    // Beyond the paper shape: several cap events, out-of-order insertion,
    // uncontrolled run.
    let app = SwaptionsApp::test_scale(99);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();

    let points = [(40u64, 6usize), (10, 3), (25, 1), (55, 0), (70, 4)];
    let mut schedule = PowerCapSchedule::constant(powerdial::platform::FrequencyState::highest());
    let mut naive_schedule = naive::PowerCapSchedule::constant(naive::FrequencyState::highest());
    for (secs, index) in points {
        schedule = schedule.with_event(
            Timestamp::from_secs(secs),
            powerdial::platform::FrequencyState::from_index(index).unwrap(),
        );
        naive_schedule = naive_schedule.with_event(
            Timestamp::from_secs(secs),
            naive::FrequencyState::from_index(index).unwrap(),
        );
    }

    for use_knobs in [true, false] {
        let new = simulate_closed_loop(&app, &system, &schedule, options(90, use_knobs)).unwrap();
        let old =
            simulate_closed_loop_naive(&app, &system, &naive_schedule, options(90, use_knobs))
                .unwrap();
        assert_outcomes_bit_identical(&new, &old);
    }
}
