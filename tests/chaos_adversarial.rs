//! Fault containment under a hostile fleet: the PR's acceptance suite.
//!
//! A 64-application fleet beats into an in-process sharded daemon while a
//! seeded campaign performs 50 hostile injections — app panics, poison
//! latency streams, beat floods past `drain_cap`, shared-memory header
//! scribbling, worker-thread kills, and register/vanish churn. A
//! fault-free twin daemon runs the same beat schedule in lockstep. The
//! harness (`powerdial_bench::adversarial`) enforces the containment
//! invariants inline and panics on violation:
//!
//! * the daemon never aborts (the campaign runs in this process);
//! * every quarantine blames an attacked app — panics within one
//!   quantum, poison streams within a typed-overflow deadline;
//! * every killed worker is resurrected at its index with survivors
//!   migrated;
//! * every unaffected app's decision observables stay **bit-identical**
//!   to the no-fault twin's.
//!
//! A failure names the seed, so the schedule can be replayed with
//! `POWERDIAL_CHAOS_SEED`. On top of the harness invariants, this test
//! pins the incident telemetry: the attacked daemon's JSON snapshot is
//! pushed through the strict gate parser and its `incidents` section
//! must agree with what the campaign actually did.

#![cfg(target_os = "linux")]

use powerdial_bench::adversarial::{run_adversarial, seed_from_env, AdversarialConfig};
use powerdial_bench::gate::Json;

/// Concurrent instrumented applications (acceptance floor: 64).
const APPS: usize = 64;

/// Hostile injections (acceptance floor: 50).
const INJECTIONS: usize = 50;

#[test]
fn fifty_hostile_injections_are_contained_and_neighbors_stay_bit_identical() {
    let mut config = AdversarialConfig::new(APPS, INJECTIONS);
    config.seed = seed_from_env(config.seed);

    // `run_adversarial` panics on any containment violation; what comes
    // back is a passing campaign's shape, pinned below.
    let report = run_adversarial(&config);

    assert!(
        report.quanta >= INJECTIONS as u64,
        "one quantum per injection minimum"
    );
    assert!(
        report.compared_apps >= APPS / 2,
        "the campaign must leave at least half the fleet untouched for comparison \
         ({} compared)",
        report.compared_apps
    );
    assert!(
        report.snapshots_compared > 0,
        "bit-equality must actually have been exercised"
    );
    println!(
        "adversarial: {} quanta, {} quarantined, {} worker kills, {} floods, \
         {} scribbles, {} churned, {} apps compared over {} snapshots (seed {:#x})",
        report.quanta,
        report.quarantined,
        report.worker_kills,
        report.floods,
        report.scribbles,
        report.churned,
        report.compared_apps,
        report.snapshots_compared,
        config.seed
    );

    // Satellite: incident counters flow end-to-end — struct → JSON →
    // strict parser — and agree with the campaign's own ledger.
    let snapshot = Json::parse(&report.telemetry_json).expect("telemetry snapshot parses");
    let incidents = snapshot
        .get("incidents")
        .expect("snapshot has an incidents section");
    let count = |key: &str| -> u64 {
        incidents
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("incidents.{key} is a number")) as u64
    };
    assert_eq!(count("shard_deaths"), report.worker_kills);
    assert_eq!(count("shard_respawns"), report.worker_kills);
    assert_eq!(
        count("quarantined_apps"),
        report.quarantined as u64,
        "current-quarantine gauge matches the report"
    );
    assert!(
        count("apps_migrated") >= report.worker_kills,
        "every kill migrated at least one surviving app"
    );
}
