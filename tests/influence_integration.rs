//! Integration tests of dynamic knob identification: influence tracing over
//! the benchmark applications produces exactly the expected control
//! variables, and applications that violate the paper's conditions are
//! rejected.

use powerdial::apps::{BodytrackApp, KnobbedApplication, SearchApp, SwaptionsApp, VideoEncoderApp};
use powerdial::influence::{
    ControlVariableAnalysis, InfluenceError, ParamId, Tracer, VariableValue,
};

#[test]
fn every_benchmark_yields_one_control_variable_per_knob() {
    let swaptions = SwaptionsApp::test_scale(400);
    let video = VideoEncoderApp::test_scale(400);
    let bodytrack = BodytrackApp::test_scale(400);
    let search = SearchApp::test_scale(400);
    let apps: Vec<(&dyn KnobbedApplication, Vec<&str>)> = vec![
        (&swaptions, vec!["sm_control"]),
        (
            &video,
            vec!["merange_control", "ref_control", "subme_control"],
        ),
        (&bodytrack, vec!["layers_control", "particles_control"]),
        (&search, vec!["max_results_control"]),
    ];

    for (app, expected_variables) in apps {
        let space = app.parameter_space();
        let traces: Vec<_> = space.settings().map(|s| app.trace_run(&s)).collect();
        let params: Vec<ParamId> = (0..space.parameter_count()).map(ParamId::new).collect();
        let analysis = ControlVariableAnalysis::new(params).require_all_parameters_used(true);
        let set = analysis.analyze(&traces).unwrap();
        assert_eq!(set.variable_names(), expected_variables, "{}", app.name());
        assert_eq!(set.setting_count(), space.setting_count());

        // The recorded values follow the parameter settings: setting 0 maps
        // each control variable to the corresponding parameter's first value.
        let first_setting = space.setting(0).unwrap();
        for (parameter, value) in first_setting.iter() {
            let variable = format!("{parameter}_control");
            assert_eq!(
                set.value(0, &variable),
                Some(&VariableValue::Scalar(value)),
                "{}: {variable}",
                app.name()
            );
        }

        // The report names the parameter behind every control variable.
        let report = set.report();
        assert_eq!(report.application, app.name());
        for entry in &report.entries {
            assert_eq!(entry.parameters.len(), 1);
            assert!(entry.variable.starts_with(&entry.parameters[0]));
            assert!(!entry.read_sites.is_empty());
            assert!(!entry.write_sites.is_empty());
        }
    }
}

/// Builds a trace of a misbehaving application that recomputes its "control
/// variable" inside the main loop, violating the constant condition.
fn trace_with_main_loop_write(value: f64) -> powerdial::influence::TraceLog {
    let mut tracer = Tracer::new("misbehaving");
    let knob = tracer.register_parameter("quality");
    let variable = tracer.declare_variable("effort");
    let initial = tracer.parameter_value(knob, value);
    tracer.write_variable(variable, initial, "startup").unwrap();
    tracer.first_heartbeat();
    for i in 0..3 {
        let current = tracer.read_variable(variable, "loop").unwrap();
        if i == 1 {
            // Adaptive re-tuning inside the loop: PowerDial must reject this,
            // because poking the variable from outside would be overwritten.
            tracer
                .write_variable(variable, current * 0.5, "adaptive_retune")
                .unwrap();
        }
        tracer.heartbeat();
    }
    tracer.finish()
}

#[test]
fn applications_that_mutate_control_variables_are_rejected() {
    let traces = vec![
        trace_with_main_loop_write(1.0),
        trace_with_main_loop_write(2.0),
    ];
    let analysis = ControlVariableAnalysis::new([ParamId::new(0)]);
    let err = analysis.analyze(&traces).unwrap_err();
    assert!(matches!(
        err,
        InfluenceError::NonConstantVariable { ref site, .. } if site == "adaptive_retune"
    ));
}

#[test]
fn parameters_that_do_not_reach_the_main_loop_are_rejected() {
    // A configuration parameter that only affects start-up behaviour (never
    // read after the first heartbeat) produces no control variable.
    let mut tracer = Tracer::new("startup-only");
    let knob = tracer.register_parameter("log_verbosity");
    let variable = tracer.declare_variable("verbosity");
    let value = tracer.parameter_value(knob, 3.0);
    tracer.write_variable(variable, value, "startup").unwrap();
    tracer.first_heartbeat();
    tracer.heartbeat();
    let trace = tracer.finish();

    let analysis = ControlVariableAnalysis::new([ParamId::new(0)]);
    assert_eq!(
        analysis.analyze(&[trace]),
        Err(InfluenceError::NoControlVariables)
    );
}
