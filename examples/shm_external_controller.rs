//! The paper's deployment shape, end to end: an instrumented application
//! in **one OS process** emits Application Heartbeats into a shared-memory
//! segment, and the PowerDial controller in **another process** attaches
//! to the segment, observes the heart rate, and actuates dynamic knobs.
//!
//! Concretely: the parent creates a memfd/mmap-backed segment (tmpfile
//! fallback), registers its consumer side with a `PowerDialDaemon`, then
//! forks. The child attaches the producer side through the inherited
//! mapping and beats at ~20 beats/s against the controller's 30 beats/s
//! target — too slow, so the daemon dials in faster knob settings. When
//! the child exits, the parent's liveness check sees the stale PID and
//! reaps the abandoned segment.
//!
//! Run with `cargo run --example shm_external_controller`.

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use std::sync::Arc;

    use powerdial::control::daemon::{DaemonConfig, PowerDialDaemon};
    use powerdial::control::{ControllerConfig, RuntimeConfig};
    use powerdial::heartbeats::channel::BeatSample;
    use powerdial::heartbeats::shm::process::{fork_child, ChildExit};
    use powerdial::heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
    use powerdial::heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
    use powerdial::knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
    use powerdial::qos::{QosLoss, QosLossBound};

    /// Beats the child application emits before exiting.
    const CHILD_BEATS: u64 = 400;
    /// The application's (simulated) uncontrolled heart rate: 50 ms/beat.
    const BEAT_PERIOD_MS: u64 = 50;

    // A synthetic calibrated knob table: five settings trading up to 4x
    // speedup for up to 6% QoS loss (what `PowerDialSystem::build` would
    // produce from a real calibration run).
    let speedups = [1.0, 1.5, 2.0, 3.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("sims", values, 0.0)?)
        .build()?;
    let points: Vec<CalibrationPoint> = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    let table = KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED)?;

    // 1. Controller process: create the shared segment and attach the
    //    consumer side before the application even exists.
    let segment = Arc::new(Segment::create(SegmentGeometry::for_beat_samples(256)?)?);
    println!(
        "controller: created {} segment ({} bytes, {} slots)",
        segment.backing_kind(),
        segment.len(),
        segment.geometry().capacity()
    );
    let consumer = ShmConsumer::attach(Arc::clone(&segment))?;

    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: 256,
        window_size: 20,
    })?;
    let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0)?);
    let app = daemon.register_shm(config, table, consumer)?;
    println!(
        "controller: registered shm app {:?} (target 30 beats/s)\n",
        app.id()
    );

    // 2. Fork the application process. The child inherits the mapping,
    //    attaches the producer side, and beats — it knows nothing about
    //    the controller beyond the segment ABI.
    let child = fork_child(|| {
        let Ok(mut producer) = ShmProducer::attach(Arc::clone(&segment)) else {
            return 1;
        };
        let mut now = Timestamp::ZERO;
        for tag in 0..CHILD_BEATS {
            let latency = TimestampDelta::from_millis(if tag == 0 { 0 } else { BEAT_PERIOD_MS });
            now += latency;
            let mut sample = BeatSample {
                tag: HeartbeatTag(tag),
                timestamp: now,
                latency,
            };
            // Wait-free push with bounded spinning on backpressure.
            let mut retries: u64 = 10_000_000_000;
            loop {
                match producer.try_push(sample) {
                    Ok(()) => break,
                    Err(rejected) => {
                        sample = rejected;
                        retries -= 1;
                        if retries == 0 {
                            return 2;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            // Pace the (simulated-time) stream against the real controller:
            // after each 20-beat quantum, wait for the daemon to drain, so
            // the printed control trajectory shows distinct quanta instead
            // of one giant catch-up batch.
            if tag % 20 == 19 {
                let mut retries: u64 = 10_000_000_000;
                while producer.in_flight() > 0 {
                    retries -= 1;
                    if retries == 0 {
                        return 3;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        0
    })?;
    println!(
        "controller: forked application process (pid {})",
        child.pid()
    );

    // 3. The control loop: drain the segment once per actuation quantum
    //    and let the daemon decide. 20 beats/s observed against a 30
    //    beats/s target forces the controller off the default setting.
    //    The reaper doubles as the loop's liveness escape: if the
    //    application dies early (for any reason), its segment drains dry,
    //    `reap_dead` fires, and the controller stops waiting instead of
    //    spinning forever.
    let mut quantum = 0u64;
    let mut reaped = Vec::new();
    while app.beats_processed() < CHILD_BEATS && reaped.is_empty() {
        let beats = daemon.tick();
        if beats > 0 {
            quantum += 1;
            if quantum % 5 == 1 {
                println!(
                    "quantum {:>3}: {:>3} beats drained  gain {:>5.2}x  achieved {:>5.2}x  qos loss {:>6.3}%",
                    quantum,
                    beats,
                    app.latest_gain().unwrap_or(1.0),
                    app.achieved_speedup().unwrap_or(1.0),
                    app.expected_qos_loss().unwrap_or(0.0) * 100.0,
                );
            }
        }
        reaped = daemon.reap_dead();
        std::hint::spin_loop();
    }
    let status = child.wait()?;
    if app.beats_processed() < CHILD_BEATS {
        return Err(format!(
            "application died early ({status:?}) after {} of {CHILD_BEATS} beats",
            app.beats_processed()
        )
        .into());
    }
    assert_eq!(status, ChildExit::Exited(0));
    println!(
        "\ncontroller: application exited; {} beats processed, final gain {:.2}x",
        app.beats_processed(),
        app.latest_gain().unwrap_or(1.0)
    );
    assert!(
        app.latest_gain().unwrap_or(1.0) > 1.0,
        "a 20 beats/s app under a 30 beats/s target must be boosted"
    );

    // 4. Reap: the segment's producer PID is stale, the ring is drained —
    //    the daemon lets go of the mapping. (The loop may already have
    //    reaped if the exit won the race against the final drain.)
    if reaped.is_empty() {
        daemon.tick();
        reaped = daemon.reap_dead();
    }
    println!("controller: reaped abandoned segments: {reaped:?}");
    assert_eq!(reaped, vec![app.id()]);
    assert_eq!(daemon.app_count(), 0);
    Ok(())
}

#[cfg(not(unix))]
fn main() {
    eprintln!("shm_external_controller requires a Unix platform (fork + mmap)");
}
