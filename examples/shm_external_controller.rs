//! The paper's deployment shape, end to end: an instrumented application
//! in **one OS process** registers with the PowerDial controller in
//! **another process** through the daemon's Unix-socket attach broker,
//! emits Application Heartbeats into the memfd-backed segment it received
//! over `SCM_RIGHTS`, and reads the controller's knob decisions back
//! through the same segment's seqlock-protected decision block.
//!
//! Concretely: the parent binds an `AttachBroker` and a `PowerDialDaemon`,
//! then forks. The child knows nothing but the socket path — it registers
//! via `powerdial_client::PowerDialClient::register` (bounded
//! retry/backoff), beats at ~20 beats/s against the controller's
//! 30 beats/s target, and **proves the loop is bidirectional** by exiting
//! successfully only once it has read a boosted gain (> 1.0x) back
//! through shared memory — not through any parent-side state. When the
//! child exits, the daemon's liveness check sees the stale PID and reaps
//! the abandoned segment.
//!
//! Run with `cargo run --example shm_external_controller`.

#[cfg(target_os = "linux")]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use powerdial::control::daemon::{DaemonConfig, PowerDialDaemon};
    use powerdial::control::{AttachBroker, AttachOutcome, BrokerConfig};
    use powerdial::control::{ControllerConfig, RuntimeConfig};
    use powerdial::heartbeats::shm::process::{fork_child, ChildExit};
    use powerdial::heartbeats::{Timestamp, TimestampDelta};
    use powerdial::knobs::{CalibrationPoint, ConfigParameter, KnobTable, ParameterSpace};
    use powerdial::qos::{QosLoss, QosLossBound};
    use powerdial_client::{ClientConfig, DecisionSource, PowerDialClient};

    /// Beats the child application emits before exiting.
    const CHILD_BEATS: u64 = 400;
    /// The application's (simulated) uncontrolled heart rate: 50 ms/beat.
    const BEAT_PERIOD_MS: u64 = 50;

    // A synthetic calibrated knob table: five settings trading up to 4x
    // speedup for up to 6% QoS loss (what `PowerDialSystem::build` would
    // produce from a real calibration run).
    let speedups = [1.0, 1.5, 2.0, 3.0, 4.0];
    let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
    let space = ParameterSpace::builder()
        .parameter(ConfigParameter::new("sims", values, 0.0)?)
        .build()?;
    let points: Vec<CalibrationPoint> = speedups
        .iter()
        .enumerate()
        .map(|(i, &s)| CalibrationPoint {
            setting_index: i,
            setting: space.setting(i).unwrap(),
            speedup: s,
            qos_loss: QosLoss::new((s - 1.0) * 0.02),
        })
        .collect();
    let table = KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED)?;

    // 1. Controller process: bind the attach broker on a well-known
    //    socket path (a real deployment would use
    //    /run/powerdial/broker.sock or $XDG_RUNTIME_DIR — see the
    //    deployment note in powerdial_heartbeats::shm).
    let socket_path =
        std::env::temp_dir().join(format!("powerdial-example-{}.sock", std::process::id()));
    let mut broker = AttachBroker::bind(BrokerConfig::new(&socket_path))?;
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: 0,
        channel_capacity: 256,
        window_size: 20,
        inline_apps: 0,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })?;
    println!(
        "controller: broker listening on {} (target 30 beats/s)\n",
        socket_path.display()
    );

    // 2. Fork the application process. The child shares *nothing* with
    //    the controller but the socket path: it registers through the
    //    broker, receives the segment fd over SCM_RIGHTS, and talks
    //    shared memory from then on.
    let child_socket = socket_path.clone();
    let child = fork_child(move || {
        let Ok(mut client) = PowerDialClient::register(&child_socket, ClientConfig::default())
        else {
            return 1;
        };
        let mut now = Timestamp::ZERO;
        let mut boosted = false;
        for tag in 0..CHILD_BEATS {
            now += TimestampDelta::from_millis(if tag == 0 { 0 } else { BEAT_PERIOD_MS });
            // The quantum pacing below keeps in-flight beats far under
            // the ring capacity, so a rejected beat is a protocol bug.
            if client.beat(now).is_err() {
                return 2;
            }
            // Pace the (simulated-time) stream against the real
            // controller: after each 20-beat quantum, wait for the daemon
            // to drain, then read the decision it published back through
            // the segment.
            if tag % 20 == 19 {
                let mut retries: u64 = 10_000_000_000;
                while client.beats_in_flight() > 0 {
                    retries -= 1;
                    if retries == 0 {
                        return 3;
                    }
                    std::hint::spin_loop();
                }
                let current = client.current_decision();
                if current.source == DecisionSource::Published && current.decision.gain > 1.0 {
                    boosted = true;
                }
            }
        }
        // The bidirectional proof: this process observed its own boost
        // through shared memory, with no help from the controller side.
        if boosted {
            0
        } else {
            4
        }
    })?;
    println!(
        "controller: forked application process (pid {})",
        child.pid()
    );

    // 3. The control loop: serve at most one broker connection and one
    //    actuation quantum per iteration. The reaper doubles as the
    //    loop's liveness escape: when the application exits (or dies
    //    early), its segment drains dry, `reap_dead` fires, and the
    //    controller stops waiting instead of spinning forever.
    let mut view: Option<powerdial::control::daemon::DecisionView> = None;
    let mut quantum = 0u64;
    let mut reaped = Vec::new();
    // Terminate on the processed-beat count, not on reaping: the exited
    // child stays an unreapable zombie until `wait()` below.
    while view
        .as_ref()
        .is_none_or(|app| app.beats_processed() < CHILD_BEATS)
        && reaped.is_empty()
    {
        if let Some(outcome) = broker.poll_accept(daemon.app_count(), |request| {
            let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0)?);
            match request {
                powerdial::control::AttachRequest::Fresh(consumer) => {
                    daemon.register_shm(config, table.clone(), consumer)
                }
                powerdial::control::AttachRequest::Reattach(consumer) => {
                    daemon.register_shm_adopted(config, table.clone(), consumer)
                }
            }
        })? {
            match outcome {
                AttachOutcome::Granted(granted) => {
                    println!(
                        "controller: granted attach, registered shm app {:?}",
                        granted.id()
                    );
                    view = Some(granted);
                }
                other => return Err(format!("unexpected attach outcome: {other:?}").into()),
            }
        }
        let beats = daemon.tick();
        if beats > 0 {
            quantum += 1;
            if quantum % 5 == 1 {
                let app = view.as_ref().expect("beats imply a registered app");
                println!(
                    "quantum {:>3}: {:>3} beats drained  gain {:>5.2}x  achieved {:>5.2}x  qos loss {:>6.3}%",
                    quantum,
                    beats,
                    app.latest_gain().unwrap_or(1.0),
                    app.achieved_speedup().unwrap_or(1.0),
                    app.expected_qos_loss().unwrap_or(0.0) * 100.0,
                );
            }
        }
        reaped = daemon.reap_dead();
        std::hint::spin_loop();
    }

    // 4. The child's exit code is the verdict: 0 only if it read a
    //    boosted gain back through the segment.
    let status = child.wait()?;
    let app = view.ok_or("application exited without ever attaching")?;
    if app.beats_processed() < CHILD_BEATS {
        return Err(format!(
            "application died early ({status:?}) after {} of {CHILD_BEATS} beats",
            app.beats_processed()
        )
        .into());
    }
    assert_eq!(
        status,
        ChildExit::Exited(0),
        "application failed to observe its boost through shared memory"
    );
    println!(
        "\ncontroller: application exited having read its boosted gain via shm; \
         {} beats processed, final gain {:.2}x",
        app.beats_processed(),
        app.latest_gain().unwrap_or(1.0)
    );
    assert!(
        app.latest_gain().unwrap_or(1.0) > 1.0,
        "a 20 beats/s app under a 30 beats/s target must be boosted"
    );
    // 5. Reap: the zombie is collected, the segment's producer PID is
    //    stale, the ring is drained — the daemon lets go of the mapping
    //    and resets the decision block for any future reuse.
    if reaped.is_empty() {
        daemon.tick();
        reaped = daemon.reap_dead();
    }
    println!("controller: reaped abandoned segments: {reaped:?}");
    assert_eq!(reaped, vec![app.id()]);
    assert_eq!(daemon.app_count(), 0);
    Ok(())
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("shm_external_controller requires Linux (fork + mmap + SCM_RIGHTS broker)");
}
