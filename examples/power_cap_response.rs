//! Responding to a power cap: the paper's Figure 7 scenario on the body
//! tracker.
//!
//! A power cap drops the machine from 2.4 GHz to 1.6 GHz for the middle half
//! of the run. Without PowerDial, the tracker falls behind its frame rate;
//! with PowerDial, the knobs give back the lost throughput at a small
//! tracking-quality cost.
//!
//! Run with `cargo run --example power_cap_response`.

use powerdial::apps::BodytrackApp;
use powerdial::experiments::power_cap_response;
use powerdial::experiments::sim::SimulationOptions;
use powerdial::platform::FrequencyTable;
use powerdial::{PowerDialConfig, PowerDialSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = BodytrackApp::test_scale(7);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default())?;

    // The cap actuates through the machine's DvfsBackend. The simulation
    // runs the paper's seven-state table; on hardware the same experiment
    // drives a sysfs/cpufreq backend (`dvfs-sysfs` feature) whose table is
    // discovered from scaling_available_frequencies instead.
    let table = FrequencyTable::paper();
    println!("DVFS backend table: {} [{} kHz]", table, table.format());

    let options = SimulationOptions {
        work_units: 120,
        window_size: 10,
        use_dynamic_knobs: true,
    };
    let series = power_cap_response(&app, &system, options)?;

    println!(
        "power cap on {}: imposed at {:.0}s, lifted at {:.0}s (target {:.2} beats/s)",
        series.application,
        series.cap_imposed_at_secs,
        series.cap_lifted_at_secs,
        series.target_rate
    );
    println!("\n  time   norm-perf(knobs)  gain   norm-perf(no knobs)  freq");
    for (i, (with, without)) in series
        .with_knobs
        .iter()
        .zip(&series.without_knobs)
        .enumerate()
    {
        if i % 6 != 0 {
            continue;
        }
        println!(
            "  {:>5.0}s  {:>16}  {:>4.1}x  {:>19}  {:>4.2} GHz",
            with.time_secs,
            with.normalized_performance
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "-".into()),
            with.knob_gain,
            without
                .normalized_performance
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "-".into()),
            with.frequency_ghz,
        );
    }

    println!(
        "\nduring the cap: {:.3} normalized performance with knobs vs {:.3} without (peak gain {:.1}x)",
        series.capped_performance_with_knobs().unwrap_or(0.0),
        series.capped_performance_without_knobs().unwrap_or(0.0),
        series.peak_knob_gain()
    );
    Ok(())
}
