//! Server consolidation: the paper's Figure 8 scenario.
//!
//! A cluster provisioned for peak load spends most of its life mostly idle.
//! PowerDial lets a smaller cluster absorb the load spikes by trading a
//! bounded amount of quality for throughput, so the idle machines can be
//! removed entirely.
//!
//! Run with `cargo run --example server_consolidation`.

use powerdial::apps::SwaptionsApp;
use powerdial::experiments::consolidation_study;
use powerdial::qos::QosLossBound;
use powerdial::{PowerDialConfig, PowerDialSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = SwaptionsApp::test_scale(11);
    let system = PowerDialSystem::build(&app, PowerDialConfig::default())?;

    // The paper provisions four machines for the PARSEC benchmarks and allows
    // a 5% QoS loss when consolidating.
    let study = consolidation_study(&system, 4, QosLossBound::from_percent(5.0)?, 11)?;

    println!(
        "{}: {} machines consolidated to {} (speedup {:.1}x available within a {:.0}% QoS bound)",
        study.application,
        study.original_machines,
        study.consolidated_machines,
        study.provisioning_speedup,
        study.qos_bound_percent
    );

    println!("\n  utilization  original W  consolidated W  savings W  qos loss %");
    for point in &study.points {
        println!(
            "  {:>11.2}  {:>10.0}  {:>14.0}  {:>9.0}  {:>10.3}",
            point.utilization,
            point.original_power_watts,
            point.consolidated_power_watts,
            point.original_power_watts - point.consolidated_power_watts,
            point.qos_loss_percent
        );
    }

    println!(
        "\nsavings at 25% utilization: {:.0} W; at peak load the consolidated system uses {:.0}% less power; \
         worst-case QoS loss {:.2}%",
        study.savings_at(0.25).unwrap_or(0.0),
        study.peak_load_power_savings() * 100.0,
        study.max_qos_loss_percent()
    );
    Ok(())
}
