//! Calibrating a multi-knob application: the video encoder's three knobs
//! (`subme`, `merange`, `ref`) span a 27-point trade-off space of which only
//! a handful of settings are Pareto-optimal.
//!
//! Run with `cargo run --example calibrate_video_encoder`.

use powerdial::apps::VideoEncoderApp;
use powerdial::experiments::tradeoff_analysis;
use powerdial::qos::QosLossBound;
use powerdial::{PowerDialConfig, PowerDialSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = VideoEncoderApp::test_scale(5);
    let system = PowerDialSystem::build(
        &app,
        PowerDialConfig::default().with_qos_bound(QosLossBound::from_percent(10.0)?),
    )?;

    println!("explored {} knob settings", system.calibration().len());
    println!(
        "control variables: {:?}",
        system
            .control_variables()
            .map(|set| set.variable_names())
            .unwrap_or_default()
    );

    let analysis = tradeoff_analysis(&app, &system)?;
    println!("\nPareto-optimal settings (training -> production):");
    for (train, prod) in analysis
        .pareto_training
        .iter()
        .zip(&analysis.pareto_production)
    {
        println!(
            "  {:<40} {:>6.2}x / {:>6.3}%   ->   {:>6.2}x / {:>6.3}%",
            train.setting,
            train.speedup,
            train.qos_loss_percent,
            prod.speedup,
            prod.qos_loss_percent
        );
    }

    println!(
        "\ntraining-vs-production correlation: speedup {:.3}, qos loss {:.3}",
        analysis.speedup_correlation.unwrap_or(f64::NAN),
        analysis.qos_correlation.unwrap_or(f64::NAN)
    );
    println!(
        "runtime knob table keeps {} settings within the 10% QoS bound (max speedup {:.2}x)",
        system.knob_table().len(),
        system.knob_table().max_speedup()
    );
    Ok(())
}
