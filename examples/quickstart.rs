//! Quickstart: turn a static configuration parameter into a dynamic knob and
//! let PowerDial drive it.
//!
//! Run with `cargo run --example quickstart`.

use powerdial::apps::{InputSet, KnobbedApplication, SwaptionsApp};
use powerdial::{PowerDialConfig, PowerDialSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application: a Monte Carlo swaption pricer whose `sm` parameter
    //    (simulation trials) trades accuracy for speed.
    let app = SwaptionsApp::test_scale(42);
    println!("application: {}", app.name());
    println!(
        "knobs: {:?}",
        app.parameter_space()
            .parameters()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
    );

    // 2. Build the PowerDial system: influence tracing identifies the control
    //    variables, calibration measures every knob setting against the
    //    default on the training inputs, and the Pareto-optimal settings form
    //    the runtime knob table.
    let system = PowerDialSystem::build(&app, PowerDialConfig::default())?;

    println!("\ncontrol variables identified by influence tracing:");
    if let Some(variables) = system.control_variables() {
        print!("{}", variables.report());
    }

    println!("\ncalibrated knob table (Pareto-optimal settings):");
    for point in system.knob_table().iter() {
        println!(
            "  {:<24} speedup {:>8.2}x  qos loss {:>7.4}%",
            point.setting.to_string(),
            point.speedup,
            point.qos_loss.percent()
        );
    }

    // 3. Drive the runtime: pretend the platform slowed down so the observed
    //    heart rate is only 60% of the 10 beats/s target, and watch the
    //    controller trade a little accuracy for responsiveness.
    let mut runtime = system.runtime(10.0, 10.0)?;
    println!("\nruntime reaction to a platform running at 60% capacity:");
    for beat in 0..5 {
        let decision = runtime.on_heartbeat(Some(6.0));
        println!(
            "  beat {beat}: requested speedup {:.2}, applying {} (gain {:.1}x)",
            decision.requested_speedup,
            decision.setting(),
            decision.gain
        );
    }

    // 4. The chosen settings still produce answers — just slightly less
    //    accurate ones.
    let baseline = app.run_input(
        InputSet::Production,
        0,
        system.knob_table().baseline_setting(),
    );
    let decision = runtime.on_heartbeat(Some(6.0));
    let degraded = app.run_input(InputSet::Production, 0, decision.setting());
    println!(
        "\nbaseline price {:.6} vs degraded price {:.6} ({}x less work)",
        baseline.output.component(0).unwrap_or(0.0),
        degraded.output.component(0).unwrap_or(0.0),
        (baseline.work / degraded.work).round()
    );
    Ok(())
}
