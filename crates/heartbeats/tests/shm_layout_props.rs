//! Property tests over the shared-memory slot layout.
//!
//! The unsafe layer's safety argument rests on two claims the properties
//! here pin down for *all* accepted parameters, not just the hand-picked
//! unit-test values:
//!
//! 1. **Round-trip fidelity**: any mix of beat records pushed through any
//!    accepted geometry comes back bit-identical after
//!    encode → mapped slot → decode, across arbitrary wraparound.
//! 2. **Geometry invariants**: every geometry [`SegmentGeometry::new`]
//!    accepts has power-of-two slots, a stride covering the record, slots
//!    that never overlap the header or each other, and a total length the
//!    mapping actually provides; every violation is rejected with a typed
//!    error.

use std::sync::Arc;

use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::{
    Segment, SegmentGeometry, ShmBeatSample, ShmConsumer, ShmError, ShmProducer,
    DEFAULT_SLOT_STRIDE, SEGMENT_HEADER_LEN,
};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
use proptest::prelude::*;

/// Builds a beat sample from three arbitrary 64-bit patterns.
fn sample_from(tag: u64, timestamp: u64, latency: u64) -> BeatSample {
    BeatSample {
        tag: HeartbeatTag(tag),
        timestamp: Timestamp::from_nanos(timestamp),
        latency: TimestampDelta::from_nanos(latency),
    }
}

proptest! {
    /// Arbitrary record mixes round-trip bit-identically through an
    /// arbitrary-capacity mapped segment, including across wraparound
    /// (the stream is longer than the ring).
    #[test]
    fn records_round_trip_bit_identically(
        capacity_exp in 0u32..8,
        records in proptest::collection::vec(
            (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
            1..96,
        ),
    ) {
        let capacity = 1usize << capacity_exp;
        let geometry = SegmentGeometry::for_beat_samples(capacity).unwrap();
        let segment = Arc::new(Segment::create(geometry).unwrap());
        let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

        let mut scratch = Vec::new();
        let mut replayed = Vec::new();
        for chunk in records.chunks(capacity) {
            for &(tag, timestamp, latency) in chunk {
                producer
                    .try_push(sample_from(tag, timestamp, latency))
                    .expect("chunk fits the ring");
            }
            consumer.drain_into(&mut scratch);
            replayed.extend_from_slice(&scratch);
        }

        prop_assert_eq!(replayed.len(), records.len());
        for (record, &(tag, timestamp, latency)) in replayed.iter().zip(&records) {
            // Bit-identical: compare the raw u64 payloads, not rounded views.
            prop_assert_eq!(record.tag.value(), tag);
            prop_assert_eq!(record.timestamp.as_nanos(), timestamp);
            prop_assert_eq!(record.latency.as_nanos(), latency);
        }
        prop_assert_eq!(producer.rejected(), 0);
    }

    /// The wire encoding itself is lossless for every bit pattern.
    #[test]
    fn wire_encoding_is_lossless(
        tag in 0u64..u64::MAX,
        timestamp in 0u64..u64::MAX,
        latency in 0u64..u64::MAX,
    ) {
        let sample = sample_from(tag, timestamp, latency);
        let decoded = ShmBeatSample::from_sample(sample).to_sample();
        prop_assert_eq!(decoded, sample);
    }

    /// Geometry invariants hold for every accepted parameter triple, and
    /// every rejection is the typed `BadGeometry` error.
    #[test]
    fn geometry_invariants_hold_for_all_accepted_parameters(
        capacity in 1u64..10_000,
        stride_units in 1u64..64,
        record_size in 1u64..256,
    ) {
        let stride = stride_units * 8;
        match SegmentGeometry::new(capacity, stride, record_size) {
            Ok(geometry) => {
                // Accepted ⇒ all invariants hold.
                prop_assert!(geometry.capacity().is_power_of_two());
                prop_assert!(geometry.slot_stride() >= geometry.record_size());
                prop_assert_eq!(geometry.slot_stride() % 8, 0);
                // Slot 0 clears the header; consecutive slots never overlap;
                // the last slot fits the total length.
                prop_assert!(geometry.slot_offset(0) >= SEGMENT_HEADER_LEN);
                let record = geometry.record_size() as usize;
                for index in 1..geometry.capacity().min(64) {
                    prop_assert!(
                        geometry.slot_offset(index) >= geometry.slot_offset(index - 1) + record
                    );
                }
                let last = geometry.slot_offset(geometry.capacity() - 1);
                prop_assert!(last + record <= geometry.total_len());
                // Validation is idempotent on accepted geometries.
                prop_assert!(geometry.validate().is_ok());
            }
            Err(ShmError::BadGeometry { .. }) => {
                // Rejected ⇒ at least one invariant is genuinely violated.
                prop_assert!(
                    !capacity.is_power_of_two() || stride < record_size,
                    "spurious rejection of capacity={} stride={} record={}",
                    capacity,
                    stride,
                    record_size
                );
            }
            Err(other) => {
                return Err(proptest::TestCaseError::fail(format!(
                    "unexpected error kind: {other}"
                )));
            }
        }
    }

    /// The beat-sample constructor accepts every nonzero capacity and
    /// rounds it to the next power of two without shrinking.
    #[test]
    fn beat_sample_geometry_rounds_up(capacity in 1usize..100_000) {
        let geometry = SegmentGeometry::for_beat_samples(capacity).unwrap();
        prop_assert!(geometry.capacity() >= capacity as u64);
        prop_assert!(geometry.capacity().is_power_of_two());
        prop_assert!(geometry.capacity() < 2 * capacity as u64);
        prop_assert_eq!(geometry.slot_stride(), DEFAULT_SLOT_STRIDE as u64);
        prop_assert_eq!(
            geometry.total_len(),
            SEGMENT_HEADER_LEN + (geometry.capacity() * geometry.slot_stride()) as usize
        );
    }
}
