//! Torn-read hardening of the segment's decision block (ABI v2).
//!
//! The decision block is the daemon→application half of the control
//! plane: a seqlock-published record read wait-free by the application.
//! Its safety claim is that **no reader ever observes a mixed payload** —
//! every [`DecisionRead::Ready`] snapshot is bit-for-bit some single
//! published decision — under
//!
//! * same-process concurrency (a writer thread racing a reader loop),
//! * arbitrary payloads including NaN and all-ones bit patterns
//!   (property tests),
//! * a *forked* writer SIGKILLed mid-stream: whatever instant the kill
//!   lands, the reader gets `Empty`, `Torn`, or a consistent snapshot —
//!   never garbage — and a successor writer repairs an odd (abandoned
//!   mid-write) version counter transparently.

#![cfg(unix)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::shm::{
    DecisionRead, Segment, SegmentGeometry, ShmConsumer, ShmDecision, ShmProducer,
};
use proptest::prelude::*;

fn segment() -> Arc<Segment> {
    Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap())
}

/// A decision whose four payload words all encode the same counter — the
/// invariant every consistent snapshot must preserve.
fn tagged(counter: u64) -> ShmDecision {
    ShmDecision {
        point_idx: counter as u32,
        gain_bits: counter,
        achieved_speedup_bits: counter,
        qos_loss_bits: counter,
    }
}

/// Asserts a snapshot is some single `tagged` decision, returning its
/// counter.
fn assert_untorn(decision: &ShmDecision) -> u64 {
    let counter = decision.gain_bits;
    assert_eq!(
        decision.point_idx, counter as u32,
        "mixed payload: {decision:?}"
    );
    assert_eq!(
        decision.achieved_speedup_bits, counter,
        "mixed payload: {decision:?}"
    );
    assert_eq!(
        decision.qos_loss_bits, counter,
        "mixed payload: {decision:?}"
    );
    counter
}

#[test]
fn concurrent_reader_never_observes_mixed_payloads() {
    const PUBLICATIONS: u64 = 200_000;
    let segment = segment();
    let done = Arc::new(AtomicBool::new(false));

    let writer_segment = Arc::clone(&segment);
    let writer_done = Arc::clone(&done);
    let writer = std::thread::spawn(move || {
        for counter in 1..=PUBLICATIONS {
            writer_segment.header().publish_decision(tagged(counter));
        }
        writer_done.store(true, Ordering::Release);
    });

    let mut ready_reads = 0u64;
    let mut torn_reads = 0u64;
    let mut last_counter = 0u64;
    while !done.load(Ordering::Acquire) || ready_reads == 0 {
        match segment.header().read_decision() {
            DecisionRead::Empty => {}
            DecisionRead::Torn => torn_reads += 1,
            DecisionRead::Ready(decision) => {
                let counter = assert_untorn(&decision);
                assert!(
                    counter >= last_counter,
                    "decisions regressed: {counter} after {last_counter}"
                );
                last_counter = counter;
                ready_reads += 1;
            }
        }
    }
    writer.join().unwrap();

    // The stream has quiesced: the final read must be the final decision.
    match segment.header().read_decision() {
        DecisionRead::Ready(decision) => assert_eq!(assert_untorn(&decision), PUBLICATIONS),
        other => panic!("quiesced block must read Ready, got {other:?}"),
    }
    assert!(ready_reads > 0);
    // Torn is legal under contention but must be the exception, not the
    // rule, for a writer that spends most of its time between publishes.
    let _ = torn_reads;
}

#[test]
fn forked_writer_sigkilled_mid_stream_never_leaves_garbage() {
    let segment = segment();
    // Claim the consumer role in the child, producer in the parent, so
    // the roles mirror the real daemon/application split.
    let child = fork_child({
        let segment = Arc::clone(&segment);
        move || {
            let Ok(consumer) = ShmConsumer::attach(segment) else {
                return 1;
            };
            let mut counter = 1u64;
            loop {
                consumer.publish_decision(tagged(counter));
                counter += 1;
            }
        }
    })
    .unwrap();

    let producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();

    // Read concurrently with the live writer until real publications are
    // observed, checking consistency throughout.
    let mut observed = 0u64;
    while observed < 10_000 {
        if let DecisionRead::Ready(decision) = producer.read_decision() {
            assert_untorn(&decision);
            observed += 1;
        }
    }

    // SIGKILL can land anywhere, including between the two halves of a
    // seqlock write.
    child.kill().unwrap();
    assert!(matches!(child.wait().unwrap(), ChildExit::Signaled(_)));

    // Post-mortem reads are stable (the writer is gone) and still sane:
    // either a consistent final snapshot or a permanently torn block —
    // never mixed bits.
    let post_mortem = producer.read_decision();
    match post_mortem {
        DecisionRead::Ready(decision) => {
            assert_untorn(&decision);
        }
        DecisionRead::Torn => {}
        DecisionRead::Empty => panic!("10k observed publications cannot vanish"),
    }
    assert_eq!(
        producer.read_decision(),
        post_mortem,
        "a dead writer's block must read deterministically"
    );

    // A successor writer (restarted daemon) repairs even a mid-write
    // abandonment: the very next publication is readable.
    segment.header().publish_decision(tagged(u64::MAX));
    match producer.read_decision() {
        DecisionRead::Ready(decision) => assert_eq!(assert_untorn(&decision), u64::MAX),
        other => panic!("successor publish must repair the block, got {other:?}"),
    }
}

proptest! {
    /// Any payload — NaN bits, all-ones, zeros — round-trips bit-exactly,
    /// and every read between publications returns exactly the latest
    /// decision.
    #[test]
    fn arbitrary_payloads_round_trip_bit_exactly(
        decisions in proptest::collection::vec(
            (0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
            1..32,
        ),
    ) {
        let segment = segment();
        prop_assert_eq!(segment.header().read_decision(), DecisionRead::Empty);
        for &(point_idx, gain_bits, achieved_speedup_bits, qos_loss_bits) in &decisions {
            let decision = ShmDecision {
                point_idx,
                gain_bits,
                achieved_speedup_bits,
                qos_loss_bits,
            };
            segment.header().publish_decision(decision);
            prop_assert_eq!(
                segment.header().read_decision(),
                DecisionRead::Ready(decision)
            );
        }
        segment.header().reset_decision();
        prop_assert_eq!(segment.header().read_decision(), DecisionRead::Empty);
    }

    /// A version counter left odd (writer died mid-publish) reads Torn —
    /// a signal, not stale data — and any successor publication repairs
    /// it for good.
    #[test]
    fn abandoned_mid_write_counter_reads_torn_until_repaired(
        scribble in 1u64..1_000_000,
        repair in (0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let segment = segment();
        segment.header().publish_decision(tagged(7));
        segment
            .header()
            .decision_seq
            .store(scribble * 2 + 1, std::sync::atomic::Ordering::Release);
        prop_assert_eq!(segment.header().read_decision(), DecisionRead::Torn);

        let (point_idx, gain_bits, achieved_speedup_bits, qos_loss_bits) = repair;
        let decision = ShmDecision {
            point_idx,
            gain_bits,
            achieved_speedup_bits,
            qos_loss_bits,
        };
        segment.header().publish_decision(decision);
        prop_assert_eq!(
            segment.header().read_decision(),
            DecisionRead::Ready(decision)
        );
    }
}
