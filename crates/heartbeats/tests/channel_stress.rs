//! Multi-thread stress tests for the lock-free SPSC heartbeat channel.
//!
//! These are the tests that catch atomics-ordering bugs, so CI runs them
//! under `cargo test --release` as well as the default debug profile: the
//! optimizer is what turns a missing acquire/release edge into a visible
//! reorder.

use std::thread;

use powerdial_heartbeats::channel::{beat_channel, spsc_channel, BeatSample};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};

/// Beats per stress run: enough ring wraps (thousands, with capacity 64)
/// to expose index or ordering mistakes, small enough for debug CI.
const STRESS_ITEMS: u64 = 200_000;

#[test]
fn concurrent_drain_sees_every_item_in_order() {
    let (mut tx, mut rx) = spsc_channel::<u64>(64);

    let producer = thread::spawn(move || {
        let mut value = 0u64;
        while value < STRESS_ITEMS {
            match tx.try_push(value) {
                Ok(()) => value += 1,
                Err(_) => thread::yield_now(), // full: wait for the drain
            }
        }
        (tx.pushed(), tx.rejected())
    });

    let mut scratch = Vec::new();
    let mut expected = 0u64;
    while expected < STRESS_ITEMS {
        if rx.drain_into(&mut scratch) == 0 {
            thread::yield_now();
            continue;
        }
        for value in &scratch {
            assert_eq!(*value, expected, "lost or reordered item");
            expected += 1;
        }
    }

    let (pushed, rejected) = producer.join().unwrap();
    assert_eq!(pushed, STRESS_ITEMS, "every item was eventually accepted");
    assert_eq!(expected, STRESS_ITEMS);
    assert!(rx.is_empty());
    // Rejections are backpressure, not loss: every rejected push was
    // retried until it landed.
    assert!(rejected < STRESS_ITEMS * 50, "pathological spin");
}

#[test]
fn concurrent_pop_sees_every_item_in_order() {
    let (mut tx, mut rx) = spsc_channel::<u64>(8);

    let producer = thread::spawn(move || {
        let mut value = 0u64;
        while value < STRESS_ITEMS / 4 {
            if tx.try_push(value).is_ok() {
                value += 1;
            } else {
                thread::yield_now();
            }
        }
    });

    let mut expected = 0u64;
    while expected < STRESS_ITEMS / 4 {
        match rx.try_pop() {
            Some(value) => {
                assert_eq!(value, expected, "lost or reordered item");
                expected += 1;
            }
            None => thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert_eq!(rx.drained(), STRESS_ITEMS / 4);
}

#[test]
fn concurrent_beat_stream_preserves_tags_and_timestamps() {
    let (mut tx, mut rx) = beat_channel(32);
    let beats = STRESS_ITEMS / 4;

    let producer = thread::spawn(move || {
        let mut now = Timestamp::ZERO;
        for tag in 0..beats {
            let latency = TimestampDelta::from_millis(1 + tag % 7);
            if tag > 0 {
                now += latency;
            }
            let sample = BeatSample {
                tag: HeartbeatTag(tag),
                timestamp: now,
                latency: if tag == 0 {
                    TimestampDelta::ZERO
                } else {
                    latency
                },
            };
            let mut pending = sample;
            loop {
                match tx.try_push(pending) {
                    Ok(()) => break,
                    Err(rejected) => {
                        pending = rejected;
                        thread::yield_now();
                    }
                }
            }
        }
    });

    let mut scratch = Vec::new();
    let mut next_tag = 0u64;
    let mut last_timestamp = Timestamp::ZERO;
    while next_tag < beats {
        rx.drain_into(&mut scratch);
        for sample in &scratch {
            assert_eq!(sample.tag, HeartbeatTag(next_tag), "beat lost or reordered");
            assert!(
                sample.timestamp >= last_timestamp,
                "timestamps ran backwards across the channel"
            );
            if next_tag > 0 {
                assert_eq!(sample.timestamp, last_timestamp + sample.latency);
            }
            last_timestamp = sample.timestamp;
            next_tag += 1;
        }
        if scratch.is_empty() {
            thread::yield_now();
        }
    }
    producer.join().unwrap();
}

#[test]
fn full_ring_backpressure_never_overwrites() {
    // A deliberately tiny ring under concurrent pressure: accepted items
    // must come out exactly once, in order, regardless of how many pushes
    // bounce.
    let (mut tx, mut rx) = spsc_channel::<u64>(2);
    let attempts = 50_000u64;

    let producer = thread::spawn(move || {
        let mut accepted = Vec::new();
        for value in 0..attempts {
            if tx.try_push(value).is_ok() {
                accepted.push(value);
            }
        }
        accepted
    });

    // Pop one at a time (slow consumer) until the producer is done and the
    // ring is empty, so the ring is full for most of the run.
    let mut received = Vec::new();
    loop {
        match rx.try_pop() {
            Some(value) => received.push(value),
            None => {
                if producer.is_finished() && rx.is_empty() {
                    break;
                }
                thread::yield_now();
            }
        }
    }
    let accepted = producer.join().unwrap();

    assert_eq!(
        received, accepted,
        "received sequence must equal the accepted sequence exactly"
    );
    assert!(
        accepted.len() >= 2,
        "the ring accepts at least its capacity"
    );
    assert!(accepted.len() as u64 <= attempts);
}
