//! Proof that the steady-state heartbeat hot path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after warming the
//! sliding window and the history ring past their growth phases, thousands
//! of further heartbeats and rate/statistics queries must not allocate at
//! all. This is the enforceable form of the O(1) rework's contract — a
//! timing benchmark can regress silently under noise, an allocation count
//! cannot.
//!
//! The counter is thread-local, so other harness threads cannot pollute
//! the measurement; keep the measured loops on the test thread itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use std::sync::Arc;

use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial_heartbeats::telemetry::{
    DecisionTraceRecord, DecisionTraceRing, LatencyHistogram, TraceReason,
};
use powerdial_heartbeats::{
    HeartbeatMonitor, HeartbeatTag, MonitorConfig, SlidingWindow, Timestamp, TimestampDelta,
};

struct CountingAllocator;

// Per-thread counter: the libtest harness's other threads allocate
// concurrently with the measured region, so a process-global counter is
// flaky. `const`-initialized TLS is safe to touch from the allocator (no
// lazy initialization, hence no recursive allocation); `try_with` covers
// thread-teardown accesses.
thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations made by the *calling* thread so far.
fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

#[test]
fn steady_state_heartbeat_path_does_not_allocate() {
    // --- SlidingWindow alone: push / rate / statistics.
    let mut window = SlidingWindow::new(64);
    for i in 0..256u64 {
        window.push(TimestampDelta::from_nanos(
            20_000_000 + (i * 7_919) % 10_000_000,
        ));
    }

    let before = allocations();
    let mut sink = 0.0;
    for i in 0..10_000u64 {
        window.push(TimestampDelta::from_nanos(
            20_000_000 + (i * 104_729) % 10_000_000,
        ));
        sink += window
            .rate()
            .expect("no overflow")
            .expect("warm window")
            .beats_per_second();
        let stats = window.statistics().expect("warm window");
        sink += stats.mean_latency_secs + stats.latency_variance + stats.max_latency_secs;
    }
    std::hint::black_box(sink);
    assert_eq!(
        allocations() - before,
        0,
        "sliding window steady state must not allocate"
    );

    // --- Full monitor: heartbeat emission with a warmed history ring.
    let mut monitor = HeartbeatMonitor::new(
        MonitorConfig::new("no-alloc")
            .with_window_size(64)
            .with_history_capacity(Some(128)),
    );
    let mut now = Timestamp::ZERO;
    for i in 0..512u64 {
        now += TimestampDelta::from_nanos(30_000_000 + (i * 6_271) % 5_000_000);
        monitor.heartbeat(now);
    }

    let before = allocations();
    let mut sink = 0.0;
    for i in 0..10_000u64 {
        now += TimestampDelta::from_nanos(30_000_000 + (i * 12_553) % 5_000_000);
        let record = monitor.heartbeat(now);
        sink += record.latency.as_secs_f64();
        if let Some(stats) = monitor.window_statistics() {
            sink += stats.mean_latency_secs;
        }
    }
    std::hint::black_box(sink);
    assert_eq!(
        allocations() - before,
        0,
        "monitor heartbeat steady state must not allocate"
    );
}

#[test]
fn telemetry_record_trace_and_summary_do_not_allocate() {
    // The telemetry plane rides the daemon's drain loop, so it inherits
    // the loop's allocation-freedom contract: histogram records are two
    // shifts and an array increment, trace pushes write into a
    // pre-allocated ring, and even the cold-path summary/quantile reads
    // only walk the inline bucket array.
    let mut latency = LatencyHistogram::new();
    let mut rollup = LatencyHistogram::new();
    let mut ring = DecisionTraceRing::with_capacity(256);

    let before = allocations();
    let mut sink = 0u64;
    for i in 0..10_000u64 {
        latency.record(20_000_000 + (i * 7_919) % 10_000_000);
        if i % 20 == 0 {
            ring.push(DecisionTraceRecord {
                seq: 0,
                timestamp: Timestamp::from_nanos(i),
                app: i,
                point_idx: (i % 3) as u32,
                reason: TraceReason::Boundary,
                gain: 1.5,
                achieved_speedup: 1.4,
                qos_loss: 0.01,
            });
        }
    }
    rollup.merge_from(&latency);
    let summary = rollup.summary();
    sink += summary.count + summary.max + rollup.value_at_quantile(0.99);
    sink += ring.iter().map(|record| record.seq).sum::<u64>();
    std::hint::black_box(sink);
    assert_eq!(
        allocations() - before,
        0,
        "telemetry record/trace/summary must not allocate"
    );
}

#[test]
fn steady_state_shm_push_drain_loop_does_not_allocate() {
    // The cross-process transport must honour the same allocation-freedom
    // contract as the in-heap ring: once the segment is mapped and the
    // drain scratch has grown to capacity, pushes and batched drains touch
    // only the mapping — no heap traffic on either side.
    let segment =
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64).unwrap()).unwrap());
    let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    let mut consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let mut scratch = Vec::new();
    let mut tag = 0u64;
    let mut now = Timestamp::ZERO;
    let push_quantum = |producer: &mut ShmProducer, tag: &mut u64, now: &mut Timestamp| {
        for _ in 0..32 {
            let latency = TimestampDelta::from_nanos(20_000_000 + (*tag * 7_919) % 10_000_000);
            *now += latency;
            producer
                .try_push(BeatSample {
                    tag: HeartbeatTag(*tag),
                    timestamp: *now,
                    latency,
                })
                .expect("ring sized for a full quantum");
            *tag += 1;
        }
    };

    // Warm: grow the scratch buffer to ring capacity.
    for _ in 0..4 {
        push_quantum(&mut producer, &mut tag, &mut now);
        consumer.drain_into(&mut scratch);
    }

    let before = allocations();
    let mut sink = 0u64;
    for _ in 0..10_000 {
        push_quantum(&mut producer, &mut tag, &mut now);
        consumer.drain_into(&mut scratch);
        sink += scratch.len() as u64 + scratch.last().map_or(0, |s| s.tag.value());
        // The liveness probe the reaper runs each quantum is also
        // allocation-free (it is a syscall plus two atomic loads).
        sink += u64::from(consumer.producer_state().is_alive());
    }
    std::hint::black_box(sink);
    assert_eq!(tag, (4 + 10_000) * 32, "every beat was pushed");
    assert_eq!(
        allocations() - before,
        0,
        "steady-state shm push/drain loop must not allocate"
    );
}
