//! Regression coverage for the PID-recycling false-liveness hole (closed
//! by the ABI v2 producer start nonce).
//!
//! Pre-v2, producer liveness was `kill(pid, 0)` alone: a producer that
//! died and whose PID the kernel handed to an unrelated process read as
//! *alive*, so the daemon kept a dead application's segment forever. V2
//! records the producer's `/proc/<pid>/stat` start time at claim; a live
//! process whose start time disagrees with the recorded nonce is a
//! recycled PID — the original producer is dead.
//!
//! These tests run the hole cross-process: a real forked producer dies,
//! its PID slot is "recycled" onto a live process (this test process),
//! and the nonce must keep reading the claim as dead.

#![cfg(target_os = "linux")]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::shm::{
    current_pid, process_start_nonce, PeerState, Segment, SegmentGeometry, ShmConsumer, ShmProducer,
};

fn segment() -> Arc<Segment> {
    Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap())
}

#[test]
fn live_forked_producer_reads_alive_then_dead_after_kill() {
    let segment = segment();
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child({
        let segment = Arc::clone(&segment);
        move || {
            let Ok(_producer) = ShmProducer::attach(segment) else {
                return 1;
            };
            loop {
                std::hint::spin_loop();
            }
        }
    })
    .unwrap();

    // Wait for the child's claim, then check the nonce went with it.
    while segment.header().producer_pid.load(Ordering::Acquire) == 0 {
        std::hint::spin_loop();
    }
    assert_eq!(consumer.producer_state(), PeerState::Alive(child.pid()));
    let recorded = segment.header().producer_nonce.load(Ordering::Acquire);
    assert_ne!(recorded, 0, "a claim on Linux always records a nonce");
    assert_eq!(process_start_nonce(child.pid()), Some(recorded));

    let child_pid = child.pid();
    child.kill().unwrap();
    assert!(matches!(child.wait().unwrap(), ChildExit::Signaled(_)));
    assert_eq!(consumer.producer_state(), PeerState::Dead(child_pid));
}

#[test]
fn recycled_pid_with_stale_nonce_still_reads_dead() {
    let segment = segment();
    let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    // A real producer claims and dies without detaching (a crash).
    let child = fork_child({
        let segment = Arc::clone(&segment);
        move || match ShmProducer::attach(segment) {
            Ok(_producer) => 0,
            Err(_) => 1,
        }
    })
    .unwrap();
    let child_pid = child.pid();
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));
    assert_eq!(consumer.producer_state(), PeerState::Dead(child_pid));

    // The kernel "recycles" the dead producer's PID onto a live,
    // unrelated process — simulated by writing this very process's PID
    // over the stale claim while keeping the dead child's nonce.
    let my_pid = current_pid();
    let my_nonce = process_start_nonce(my_pid).unwrap();
    segment
        .header()
        .producer_pid
        .store(my_pid, Ordering::Release);
    if segment.header().producer_nonce.load(Ordering::Acquire) == my_nonce {
        // The child forked within the same clock tick this process
        // started in, so its start time collides with ours; perturb the
        // recorded nonce to keep the scenario honest (any dead
        // producer's nonce other than ours would do).
        segment
            .header()
            .producer_nonce
            .store(my_nonce + 1, Ordering::Release);
    }

    // Pre-v2 this read Alive (kill(pid, 0) succeeds on a live PID) and
    // the daemon leaked the segment; the nonce closes the hole.
    assert_eq!(
        consumer.producer_state(),
        PeerState::Dead(my_pid),
        "a recycled PID must not resurrect a dead producer"
    );

    // The matching nonce is what actually asserts identity, not the PID:
    // restore it and the claim reads alive again.
    segment
        .header()
        .producer_nonce
        .store(my_nonce, Ordering::Release);
    assert_eq!(consumer.producer_state(), PeerState::Alive(my_pid));

    // A zero nonce (pre-nonce attacher) documents the legacy fallback:
    // plain PID liveness, recycling hole and all.
    segment.header().producer_nonce.store(0, Ordering::Release);
    assert_eq!(consumer.producer_state(), PeerState::Alive(my_pid));
}

#[test]
fn start_nonce_reads_self_and_rejects_vacant_pids() {
    let mine = process_start_nonce(current_pid());
    assert!(mine.is_some());
    assert_eq!(
        mine,
        process_start_nonce(current_pid()),
        "stable per process"
    );
    // PID_MAX on Linux is < 2^22 by default and this value is far above
    // any configurable ceiling, so no such process exists.
    assert_eq!(process_start_nonce(0x7FFF_FF00), None);
}
