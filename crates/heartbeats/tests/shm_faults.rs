//! Fault-injection tests for the shared-memory attach handshake.
//!
//! The promise under test: a truncated, forged, corrupted, stale, or
//! contested segment produces a *typed* [`ShmError`] — never undefined
//! behaviour, never a panic. Each test constructs a valid segment, breaks
//! exactly one invariant through the raw (public, atomic) header fields,
//! and asserts the handshake reports precisely that break.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use powerdial_heartbeats::shm::{
    PeerRole, Segment, SegmentGeometry, ShmConsumer, ShmError, ShmProducer, SEGMENT_ABI_VERSION,
    SEGMENT_HEADER_LEN, SEGMENT_MAGIC,
};

fn fresh_segment() -> Arc<Segment> {
    Arc::new(Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap())
}

#[test]
fn wrong_magic_is_rejected_for_both_roles() {
    let segment = fresh_segment();
    segment.header().magic.store(0xdead_beef, Ordering::Release);
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::BadMagic { found: 0xdead_beef })
    ));
    assert!(matches!(
        ShmConsumer::attach(Arc::clone(&segment)),
        Err(ShmError::BadMagic { found: 0xdead_beef })
    ));
    // Restoring the magic heals the segment: nothing was corrupted by the
    // failed attaches.
    segment
        .header()
        .magic
        .store(SEGMENT_MAGIC, Ordering::Release);
    assert!(ShmProducer::attach(Arc::clone(&segment)).is_ok());
}

#[test]
fn mismatched_abi_version_is_rejected() {
    let segment = fresh_segment();
    segment
        .header()
        .abi_version
        .store(SEGMENT_ABI_VERSION + 1, Ordering::Release);
    match ShmConsumer::attach(Arc::clone(&segment)) {
        Err(ShmError::AbiVersionMismatch { found, expected }) => {
            assert_eq!(found, SEGMENT_ABI_VERSION + 1);
            assert_eq!(expected, SEGMENT_ABI_VERSION);
        }
        other => panic!("expected AbiVersionMismatch, got {other:?}"),
    }
}

#[test]
fn uninitialized_segment_is_rejected() {
    let segment = fresh_segment();
    segment.header().ready.store(0, Ordering::Release);
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::NotInitialized)
    ));
}

#[test]
fn corrupt_capacity_is_rejected() {
    // Non-power-of-two.
    let segment = fresh_segment();
    segment.header().capacity.store(3, Ordering::Release);
    assert!(matches!(
        ShmConsumer::attach(Arc::clone(&segment)),
        Err(ShmError::BadGeometry {
            field: "capacity",
            found: 3
        })
    ));

    // A capacity the mapping cannot hold: valid geometry, truncated
    // backing.
    let segment = fresh_segment();
    segment.header().capacity.store(1 << 20, Ordering::Release);
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::TruncatedSegment { .. })
    ));
}

#[test]
fn corrupt_stride_and_record_size_are_rejected() {
    let segment = fresh_segment();
    // Stride no longer covers the record.
    segment.header().slot_stride.store(8, Ordering::Release);
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::BadGeometry {
            field: "slot_stride",
            ..
        })
    ));

    let segment = fresh_segment();
    segment.header().record_size.store(0, Ordering::Release);
    assert!(matches!(
        ShmConsumer::attach(Arc::clone(&segment)),
        Err(ShmError::BadGeometry {
            field: "record_size",
            ..
        })
    ));
}

#[test]
fn foreign_record_size_is_rejected_not_overrun() {
    // A segment from a different record revision: 16-byte records with a
    // 16-byte stride is a perfectly *self-consistent* geometry, but this
    // build's 24-byte ShmBeatSample accesses would overlap neighboring
    // slots and run past the end of the mapping. The typed handshake must
    // refuse it with the structural mismatch, for both roles.
    let geometry = SegmentGeometry::new(8, 16, 16).unwrap();
    let segment = Arc::new(Segment::create(geometry).unwrap());
    match ShmProducer::attach(Arc::clone(&segment)) {
        Err(ShmError::GeometryMismatch {
            field: "record_size",
            found,
            expected,
        }) => {
            assert_eq!(found, 16);
            assert_eq!(expected, 24);
        }
        other => panic!("expected GeometryMismatch, got {other:?}"),
    }
    assert!(matches!(
        ShmConsumer::attach(Arc::clone(&segment)),
        Err(ShmError::GeometryMismatch {
            field: "record_size",
            ..
        })
    ));

    // An *oversized* record (future revision with trailing fields we do
    // not understand) is equally unreadable: reject, don't guess.
    let segment = fresh_segment();
    segment.header().record_size.store(32, Ordering::Release);
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::GeometryMismatch {
            field: "record_size",
            ..
        })
    ));
}

#[test]
fn consumer_attach_while_producer_dead_is_rejected() {
    let segment = fresh_segment();
    // A producer PID that cannot belong to a live process: the stream can
    // never complete, so attaching is refused in favour of reaping.
    segment
        .header()
        .producer_pid
        .store(0x7fff_f001, Ordering::Release);
    match ShmConsumer::attach(Arc::clone(&segment)) {
        Err(ShmError::DeadPeer {
            role: PeerRole::Producer,
            pid,
        }) => assert_eq!(pid, 0x7fff_f001),
        other => panic!("expected DeadPeer(producer), got {other:?}"),
    }
    // A *live* producer is, of course, fine.
    segment.header().producer_pid.store(0, Ordering::Release);
    let _producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    assert!(ShmConsumer::attach(Arc::clone(&segment)).is_ok());
}

#[test]
fn roles_claimed_by_dead_processes_are_reported_stale() {
    // Producer slot held by a dead process: a new producer must not adopt
    // the abandoned stream.
    let segment = fresh_segment();
    segment
        .header()
        .producer_pid
        .store(0x7fff_f002, Ordering::Release);
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::DeadPeer {
            role: PeerRole::Producer,
            pid: 0x7fff_f002
        })
    ));

    // Consumer slot held by a dead process.
    let segment = fresh_segment();
    segment
        .header()
        .consumer_pid
        .store(0x7fff_f003, Ordering::Release);
    assert!(matches!(
        ShmConsumer::attach(Arc::clone(&segment)),
        Err(ShmError::DeadPeer {
            role: PeerRole::Consumer,
            pid: 0x7fff_f003
        })
    ));
}

#[test]
fn live_claims_are_exclusive() {
    let segment = fresh_segment();
    let _producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
    let _consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
    assert!(matches!(
        ShmProducer::attach(Arc::clone(&segment)),
        Err(ShmError::RoleClaimed {
            role: PeerRole::Producer,
            ..
        })
    ));
    assert!(matches!(
        ShmConsumer::attach(Arc::clone(&segment)),
        Err(ShmError::RoleClaimed {
            role: PeerRole::Consumer,
            ..
        })
    ));
}

#[cfg(unix)]
mod file_backed {
    //! Faults injected through the filesystem: what [`Segment::open`]
    //! must survive when handed an arbitrary path.

    use super::*;
    use std::io::Write;

    #[test]
    fn truncated_file_is_rejected_before_the_header_is_read() {
        // A file smaller than the header: rejected on size alone (mapping
        // it and reading header fields would fault).
        let path = std::env::temp_dir().join(format!(
            "powerdial-shm-fault-truncated-{}.shm",
            std::process::id()
        ));
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(&[0u8; 64]).unwrap();
        drop(file);
        match Segment::open(&path) {
            Err(ShmError::TruncatedSegment { expected, found }) => {
                assert_eq!(expected, SEGMENT_HEADER_LEN as u64);
                assert_eq!(found, 64);
            }
            other => panic!("expected TruncatedSegment, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_sized_garbage_is_rejected_as_bad_magic() {
        let path = std::env::temp_dir().join(format!(
            "powerdial-shm-fault-garbage-{}.shm",
            std::process::id()
        ));
        let mut file = std::fs::File::create(&path).unwrap();
        // `ready` must look set for validation to proceed past the
        // initialization check; everything else is garbage.
        let mut bytes = vec![0x5au8; SEGMENT_HEADER_LEN];
        // Offset 12 is the `ready` field (magic u64 + abi u32).
        bytes[12..16].copy_from_slice(&1u32.to_le_bytes());
        file.write_all(&bytes).unwrap();
        drop(file);
        assert!(matches!(
            Segment::open(&path),
            Err(ShmError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn segment_file_truncated_after_creation_is_detected() {
        // The creator made a valid segment, but the file was truncated
        // behind its back (disk pressure, hostile tenant): a late attacher
        // must detect the short mapping instead of running off its end.
        let created = Segment::create_tmpfile_in(
            std::env::temp_dir(),
            SegmentGeometry::for_beat_samples(64).unwrap(),
        )
        .unwrap();
        let path = created.path().unwrap().to_path_buf();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(SEGMENT_HEADER_LEN as u64)
            .unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(ShmError::TruncatedSegment { .. })
        ));
    }
}
