//! Fork-based cross-process tests of the shared-memory transport.
//!
//! These run the transport in its intended deployment shape: the segment
//! is mapped in the *parent* (controller) process, a forked *child*
//! (application) process attaches the producer side through the inherited
//! mapping and beats, and the parent drains. The properties proven:
//!
//! * a child's beat stream arrives **lossless and in order**, both when
//!   the parent drains concurrently (with backpressure cycling the ring)
//!   and when the child fills the ring and exits before the first drain;
//! * beats already published **survive the producer's death** — a child
//!   killed mid-stream leaves a clean, drainable prefix;
//! * the stale-PID liveness check detects the dead child.
//!
//! Child closures are fork-safe by construction: attach and `try_push`
//! allocate nothing on their success paths (see
//! `powerdial_heartbeats::shm::process` for why that matters after
//! forking a multi-threaded test harness).

#![cfg(unix)]

use std::sync::Arc;

use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::shm::process::{fork_child, ChildExit};
use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};

/// The deterministic beat the child emits for sequence number `tag`.
fn child_beat(tag: u64) -> BeatSample {
    BeatSample {
        tag: HeartbeatTag(tag),
        timestamp: Timestamp::from_millis(tag * 40),
        latency: TimestampDelta::from_millis(if tag == 0 { 0 } else { 40 }),
    }
}

/// Child body: attach a producer to the inherited mapping and push beats
/// `0..count`, spinning (bounded) while the ring is full. Returns the
/// child's exit code: 0 on success, nonzero on attach failure or a ring
/// that never drains.
fn produce_n(segment: &Arc<Segment>, count: u64) -> i32 {
    let Ok(mut producer) = ShmProducer::attach(Arc::clone(segment)) else {
        return 1;
    };
    for tag in 0..count {
        let mut sample = child_beat(tag);
        // ~10s worth of retries at a nanosecond a spin: effectively
        // "until drained", but a hung parent cannot hang the suite.
        let mut retries: u64 = 10_000_000_000;
        loop {
            match producer.try_push(sample) {
                Ok(()) => break,
                Err(rejected) => {
                    sample = rejected;
                    retries -= 1;
                    if retries == 0 {
                        return 2;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }
    0
}

fn fresh_segment(capacity: usize) -> Arc<Segment> {
    Arc::new(Segment::create(SegmentGeometry::for_beat_samples(capacity).unwrap()).unwrap())
}

#[test]
fn forked_child_stream_is_lossless_and_in_order() {
    // A 64-slot ring carrying 500 beats: the child must cycle the ring
    // ~8 times, exercising wraparound and cross-process backpressure.
    const BEATS: u64 = 500;
    let segment = fresh_segment(64);
    let mut consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child(|| produce_n(&segment, BEATS)).unwrap();

    let mut scratch = Vec::new();
    let mut received = 0u64;
    while received < BEATS {
        consumer.drain_into(&mut scratch);
        for sample in &scratch {
            assert_eq!(
                *sample,
                child_beat(received),
                "beat {received} arrived corrupted or out of order"
            );
            received += 1;
        }
        std::hint::spin_loop();
    }
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));
    assert_eq!(consumer.drained(), BEATS);
    assert!(consumer.is_empty());
}

#[test]
fn beats_survive_child_exit_before_first_drain() {
    // The child fills the ring exactly and exits; only then does the
    // parent drain. The beats live in the segment, not the process.
    let segment = fresh_segment(128);
    let mut consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child(|| produce_n(&segment, 128)).unwrap();
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));

    // The producing process is gone; its published beats are not.
    assert!(consumer.producer_state().is_dead());
    let mut scratch = Vec::new();
    assert_eq!(consumer.drain_into(&mut scratch), 128);
    for (tag, sample) in scratch.iter().enumerate() {
        assert_eq!(*sample, child_beat(tag as u64));
    }
}

#[test]
fn killed_child_leaves_a_clean_drainable_prefix() {
    // The child streams forever; the parent drains a while, kills it
    // mid-stream, and must still observe a gapless prefix plus a dead
    // producer — the precondition the daemon's reaper acts on.
    let segment = fresh_segment(64);
    let mut consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

    let child = fork_child(|| produce_n(&segment, u64::MAX)).unwrap();

    let mut scratch = Vec::new();
    let mut received = 0u64;
    while received < 200 {
        consumer.drain_into(&mut scratch);
        for sample in &scratch {
            assert_eq!(*sample, child_beat(received));
            received += 1;
        }
        std::hint::spin_loop();
    }
    assert!(
        consumer.producer_state().is_alive(),
        "child streams until killed"
    );
    child.kill().unwrap();
    assert!(matches!(child.wait().unwrap(), ChildExit::Signaled(_)));

    // Everything the child managed to publish before SIGKILL is intact
    // and in order; then the stream is over for good.
    loop {
        if consumer.drain_into(&mut scratch) == 0 {
            break;
        }
        for sample in &scratch {
            assert_eq!(*sample, child_beat(received));
            received += 1;
        }
    }
    assert!(received >= 200);
    assert!(consumer.producer_state().is_dead());
    assert_eq!(consumer.pending(), 0);
}

#[test]
fn unrelated_process_attaches_by_path() {
    // tmpfile backing: the child re-opens the segment *by path* instead of
    // inheriting the parent's mapping — the attach path an unrelated
    // (non-forked) controller process would use, run in reverse.
    let geometry = SegmentGeometry::for_beat_samples(32).unwrap();
    let created = Segment::create_tmpfile_in(std::env::temp_dir(), geometry).unwrap();
    let path = created.path().unwrap().to_path_buf();
    let parent_segment = Arc::new(created);
    let mut consumer = ShmConsumer::attach(Arc::clone(&parent_segment)).unwrap();

    let child = fork_child(move || {
        // This child maps fresh state via the filesystem; allocation here
        // is acceptable because this closure runs before any beat-path
        // no-alloc claims and the suite tolerates the (tiny) deadlock
        // risk the same way every fork-exec test harness does.
        let Ok(segment) = Segment::open(&path) else {
            return 1;
        };
        produce_n(&Arc::new(segment), 32)
    })
    .unwrap();
    assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));

    let mut scratch = Vec::new();
    assert_eq!(consumer.drain_into(&mut scratch), 32);
    for (tag, sample) in scratch.iter().enumerate() {
        assert_eq!(*sample, child_beat(tag as u64));
    }
}
