//! Error type for the heartbeat framework.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving heartbeat monitors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HeartbeatError {
    /// The requested target heart-rate range is invalid (for example the
    /// minimum exceeds the maximum, or a bound is not finite).
    InvalidTargetRange {
        /// Requested minimum rate in beats per second.
        min: f64,
        /// Requested maximum rate in beats per second.
        max: f64,
    },
    /// The requested sliding-window size is zero.
    ZeroWindowSize,
    /// A heartbeat was emitted with a timestamp earlier than the previous
    /// heartbeat; heartbeat time must be monotone.
    NonMonotonicTimestamp {
        /// Timestamp of the previous heartbeat, in nanoseconds.
        previous_nanos: u64,
        /// Timestamp of the offending heartbeat, in nanoseconds.
        current_nanos: u64,
    },
    /// The referenced monitor is not registered in the registry.
    UnknownMonitor {
        /// The identifier that failed to resolve.
        id: u64,
    },
    /// A monitor with the same name is already registered.
    DuplicateMonitorName {
        /// The conflicting monitor name.
        name: String,
    },
}

impl fmt::Display for HeartbeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeartbeatError::InvalidTargetRange { min, max } => {
                write!(f, "invalid target heart-rate range [{min}, {max}]")
            }
            HeartbeatError::ZeroWindowSize => write!(f, "sliding-window size must be at least 1"),
            HeartbeatError::NonMonotonicTimestamp {
                previous_nanos,
                current_nanos,
            } => write!(
                f,
                "heartbeat timestamp {current_nanos}ns precedes previous heartbeat at {previous_nanos}ns"
            ),
            HeartbeatError::UnknownMonitor { id } => write!(f, "no monitor registered with id {id}"),
            HeartbeatError::DuplicateMonitorName { name } => {
                write!(f, "a monitor named `{name}` is already registered")
            }
        }
    }
}

impl Error for HeartbeatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let messages = [
            HeartbeatError::InvalidTargetRange { min: 5.0, max: 1.0 }.to_string(),
            HeartbeatError::ZeroWindowSize.to_string(),
            HeartbeatError::NonMonotonicTimestamp {
                previous_nanos: 10,
                current_nanos: 5,
            }
            .to_string(),
            HeartbeatError::UnknownMonitor { id: 42 }.to_string(),
            HeartbeatError::DuplicateMonitorName {
                name: "x264".to_string(),
            }
            .to_string(),
        ];
        for message in messages {
            assert!(!message.is_empty());
            assert!(message.chars().next().unwrap().is_lowercase() || message.starts_with('a'));
            assert!(!message.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<HeartbeatError>();
    }
}
