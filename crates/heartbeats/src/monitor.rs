//! The heartbeat monitor: per-application heartbeat emission and rate
//! tracking.

use serde::{Deserialize, Serialize};

use crate::error::HeartbeatError;
use crate::record::{HeartRate, HeartbeatRecord, HeartbeatTag};
use crate::ring::HistoryRing;
use crate::stats::{RateStatistics, SlidingWindow};
use crate::time::{Timestamp, TimestampDelta};

/// Default number of heartbeats in the sliding window (the paper's control
/// system smooths performance over the last twenty heartbeats).
pub const DEFAULT_WINDOW_SIZE: usize = 20;

/// Default number of [`HeartbeatRecord`]s a monitor retains when no explicit
/// history capacity is configured. Large enough that short runs (tests,
/// calibration sweeps, the paper's experiments) observe every record, while
/// bounding memory on a long-running service — the unbounded history the
/// monitor originally kept grew without limit, one record per beat, forever.
pub const DEFAULT_HISTORY_CAPACITY: usize = 65_536;

/// A target heart-rate range: the performance goal of the application.
///
/// PowerDial's experiments set the minimum and maximum to the same value
/// (the heart rate measured with the default configuration), but the
/// framework supports genuine ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetRate {
    min: HeartRate,
    max: HeartRate,
}

impl TargetRate {
    /// Creates a target range from minimum and maximum beats-per-second
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::InvalidTargetRange`] if either bound is not
    /// finite, either is negative, or `min > max`.
    pub fn new(min_bps: f64, max_bps: f64) -> Result<Self, HeartbeatError> {
        if !min_bps.is_finite() || !max_bps.is_finite() || min_bps < 0.0 || min_bps > max_bps {
            return Err(HeartbeatError::InvalidTargetRange {
                min: min_bps,
                max: max_bps,
            });
        }
        Ok(TargetRate {
            min: HeartRate::from_bps(min_bps),
            max: HeartRate::from_bps(max_bps),
        })
    }

    /// Creates a degenerate range whose minimum and maximum are the same
    /// rate, as used throughout the paper's evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::InvalidTargetRange`] if `bps` is negative or
    /// not finite.
    pub fn exact(bps: f64) -> Result<Self, HeartbeatError> {
        TargetRate::new(bps, bps)
    }

    /// Lower bound of the range.
    pub const fn min(&self) -> HeartRate {
        self.min
    }

    /// Upper bound of the range.
    pub const fn max(&self) -> HeartRate {
        self.max
    }

    /// Midpoint of the range, the single rate the controller drives toward.
    pub fn midpoint(&self) -> HeartRate {
        HeartRate::from_bps((self.min.beats_per_second() + self.max.beats_per_second()) / 2.0)
    }
}

/// Configuration of a [`HeartbeatMonitor`].
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::MonitorConfig;
///
/// # fn main() -> Result<(), powerdial_heartbeats::HeartbeatError> {
/// let config = MonitorConfig::new("bodytrack")
///     .with_window_size(20)
///     .with_target_rate_range(0.5, 1.5)?
///     .with_history_capacity(Some(4096));
/// assert_eq!(config.name(), "bodytrack");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    name: String,
    window_size: usize,
    target: Option<TargetRate>,
    history_capacity: Option<usize>,
}

impl MonitorConfig {
    /// Creates a configuration with the default window size, no target rate,
    /// and unbounded history.
    pub fn new(name: impl Into<String>) -> Self {
        MonitorConfig {
            name: name.into(),
            window_size: DEFAULT_WINDOW_SIZE,
            target: None,
            history_capacity: None,
        }
    }

    /// Sets the sliding-window size in heartbeats.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero; use
    /// [`MonitorConfig::try_with_window_size`] for a fallible variant.
    pub fn with_window_size(mut self, window_size: usize) -> Self {
        assert!(window_size > 0, "window size must be at least 1");
        self.window_size = window_size;
        self
    }

    /// Fallible variant of [`MonitorConfig::with_window_size`].
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::ZeroWindowSize`] when `window_size` is zero.
    pub fn try_with_window_size(mut self, window_size: usize) -> Result<Self, HeartbeatError> {
        if window_size == 0 {
            return Err(HeartbeatError::ZeroWindowSize);
        }
        self.window_size = window_size;
        Ok(self)
    }

    /// Sets the target heart-rate range in beats per second.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::InvalidTargetRange`] for an invalid range.
    pub fn with_target_rate_range(
        mut self,
        min_bps: f64,
        max_bps: f64,
    ) -> Result<Self, HeartbeatError> {
        self.target = Some(TargetRate::new(min_bps, max_bps)?);
        Ok(self)
    }

    /// Sets an already-validated target rate.
    pub fn with_target(mut self, target: TargetRate) -> Self {
        self.target = Some(target);
        self
    }

    /// Limits how many [`HeartbeatRecord`]s the monitor retains. `None`
    /// selects the default retention of [`DEFAULT_HISTORY_CAPACITY`] records
    /// — history is always bounded; the sliding-window statistics and the
    /// global rate are unaffected by the retention limit.
    pub fn with_history_capacity(mut self, capacity: Option<usize>) -> Self {
        self.history_capacity = capacity;
        self
    }

    /// The application name attached to heartbeats from this monitor.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured sliding-window size.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// The configured target range, if any. Panics are avoided by returning a
    /// permissive default of `[0, +inf)`-like wide range when unset via
    /// [`MonitorConfig::target`]; use [`MonitorConfig::target_opt`] to see
    /// whether a target was set explicitly.
    pub fn target(&self) -> TargetRate {
        self.target.unwrap_or(TargetRate {
            min: HeartRate::from_bps(0.0),
            max: HeartRate::from_bps(f64::MAX / 2.0),
        })
    }

    /// The explicitly configured target range, if any.
    pub fn target_opt(&self) -> Option<TargetRate> {
        self.target
    }

    /// The configured history capacity (`None` means the default,
    /// [`DEFAULT_HISTORY_CAPACITY`]).
    pub fn history_capacity(&self) -> Option<usize> {
        self.history_capacity
    }

    /// The retention actually applied: the configured capacity, or
    /// [`DEFAULT_HISTORY_CAPACITY`] when none was set.
    pub fn effective_history_capacity(&self) -> usize {
        self.history_capacity.unwrap_or(DEFAULT_HISTORY_CAPACITY)
    }
}

/// Tracks the heartbeats of one application instance.
///
/// The monitor is the producer side of the Application Heartbeats interface:
/// the application calls [`HeartbeatMonitor::heartbeat`] once per unit of
/// work; observers (the PowerDial controller, experiment harnesses) read the
/// derived heart rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    config: MonitorConfig,
    window: SlidingWindow,
    history: HistoryRing,
    next_tag: HeartbeatTag,
    first_timestamp: Option<Timestamp>,
    last_timestamp: Option<Timestamp>,
    total_beats: u64,
}

impl HeartbeatMonitor {
    /// Creates a monitor from its configuration.
    pub fn new(config: MonitorConfig) -> Self {
        let window = SlidingWindow::new(config.window_size());
        let history = HistoryRing::new(config.effective_history_capacity());
        HeartbeatMonitor {
            config,
            window,
            history,
            next_tag: HeartbeatTag::default(),
            first_timestamp: None,
            last_timestamp: None,
            total_beats: 0,
        }
    }

    /// Returns the monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Emits a heartbeat at `now`, returning the record for this beat.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous heartbeat; use
    /// [`HeartbeatMonitor::try_heartbeat`] for a fallible variant.
    pub fn heartbeat(&mut self, now: Timestamp) -> HeartbeatRecord {
        self.try_heartbeat(now)
            .expect("heartbeat timestamps must be monotone")
    }

    /// Emits a heartbeat at `now`, returning the record for this beat.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::NonMonotonicTimestamp`] if `now` precedes
    /// the previous heartbeat.
    pub fn try_heartbeat(&mut self, now: Timestamp) -> Result<HeartbeatRecord, HeartbeatError> {
        if let Some(last) = self.last_timestamp {
            if now < last {
                return Err(HeartbeatError::NonMonotonicTimestamp {
                    previous_nanos: last.as_nanos(),
                    current_nanos: now.as_nanos(),
                });
            }
        }

        let latency = match self.last_timestamp {
            Some(last) => now - last,
            None => TimestampDelta::ZERO,
        };

        if self.last_timestamp.is_some() {
            self.window.push(latency);
        }

        let tag = self.next_tag;
        self.next_tag = self.next_tag.next();
        self.total_beats += 1;
        if self.first_timestamp.is_none() {
            self.first_timestamp = Some(now);
        }
        self.last_timestamp = Some(now);

        let record = HeartbeatRecord {
            tag,
            timestamp: now,
            latency,
            instant_rate: HeartRate::from_latency(latency),
            window_rate: self.window.rate().unwrap_or(None),
            global_rate: self.global_rate(),
        };

        self.history.push(record);
        Ok(record)
    }

    /// Total number of heartbeats emitted so far.
    pub fn total_beats(&self) -> u64 {
        self.total_beats
    }

    /// Timestamp of the first heartbeat, if any beat has been emitted.
    pub fn first_timestamp(&self) -> Option<Timestamp> {
        self.first_timestamp
    }

    /// Timestamp of the most recent heartbeat, if any beat has been emitted.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.last_timestamp
    }

    /// The most recent heartbeat record, if any.
    pub fn last_record(&self) -> Option<&HeartbeatRecord> {
        self.history.last()
    }

    /// The retained heartbeat records, oldest first, capped at the
    /// configured retention (see [`MonitorConfig::with_history_capacity`]).
    pub fn history(&self) -> &HistoryRing {
        &self.history
    }

    /// The heart rate over the sliding window, if at least two beats have
    /// been emitted. Monitor-side latencies come from monotonic timestamp
    /// differences, so a summed-latency overflow (more than five centuries
    /// in one window) is treated as "no rate" rather than surfaced.
    pub fn window_rate(&self) -> Option<HeartRate> {
        self.window.rate().unwrap_or(None)
    }

    /// The heart rate over the whole execution (total beats minus one divided
    /// by the elapsed time), if defined.
    pub fn global_rate(&self) -> Option<HeartRate> {
        match (self.first_timestamp, self.last_timestamp) {
            (Some(first), Some(last)) if self.total_beats > 1 => {
                HeartRate::from_beats_over(self.total_beats - 1, last - first)
            }
            _ => None,
        }
    }

    /// Latency statistics over the sliding window, if any latency has been
    /// observed.
    pub fn window_statistics(&self) -> Option<RateStatistics> {
        self.window.statistics()
    }

    /// Returns the windowed rate normalized to the target midpoint: 1.0 means
    /// exactly on target, below 1.0 means the application is running slow.
    /// `None` when no window rate or no explicit target is available.
    pub fn normalized_performance(&self) -> Option<f64> {
        let target = self.config.target_opt()?;
        let rate = self.window_rate()?;
        Some(rate.normalized_to(target.midpoint()))
    }

    /// Resets the monitor to its initial state, keeping the configuration.
    pub fn reset(&mut self) {
        self.window.clear();
        self.history.clear();
        self.next_tag = HeartbeatTag::default();
        self.first_timestamp = None;
        self.last_timestamp = None;
        self.total_beats = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor_with_window(window: usize) -> HeartbeatMonitor {
        HeartbeatMonitor::new(MonitorConfig::new("test").with_window_size(window))
    }

    #[test]
    fn first_heartbeat_has_zero_latency_and_no_rates() {
        let mut m = monitor_with_window(4);
        let record = m.heartbeat(Timestamp::from_millis(100));
        assert_eq!(record.tag, HeartbeatTag(0));
        assert_eq!(record.latency, TimestampDelta::ZERO);
        assert!(record.instant_rate.is_none());
        assert!(record.window_rate.is_none());
        assert!(record.global_rate.is_none());
    }

    #[test]
    fn steady_beats_produce_steady_rates() {
        let mut m = monitor_with_window(4);
        for i in 0..10u64 {
            m.heartbeat(Timestamp::from_millis(100 * i));
        }
        let window = m.window_rate().unwrap().beats_per_second();
        let global = m.global_rate().unwrap().beats_per_second();
        assert!((window - 10.0).abs() < 1e-9);
        assert!((global - 10.0).abs() < 1e-9);
    }

    #[test]
    fn window_rate_tracks_recent_slowdown() {
        let mut m = monitor_with_window(2);
        m.heartbeat(Timestamp::from_millis(0));
        m.heartbeat(Timestamp::from_millis(10));
        m.heartbeat(Timestamp::from_millis(20));
        // Sudden slowdown: next beats are 100 ms apart.
        m.heartbeat(Timestamp::from_millis(120));
        m.heartbeat(Timestamp::from_millis(220));
        let window = m.window_rate().unwrap().beats_per_second();
        assert!(
            (window - 10.0).abs() < 1e-9,
            "window rate should reflect the slowdown"
        );
        // Global rate still remembers the fast beginning.
        assert!(m.global_rate().unwrap().beats_per_second() > window);
    }

    #[test]
    fn non_monotonic_timestamp_is_rejected() {
        let mut m = monitor_with_window(4);
        m.heartbeat(Timestamp::from_millis(50));
        let err = m.try_heartbeat(Timestamp::from_millis(40)).unwrap_err();
        assert!(matches!(err, HeartbeatError::NonMonotonicTimestamp { .. }));
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut m = monitor_with_window(4);
        m.heartbeat(Timestamp::from_millis(10));
        let record = m.try_heartbeat(Timestamp::from_millis(10)).unwrap();
        assert_eq!(record.latency, TimestampDelta::ZERO);
    }

    #[test]
    fn zero_history_capacity_retains_nothing_but_beats_still_count() {
        let config = MonitorConfig::new("no-history")
            .with_window_size(4)
            .with_history_capacity(Some(0));
        let mut m = HeartbeatMonitor::new(config);
        for i in 0..10u64 {
            m.heartbeat(Timestamp::from_millis(i * 10));
        }
        assert!(m.history().is_empty());
        assert!(m.last_record().is_none());
        assert_eq!(m.total_beats(), 10);
        assert!(m.window_rate().is_some());
    }

    #[test]
    fn history_capacity_bounds_retained_records() {
        let config = MonitorConfig::new("bounded")
            .with_window_size(4)
            .with_history_capacity(Some(3));
        let mut m = HeartbeatMonitor::new(config);
        for i in 0..10u64 {
            m.heartbeat(Timestamp::from_millis(i));
        }
        assert_eq!(m.history().len(), 3);
        assert_eq!(m.history()[0].tag, HeartbeatTag(7));
        assert_eq!(m.total_beats(), 10);
    }

    #[test]
    fn normalized_performance_requires_target() {
        let mut without_target = monitor_with_window(4);
        without_target.heartbeat(Timestamp::from_millis(0));
        without_target.heartbeat(Timestamp::from_millis(10));
        assert!(without_target.normalized_performance().is_none());

        let config = MonitorConfig::new("t")
            .with_window_size(4)
            .with_target_rate_range(50.0, 50.0)
            .unwrap();
        let mut with_target = HeartbeatMonitor::new(config);
        with_target.heartbeat(Timestamp::from_millis(0));
        with_target.heartbeat(Timestamp::from_millis(20));
        // 50 bps observed vs 50 bps target.
        assert!((with_target.normalized_performance().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = monitor_with_window(4);
        for i in 0..5u64 {
            m.heartbeat(Timestamp::from_millis(i * 10));
        }
        m.reset();
        assert_eq!(m.total_beats(), 0);
        assert!(m.history().is_empty());
        assert!(m.window_rate().is_none());
        assert!(m.global_rate().is_none());
        let record = m.heartbeat(Timestamp::from_millis(999));
        assert_eq!(record.tag, HeartbeatTag(0));
    }

    #[test]
    fn target_range_validation() {
        assert!(TargetRate::new(5.0, 1.0).is_err());
        assert!(TargetRate::new(-1.0, 1.0).is_err());
        assert!(TargetRate::new(f64::NAN, 1.0).is_err());
        let range = TargetRate::new(10.0, 30.0).unwrap();
        assert!((range.midpoint().beats_per_second() - 20.0).abs() < 1e-9);
        assert_eq!(
            TargetRate::exact(7.0).unwrap().min(),
            HeartRate::from_bps(7.0)
        );
    }

    #[test]
    fn config_builder_round_trip() {
        let config = MonitorConfig::new("swaptions")
            .try_with_window_size(8)
            .unwrap()
            .with_target_rate_range(1.0, 2.0)
            .unwrap()
            .with_history_capacity(Some(16));
        assert_eq!(config.name(), "swaptions");
        assert_eq!(config.window_size(), 8);
        assert_eq!(config.history_capacity(), Some(16));
        assert!(config.target_opt().is_some());
        assert!(MonitorConfig::new("x").try_with_window_size(0).is_err());
    }

    #[test]
    fn default_target_is_permissive() {
        let config = MonitorConfig::new("no-target");
        let rate = HeartRate::from_bps(123.0);
        assert!(rate.is_within_target(config.target()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Heart-rate monotonicity: for evenly spaced beats the windowed rate
        /// equals the reciprocal of the spacing, regardless of window size.
        #[test]
        fn uniform_beats_give_exact_rate(
            window in 1usize..64,
            period_ms in 1u64..10_000,
            beats in 2u64..200,
        ) {
            let mut m = HeartbeatMonitor::new(
                MonitorConfig::new("prop").with_window_size(window),
            );
            for i in 0..beats {
                m.heartbeat(Timestamp::from_millis(i * period_ms));
            }
            let expected = 1000.0 / period_ms as f64;
            let window_rate = m.window_rate().unwrap().beats_per_second();
            let global_rate = m.global_rate().unwrap().beats_per_second();
            prop_assert!((window_rate - expected).abs() <= 1e-6 * expected);
            prop_assert!((global_rate - expected).abs() <= 1e-6 * expected);
        }

        /// The monitor accepts any monotone timestamp sequence and tags beats
        /// sequentially.
        #[test]
        fn monotone_sequences_are_accepted(
            mut offsets in proptest::collection::vec(0u64..1_000_000u64, 1..100),
        ) {
            offsets.sort_unstable();
            let mut m = HeartbeatMonitor::new(MonitorConfig::new("prop"));
            for (i, nanos) in offsets.iter().enumerate() {
                let record = m.try_heartbeat(Timestamp::from_nanos(*nanos)).unwrap();
                prop_assert_eq!(record.tag, HeartbeatTag(i as u64));
            }
            prop_assert_eq!(m.total_beats(), offsets.len() as u64);
        }
    }
}
