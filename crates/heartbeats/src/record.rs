//! Heartbeat records and heart-rate values.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::monitor::TargetRate;
use crate::time::{Timestamp, TimestampDelta};

/// A monotonically increasing sequence number identifying one heartbeat
/// emitted by a monitor.
///
/// The first heartbeat of a monitor has tag `0`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct HeartbeatTag(pub u64);

impl HeartbeatTag {
    /// Returns the next tag in sequence.
    pub const fn next(self) -> HeartbeatTag {
        HeartbeatTag(self.0 + 1)
    }

    /// Returns the raw sequence number.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for HeartbeatTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A heart rate, in heartbeats per second.
///
/// Heart rate is the reciprocal of the time between results; PowerDial's
/// performance goal is expressed as a target heart-rate range.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::{HeartRate, TimestampDelta};
///
/// let rate = HeartRate::from_latency(TimestampDelta::from_millis(40)).unwrap();
/// assert!((rate.beats_per_second() - 25.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct HeartRate(f64);

impl HeartRate {
    /// Creates a heart rate from beats per second.
    ///
    /// # Panics
    ///
    /// Panics if `beats_per_second` is negative, NaN, or infinite.
    pub fn from_bps(beats_per_second: f64) -> Self {
        assert!(
            beats_per_second.is_finite() && beats_per_second >= 0.0,
            "heart rate must be finite and non-negative, got {beats_per_second}"
        );
        HeartRate(beats_per_second)
    }

    /// Creates a heart rate from the latency between two consecutive
    /// heartbeats. Returns `None` for a zero latency (infinite rate).
    pub fn from_latency(latency: TimestampDelta) -> Option<Self> {
        if latency.is_zero() {
            None
        } else {
            Some(HeartRate(1.0 / latency.as_secs_f64()))
        }
    }

    /// Creates a heart rate from a number of beats observed over an elapsed
    /// duration. Returns `None` if the duration is zero.
    pub fn from_beats_over(beats: u64, elapsed: TimestampDelta) -> Option<Self> {
        if elapsed.is_zero() {
            None
        } else {
            Some(HeartRate(beats as f64 / elapsed.as_secs_f64()))
        }
    }

    /// Returns the rate in beats per second.
    pub const fn beats_per_second(self) -> f64 {
        self.0
    }

    /// Returns the mean latency between beats implied by this rate, or `None`
    /// for a zero rate.
    pub fn mean_latency(self) -> Option<TimestampDelta> {
        if self.0 == 0.0 {
            None
        } else {
            Some(TimestampDelta::from_secs_f64(1.0 / self.0))
        }
    }

    /// Returns this rate normalized to a target rate (1.0 means exactly on
    /// target, below 1.0 means too slow).
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn normalized_to(self, target: HeartRate) -> f64 {
        assert!(
            target.0 > 0.0,
            "cannot normalize to a zero target heart rate"
        );
        self.0 / target.0
    }

    /// Returns true when this rate falls within the inclusive target range.
    pub fn is_within_target(self, target: TargetRate) -> bool {
        self.0 >= target.min().beats_per_second() && self.0 <= target.max().beats_per_second()
    }
}

impl fmt::Display for HeartRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} beats/s", self.0)
    }
}

/// One heartbeat as recorded by a [`crate::HeartbeatMonitor`].
///
/// Mirrors the record produced by the Application Heartbeats API: the beat's
/// sequence tag, its timestamp, the latency since the previous beat, and the
/// instantaneous / windowed / global heart rates at the time of the beat.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// Sequence number of this heartbeat.
    pub tag: HeartbeatTag,
    /// Time at which the heartbeat was emitted.
    pub timestamp: Timestamp,
    /// Time since the previous heartbeat (zero for the first beat).
    pub latency: TimestampDelta,
    /// Rate computed from this beat's latency alone, if defined.
    pub instant_rate: Option<HeartRate>,
    /// Rate computed over the monitor's sliding window, if defined.
    pub window_rate: Option<HeartRate>,
    /// Rate computed over the whole execution, if defined.
    pub global_rate: Option<HeartRate>,
}

impl HeartbeatRecord {
    /// Returns the most specific rate available: instant, falling back to
    /// window, falling back to global.
    pub fn best_rate(&self) -> Option<HeartRate> {
        self.instant_rate.or(self.window_rate).or(self.global_rate)
    }
}

impl fmt::Display for HeartbeatRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "beat {} at {} (latency {})",
            self.tag, self.timestamp, self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_sequence_increments() {
        let t = HeartbeatTag::default();
        assert_eq!(t.value(), 0);
        assert_eq!(t.next().value(), 1);
        assert_eq!(t.next().next(), HeartbeatTag(2));
    }

    #[test]
    fn rate_from_latency_is_reciprocal() {
        let r = HeartRate::from_latency(TimestampDelta::from_millis(100)).unwrap();
        assert!((r.beats_per_second() - 10.0).abs() < 1e-9);
        assert_eq!(r.mean_latency().unwrap(), TimestampDelta::from_millis(100));
    }

    #[test]
    fn rate_from_zero_latency_is_none() {
        assert!(HeartRate::from_latency(TimestampDelta::ZERO).is_none());
    }

    #[test]
    fn rate_from_beats_over_duration() {
        let r = HeartRate::from_beats_over(30, TimestampDelta::from_secs(2)).unwrap();
        assert!((r.beats_per_second() - 15.0).abs() < 1e-9);
        assert!(HeartRate::from_beats_over(30, TimestampDelta::ZERO).is_none());
    }

    #[test]
    fn normalization_against_target() {
        let r = HeartRate::from_bps(20.0);
        let target = HeartRate::from_bps(40.0);
        assert!((r.normalized_to(target) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero target")]
    fn normalization_against_zero_target_panics() {
        HeartRate::from_bps(1.0).normalized_to(HeartRate::from_bps(0.0));
    }

    #[test]
    fn zero_rate_has_no_mean_latency() {
        assert!(HeartRate::from_bps(0.0).mean_latency().is_none());
    }

    #[test]
    fn best_rate_prefers_instant() {
        let record = HeartbeatRecord {
            tag: HeartbeatTag(3),
            timestamp: Timestamp::from_millis(10),
            latency: TimestampDelta::from_millis(5),
            instant_rate: Some(HeartRate::from_bps(200.0)),
            window_rate: Some(HeartRate::from_bps(100.0)),
            global_rate: Some(HeartRate::from_bps(50.0)),
        };
        assert_eq!(record.best_rate(), Some(HeartRate::from_bps(200.0)));
    }

    #[test]
    fn best_rate_falls_back_to_global() {
        let record = HeartbeatRecord {
            tag: HeartbeatTag(0),
            timestamp: Timestamp::ZERO,
            latency: TimestampDelta::ZERO,
            instant_rate: None,
            window_rate: None,
            global_rate: Some(HeartRate::from_bps(7.0)),
        };
        assert_eq!(record.best_rate(), Some(HeartRate::from_bps(7.0)));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rate_rejects_nan() {
        HeartRate::from_bps(f64::NAN);
    }
}
