//! A fixed-capacity ring buffer of heartbeat records.
//!
//! [`HeartbeatMonitor`](crate::HeartbeatMonitor) used to keep its full
//! history in an unbounded `Vec`, which grows without limit on a
//! long-running service and reallocates on the hot path. [`HistoryRing`]
//! replaces it: a bounded ring that overwrites the oldest record once full,
//! so a steady-state heartbeat performs no allocation and the monitor's
//! memory is capped by its configured retention.
//!
//! The backing storage grows lazily up to the capacity (a fresh monitor does
//! not pre-reserve the full retention), then stays fixed: after the ring
//! fills once, `push` is a store plus a head bump.

use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::record::HeartbeatRecord;

/// A bounded, oldest-first-indexed ring of [`HeartbeatRecord`]s.
///
/// Indexing is logical: `ring[0]` is the **oldest** retained record and
/// `ring[ring.len() - 1]` the newest, regardless of where the ring's write
/// head currently is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryRing {
    records: Vec<HeartbeatRecord>,
    capacity: usize,
    /// Physical index of the oldest record once the ring has wrapped.
    head: usize,
}

impl HistoryRing {
    /// Creates an empty ring retaining at most `capacity` records.
    ///
    /// A capacity of zero is allowed and retains nothing (every push is
    /// dropped), matching the monitor's historical acceptance of a zero
    /// history capacity.
    pub fn new(capacity: usize) -> Self {
        HistoryRing {
            records: Vec::new(),
            capacity,
            head: 0,
        }
    }

    /// The maximum number of records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when no record is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns true when the ring retains `capacity` records (and every
    /// further push overwrites the oldest).
    pub fn is_full(&self) -> bool {
        self.records.len() == self.capacity
    }

    /// Appends a record, overwriting the oldest when full (a no-op at
    /// capacity zero). O(1); allocates only while the ring is still growing
    /// toward its capacity.
    pub fn push(&mut self, record: HeartbeatRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else if self.capacity > 0 {
            self.records[self.head] = record;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    /// Returns the record at logical position `index` (0 = oldest), or
    /// `None` when out of range.
    pub fn get(&self, index: usize) -> Option<&HeartbeatRecord> {
        if index >= self.records.len() {
            return None;
        }
        Some(&self.records[self.physical(index)])
    }

    /// The oldest retained record, if any.
    pub fn first(&self) -> Option<&HeartbeatRecord> {
        self.get(0)
    }

    /// The newest retained record, if any.
    pub fn last(&self) -> Option<&HeartbeatRecord> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterates over the retained records from oldest to newest.
    pub fn iter(&self) -> HistoryIter<'_> {
        HistoryIter {
            ring: self,
            position: 0,
        }
    }

    /// Removes every record, keeping the allocated storage and capacity.
    pub fn clear(&mut self) {
        self.records.clear();
        self.head = 0;
    }

    /// Copies the retained records into a fresh oldest-first `Vec` (for
    /// reporting paths that want a contiguous slice; not for the hot path).
    pub fn to_vec(&self) -> Vec<HeartbeatRecord> {
        self.iter().copied().collect()
    }

    fn physical(&self, logical: usize) -> usize {
        debug_assert!(logical < self.records.len());
        if self.records.len() < self.capacity {
            logical
        } else {
            let shifted = self.head + logical;
            if shifted >= self.capacity {
                shifted - self.capacity
            } else {
                shifted
            }
        }
    }
}

impl Index<usize> for HistoryRing {
    type Output = HeartbeatRecord;

    fn index(&self, index: usize) -> &HeartbeatRecord {
        self.get(index).expect("history ring index out of range")
    }
}

/// Oldest-to-newest iterator over a [`HistoryRing`] (see
/// [`HistoryRing::iter`]). Allocation-free.
#[derive(Debug, Clone)]
pub struct HistoryIter<'a> {
    ring: &'a HistoryRing,
    position: usize,
}

impl<'a> Iterator for HistoryIter<'a> {
    type Item = &'a HeartbeatRecord;

    fn next(&mut self) -> Option<&'a HeartbeatRecord> {
        let record = self.ring.get(self.position)?;
        self.position += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.ring.len().saturating_sub(self.position);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for HistoryIter<'_> {}

impl<'a> IntoIterator for &'a HistoryRing {
    type Item = &'a HeartbeatRecord;
    type IntoIter = HistoryIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Rings are equal when they retain the same records in the same logical
/// order under the same capacity (head position is irrelevant).
impl PartialEq for HistoryRing {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.len() == other.len()
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{HeartbeatRecord, HeartbeatTag};
    use crate::time::{Timestamp, TimestampDelta};

    fn record(tag: u64) -> HeartbeatRecord {
        HeartbeatRecord {
            tag: HeartbeatTag(tag),
            timestamp: Timestamp::from_millis(tag),
            latency: TimestampDelta::from_millis(1),
            instant_rate: None,
            window_rate: None,
            global_rate: None,
        }
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut ring = HistoryRing::new(0);
        ring.push(record(1));
        ring.push(record(2));
        assert!(ring.is_empty());
        assert!(ring.is_full());
        assert_eq!(ring.capacity(), 0);
        assert!(ring.first().is_none());
        assert!(ring.last().is_none());
        assert_eq!(ring.iter().count(), 0);
    }

    #[test]
    fn grows_then_wraps_oldest_first() {
        let mut ring = HistoryRing::new(3);
        assert!(ring.is_empty());
        for tag in 0..5 {
            ring.push(record(tag));
        }
        assert!(ring.is_full());
        assert_eq!(ring.len(), 3);
        let tags: Vec<u64> = ring.iter().map(|r| r.tag.value()).collect();
        assert_eq!(tags, vec![2, 3, 4]);
        assert_eq!(ring[0].tag, HeartbeatTag(2));
        assert_eq!(ring.first().unwrap().tag, HeartbeatTag(2));
        assert_eq!(ring.last().unwrap().tag, HeartbeatTag(4));
        assert!(ring.get(3).is_none());
    }

    #[test]
    fn partial_ring_indexes_in_insertion_order() {
        let mut ring = HistoryRing::new(8);
        ring.push(record(10));
        ring.push(record(11));
        assert_eq!(ring.len(), 2);
        assert!(!ring.is_full());
        assert_eq!(ring[1].tag, HeartbeatTag(11));
        assert_eq!(ring.to_vec().len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut ring = HistoryRing::new(2);
        for tag in 0..5 {
            ring.push(record(tag));
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 2);
        ring.push(record(9));
        assert_eq!(ring[0].tag, HeartbeatTag(9));
    }

    #[test]
    fn equality_ignores_head_position() {
        // Same logical content reached through different wrap states.
        let mut a = HistoryRing::new(2);
        a.push(record(1));
        a.push(record(2));
        let mut b = HistoryRing::new(2);
        b.push(record(0));
        b.push(record(1));
        b.push(record(2));
        assert_eq!(a, b);
        b.push(record(3));
        assert_ne!(a, b);
    }

    #[test]
    fn for_loop_iterates_by_reference() {
        let mut ring = HistoryRing::new(4);
        ring.push(record(0));
        ring.push(record(1));
        let mut seen = 0;
        for r in &ring {
            assert_eq!(r.tag.value(), seen);
            seen += 1;
        }
        assert_eq!(seen, 2);
    }
}
