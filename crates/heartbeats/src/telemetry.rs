//! Allocation-free runtime telemetry primitives: a fixed-bucket
//! log-linear latency histogram and a ring-buffered decision trace.
//!
//! A daemon managing thousands of applications cannot afford telemetry
//! that allocates, locks, or branches unpredictably on the drain path.
//! Both primitives here are built for that constraint:
//!
//! * [`LatencyHistogram`] is an HDR-style log-linear histogram over a
//!   fixed 64×8 bucket grid (512 `u64` counters inline in the struct —
//!   no heap). [`LatencyHistogram::record`] is a couple of shifts and
//!   one array increment; quantile queries and merges are cold-path.
//! * [`DecisionTraceRing`] is a fixed-capacity overwrite-oldest ring of
//!   `Copy` [`DecisionTraceRecord`]s. It allocates once at construction
//!   and never again; a push is a bounds-free store plus two counter
//!   updates.
//!
//! # Bucket layout
//!
//! Values are bucketed by their most-significant bit (the octave) and
//! the next [`LatencyHistogram::SUB_BUCKET_BITS`] bits below it (the
//! sub-bucket), giving 8 sub-buckets per power of two:
//!
//! ```text
//! row 0:  values 0..8        width 1   (exact)
//! row 1:  values 8..16       width 1   (exact)
//! row 2:  values 16..32      width 2
//! row 3:  values 32..64      width 4
//! ...
//! row r:  values 2^(r+2)..2^(r+3), width 2^(r-1)     (r >= 1)
//! ...
//! row 61: values 2^63..2^64  width 2^60
//! ```
//!
//! Every representable `u64` maps to one of 496 buckets (rows 62 and 63
//! of the grid are unused headroom), and the bucket width is at most
//! 1/8th of the bucket's lower bound — so any reported quantile is
//! within **12.5%** of the true sample value, at any magnitude from
//! nanoseconds to hours. Merging two histograms is a bucket-wise add,
//! which makes fleet-wide rollups *exact* aggregations of the per-app
//! histograms (unlike averaging percentiles, which is meaningless).
//!
//! # Overhead budget
//!
//! One `record()` call costs a handful of ALU operations and one
//! counter increment; the drain path records a whole batch through
//! [`LatencyHistogram::record_all`], which keeps the summary fields in
//! registers and coalesces same-bucket runs into one add (~2 ns per
//! sample in cache). At fleet scale the histograms exceed L2, so
//! [`LatencyHistogram::prefetch`] lets the drain loop warm the lines
//! while the decision kernel runs. End to end the daemon records one
//! latency sample per drained beat and one QoS sample per quantum; the
//! multiapp benchmark's `telemetry` section prices the instrumented vs
//! uninstrumented drain at N = 512 (a few ns/beat on the single-core
//! dev container; instrumented stays under the pre-telemetry committed
//! baseline) and the perf gate pins the on/off ratio at 15% tolerance.
//! The `no_alloc` suites prove the instrumented path never touches the
//! allocator.

use crate::time::Timestamp;

/// Summary statistics of a [`LatencyHistogram`], extracted on the cold
/// path for snapshot export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded value (exact; 0 when empty).
    pub min: u64,
    /// Largest recorded value (exact; 0 when empty).
    pub max: u64,
    /// Mean of the recorded values (exact up to `u64` sum saturation).
    pub mean: f64,
    /// Median (see [`LatencyHistogram::value_at_quantile`]).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// The all-zero summary of an empty histogram.
    pub const EMPTY: HistogramSummary = HistogramSummary {
        count: 0,
        min: 0,
        max: 0,
        mean: 0.0,
        p50: 0,
        p95: 0,
        p99: 0,
    };
}

/// An allocation-free, fixed-footprint log-linear histogram of `u64`
/// values (HDR-histogram style), sized for nanosecond latencies but
/// exact-width across the whole `u64` range.
///
/// See the [module docs](self) for the bucket layout and error bound.
/// The struct is ~4 KiB of inline counters; clone it freely on cold
/// paths, keep one per hot entity, never box per-sample.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; LatencyHistogram::BUCKETS],
    count: u64,
    /// Saturating sum of all recorded values (for the mean).
    sum: u64,
    min: u64,
    max: u64,
    /// Bucket hit by the most recent record — the cache line
    /// [`LatencyHistogram::prefetch`] warms, since stable latency
    /// distributions hit the same bucket quantum after quantum.
    last_bucket: usize,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Sub-bucket resolution: values within one octave are split into
    /// `2^SUB_BUCKET_BITS` linear sub-buckets.
    pub const SUB_BUCKET_BITS: u32 = 3;
    /// Sub-buckets per octave row of the grid.
    pub const SUB_BUCKETS: usize = 1 << Self::SUB_BUCKET_BITS;
    /// Rows in the bucket grid (one per octave, plus the linear row).
    pub const ROWS: usize = 64;
    /// Total buckets: the 64×8 grid.
    pub const BUCKETS: usize = Self::ROWS * Self::SUB_BUCKETS;
    /// Worst-case relative quantile error: one sub-bucket width, i.e.
    /// `1 / SUB_BUCKETS` of the value.
    pub const RELATIVE_ERROR: f64 = 1.0 / Self::SUB_BUCKETS as f64;

    /// Creates an empty histogram. `const`, so histograms can live in
    /// statics or be built without touching the allocator.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            last_bucket: 0,
        }
    }

    /// The grid bucket a value falls into: branchless — `value | 8`
    /// forces the linear row's values onto the same msb as row 1, which
    /// folds the `value < 8` special case into the general formula
    /// (`row * 8 + sub` algebraically collapses to
    /// `shift * 8 + (value >> shift)`), so the hot loop carries no
    /// data-dependent branch.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        let msb = 63 - (value | Self::SUB_BUCKETS as u64).leading_zeros();
        let shift = msb - Self::SUB_BUCKET_BITS;
        ((shift as usize) << Self::SUB_BUCKET_BITS) + ((value >> shift) as usize)
    }

    /// Smallest value mapping to `bucket`.
    #[inline]
    fn bucket_lower_bound(bucket: usize) -> u64 {
        let row = bucket / Self::SUB_BUCKETS;
        let sub = (bucket % Self::SUB_BUCKETS) as u64;
        if row == 0 {
            sub
        } else {
            (Self::SUB_BUCKETS as u64 + sub) << (row - 1)
        }
    }

    /// Largest value mapping to `bucket` (the reported quantile value).
    #[inline]
    fn bucket_upper_bound(bucket: usize) -> u64 {
        let row = bucket / Self::SUB_BUCKETS;
        let width = if row == 0 { 1 } else { 1u64 << (row - 1) };
        Self::bucket_lower_bound(bucket) + (width - 1)
    }

    /// Records one value. Hot path: two shifts, one increment, four
    /// scalar updates — no allocation, no branching on the data beyond
    /// min/max.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = Self::bucket_of(value);
        self.buckets[bucket] += 1;
        self.last_bucket = bucket;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records a batch of values in one pass. Equivalent to calling
    /// [`LatencyHistogram::record`] per value, but the summary fields
    /// (count/sum/min/max) accumulate in registers and land in the
    /// struct once, and consecutive values that fall into the same
    /// bucket coalesce into a single counter add. Real drain batches are
    /// runs of similar latencies, so the common case touches one bucket
    /// line per run instead of issuing a dependent read-modify-write per
    /// sample — this is what keeps the instrumented drain path within
    /// the benchmark's overhead budget.
    #[inline]
    pub fn record_all<I: IntoIterator<Item = u64>>(&mut self, values: I) {
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut saturated = false;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut run_bucket = usize::MAX;
        let mut run_len = 0u64;
        for value in values {
            count += 1;
            let (next_sum, overflow) = sum.overflowing_add(value);
            sum = if overflow { u64::MAX } else { next_sum };
            saturated |= overflow;
            min = min.min(value);
            max = max.max(value);
            let bucket = Self::bucket_of(value);
            if bucket == run_bucket {
                run_len += 1;
            } else {
                if run_len > 0 {
                    self.buckets[run_bucket] += run_len;
                }
                run_bucket = bucket;
                run_len = 1;
            }
        }
        if run_len > 0 {
            self.buckets[run_bucket] += run_len;
            self.last_bucket = run_bucket;
        }
        if count == 0 {
            return;
        }
        self.count += count;
        self.sum = if saturated {
            u64::MAX
        } else {
            self.sum.saturating_add(sum)
        };
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    /// Warms the cache lines the next [`LatencyHistogram::record`] /
    /// [`LatencyHistogram::record_all`] burst will touch: the summary
    /// header and the most recently hit bucket line (latency
    /// distributions are stable from quantum to quantum, so the last
    /// bucket is almost always the next one too). A fleet of thousands
    /// of histograms exceeds L2, so without this every app's first
    /// record of a quantum stalls on a cold line; issued a few hundred
    /// nanoseconds ahead (e.g. at drain time, before the decision
    /// kernel) the miss overlaps work that doesn't need the line. No-op
    /// off x86_64.
    #[inline]
    pub fn prefetch(&self) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `_mm_prefetch` is a hint; it performs no memory access
        // and is defined for any address.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch((&raw const self.count).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(
                (&raw const self.buckets[self.last_bucket]).cast::<i8>(),
                _MM_HINT_T0,
            );
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (exact). 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values. 0.0 when empty. Exact unless the
    /// running sum saturated `u64` (≈584 years of nanoseconds).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), by the
    /// nearest-rank definition: the upper bound of the bucket holding
    /// the `ceil(q·count)`-th smallest sample, capped at the exact
    /// recorded maximum. Within [`LatencyHistogram::RELATIVE_ERROR`] of
    /// the true sample value, and monotone in `q`. Returns 0 when
    /// empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &hits) in self.buckets.iter().enumerate() {
            cumulative += hits;
            if cumulative >= target {
                return Self::bucket_upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`, bucket-wise — the
    /// merged histogram is *identical* to one that recorded both sample
    /// streams directly, so rollups over merged histograms are exact.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty without releasing its (inline)
    /// storage.
    pub fn reset(&mut self) {
        *self = LatencyHistogram::new();
    }

    /// Extracts the snapshot summary (count, min, max, mean, p50, p95,
    /// p99). Cold path.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.value_at_quantile(0.50),
            p95: self.value_at_quantile(0.95),
            p99: self.value_at_quantile(0.99),
        }
    }
}

impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets[..] == other.buckets[..]
    }
}

/// Why a [`DecisionTraceRecord`] was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceReason {
    /// A normal actuation-quantum decision: the controller consumed an
    /// observation at a quantum boundary and (re)planned.
    Boundary,
    /// The first decision published for an application adopted from a
    /// crashed predecessor daemon, warm-started from the segment's
    /// warm-start block.
    WarmStart,
    /// The application's decision state was reset to the safe/empty
    /// state (unregistered or reaped; its segment's next tenant starts
    /// clean).
    SafeReset,
    /// The application was blamed for a fault (panic or poisoned window)
    /// and quarantined: its channel is parked and its decision block
    /// holds the configured safe-state until it is reaped.
    Quarantined,
    /// A worker shard's thread died (panic escaping per-app containment
    /// or an injected kill). The record's `app` field carries the shard
    /// index, not an application id.
    ShardDead,
    /// A dead worker shard was respawned on a fresh thread. The record's
    /// `app` field carries the shard index.
    ShardRespawned,
    /// A surviving application was migrated onto a respawned shard with
    /// its control state intact.
    Migrated,
}

impl TraceReason {
    /// Stable lowercase name, used in the JSON snapshot.
    pub const fn as_str(self) -> &'static str {
        match self {
            TraceReason::Boundary => "boundary",
            TraceReason::WarmStart => "warm_start",
            TraceReason::SafeReset => "safe_reset",
            TraceReason::Quarantined => "quarantined",
            TraceReason::ShardDead => "shard_dead",
            TraceReason::ShardRespawned => "shard_respawned",
            TraceReason::Migrated => "migrated",
        }
    }
}

/// One entry of the decision trace: which knob was chosen for which
/// application, when, and why. `Copy`, fixed-size, no heap — a trace
/// push never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTraceRecord {
    /// Monotonic sequence number within the owning ring (stamped by
    /// [`DecisionTraceRing::push`]; records overwritten by wraparound
    /// leave a visible gap).
    pub seq: u64,
    /// Timestamp of the last beat folded into this decision (beat time,
    /// not wall time — the daemon runs on the application's clock).
    pub timestamp: Timestamp,
    /// Raw application id the decision belongs to.
    pub app: u64,
    /// Chosen knob-table point index.
    pub point_idx: u32,
    /// What triggered the record.
    pub reason: TraceReason,
    /// The decision's knob gain (target speedup of the next quantum).
    pub gain: f64,
    /// Achieved speedup of the schedule the controller is executing.
    pub achieved_speedup: f64,
    /// Expected QoS loss of that schedule.
    pub qos_loss: f64,
}

impl Default for DecisionTraceRecord {
    fn default() -> Self {
        DecisionTraceRecord {
            seq: 0,
            timestamp: Timestamp::from_nanos(0),
            app: 0,
            point_idx: 0,
            reason: TraceReason::Boundary,
            gain: 0.0,
            achieved_speedup: 0.0,
            qos_loss: 0.0,
        }
    }
}

/// A fixed-capacity, overwrite-oldest ring of [`DecisionTraceRecord`]s.
///
/// Storage is allocated once at construction; [`DecisionTraceRing::push`]
/// is a store plus two counter updates and never allocates, so the ring
/// can sit directly on the daemon's drain path. Capacity 0 is a valid
/// no-op ring (tracing disabled).
#[derive(Debug, Clone)]
pub struct DecisionTraceRing {
    records: Box<[DecisionTraceRecord]>,
    /// Next write position.
    head: usize,
    /// Live records (≤ capacity).
    len: usize,
    /// Records ever pushed (also the next sequence number).
    total: u64,
}

impl Default for DecisionTraceRing {
    /// A capacity-0 (disabled) ring.
    fn default() -> Self {
        DecisionTraceRing::with_capacity(0)
    }
}

impl DecisionTraceRing {
    /// Creates a ring holding at most `capacity` records. `0` disables
    /// tracing: pushes become no-ops and nothing is allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        DecisionTraceRing {
            records: vec![DecisionTraceRecord::default(); capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            total: 0,
        }
    }

    /// Appends a record, stamping its sequence number and overwriting
    /// the oldest entry when full. Allocation-free.
    #[inline]
    pub fn push(&mut self, mut record: DecisionTraceRecord) {
        let capacity = self.records.len();
        if capacity == 0 {
            return;
        }
        record.seq = self.total;
        self.total += 1;
        self.records[self.head] = record;
        self.head = (self.head + 1) % capacity;
        if self.len < capacity {
            self.len += 1;
        }
    }

    /// Live records in the ring.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum records the ring retains.
    pub fn capacity(&self) -> usize {
        self.records.len()
    }

    /// Records ever pushed (including those already overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates the live records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionTraceRecord> {
        let capacity = self.records.len().max(1);
        let start = if self.len < self.records.len() {
            0
        } else {
            self.head
        };
        (0..self.len).map(move |i| &self.records[(start + i) % capacity])
    }

    /// Copies the live records oldest → newest into a fresh `Vec`
    /// (cold-path snapshot export).
    pub fn to_vec(&self) -> Vec<DecisionTraceRecord> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::EMPTY);
    }

    #[test]
    fn linear_region_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        // Rows 0 and 1 have width-1 buckets: every value below 16 is
        // recovered exactly by its own quantile.
        for v in 0..16u64 {
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(h.value_at_quantile(q), v, "value {v}");
        }
    }

    #[test]
    fn bucket_boundaries_round_trip_exactly() {
        // The lower bound of every bucket maps back to that bucket, and
        // bucket bounds tile the u64 range without gaps or overlaps.
        for bucket in 0..LatencyHistogram::BUCKETS {
            let low = LatencyHistogram::bucket_lower_bound(bucket);
            if bucket > 0 && low == 0 {
                break; // rows beyond 61 are unused headroom
            }
            assert_eq!(LatencyHistogram::bucket_of(low), bucket, "bucket {bucket}");
            let high = LatencyHistogram::bucket_upper_bound(bucket);
            assert_eq!(LatencyHistogram::bucket_of(high), bucket, "bucket {bucket}");
            if high < u64::MAX {
                assert_eq!(
                    LatencyHistogram::bucket_of(high + 1),
                    bucket + 1,
                    "bucket {bucket} upper bound should abut bucket {}",
                    bucket + 1
                );
            }
        }
        assert_eq!(
            LatencyHistogram::bucket_of(u64::MAX),
            61 * LatencyHistogram::SUB_BUCKETS + 7
        );
    }

    #[test]
    fn quantiles_are_within_relative_error_of_samples() {
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        // Deterministic multiplicative walk across five decades.
        let mut v = 3u64;
        for i in 0..4096u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(i) % 10_000_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let exact = samples[rank];
            let approx = h.value_at_quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            let bound = exact + exact / LatencyHistogram::SUB_BUCKETS as u64 + 1;
            assert!(approx <= bound, "q={q}: {approx} > bound {bound}");
        }
        assert_eq!(h.value_at_quantile(1.0), *samples.last().unwrap());
    }

    #[test]
    fn record_all_equals_per_sample_record() {
        // Mixed runs (the coalescing fast path) and a pseudo-random walk
        // (worst case: every sample lands in a different bucket), plus
        // empty and single-element batches.
        let batches: Vec<Vec<u64>> = vec![
            vec![],
            vec![42],
            vec![40_000_000; 20],
            vec![0, 0, 7, 7, 7, 8, 1_000, 1_000, u64::MAX, u64::MAX],
            {
                let mut v = 3u64;
                (0..997u64)
                    .map(|i| {
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(i) % 10_000_000_000;
                        v
                    })
                    .collect()
            },
        ];
        let mut batched = LatencyHistogram::new();
        let mut one_by_one = LatencyHistogram::new();
        for batch in &batches {
            batched.record_all(batch.iter().copied());
            for &value in batch {
                one_by_one.record(value);
            }
            assert_eq!(batched.count(), one_by_one.count());
            assert_eq!(batched.min(), one_by_one.min());
            assert_eq!(batched.max(), one_by_one.max());
            assert_eq!(batched.summary(), one_by_one.summary());
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(
                    batched.value_at_quantile(q),
                    one_by_one.value_at_quantile(q),
                    "quantile mismatch at q={q}"
                );
            }
        }
    }

    #[test]
    fn record_all_saturates_sum_like_record() {
        let mut batched = LatencyHistogram::new();
        let mut one_by_one = LatencyHistogram::new();
        let values = [u64::MAX, u64::MAX, 5];
        batched.record_all(values.iter().copied());
        for &value in &values {
            one_by_one.record(value);
        }
        assert_eq!(batched.summary(), one_by_one.summary());
        assert_eq!(batched.summary().mean, u64::MAX as f64 / 3.0);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        let mut v = 17u64;
        for _ in 0..1000 {
            v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493) % 1_000_000;
            h.record(v);
        }
        let mut last = 0u64;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let value = h.value_at_quantile(q);
            assert!(value >= last, "quantile regressed at q={q}");
            last = value;
        }
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let (mut a, mut b, mut combined) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        let mut v = 99u64;
        for i in 0..500u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) % 50_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a, combined);
        assert_eq!(a.summary(), combined.summary());
    }

    #[test]
    fn trace_ring_overwrites_oldest_and_stamps_seq() {
        let mut ring = DecisionTraceRing::with_capacity(4);
        assert!(ring.is_empty());
        for i in 0..10u64 {
            ring.push(DecisionTraceRecord {
                app: i,
                ..DecisionTraceRecord::default()
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.total_recorded(), 10);
        let records: Vec<_> = ring.iter().copied().collect();
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        let apps: Vec<u64> = records.iter().map(|r| r.app).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(apps, vec![6, 7, 8, 9]);
        assert_eq!(ring.to_vec(), records);
    }

    #[test]
    fn zero_capacity_ring_is_a_no_op() {
        let mut ring = DecisionTraceRing::with_capacity(0);
        ring.push(DecisionTraceRecord::default());
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 0);
        assert_eq!(ring.iter().count(), 0);
    }

    #[test]
    fn partial_ring_iterates_in_insertion_order() {
        let mut ring = DecisionTraceRing::with_capacity(8);
        for i in 0..3u64 {
            ring.push(DecisionTraceRecord {
                app: i,
                ..DecisionTraceRecord::default()
            });
        }
        let apps: Vec<u64> = ring.iter().map(|r| r.app).collect();
        assert_eq!(apps, vec![0, 1, 2]);
    }
}
