//! Sliding-window statistics over heartbeat latencies.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::record::HeartRate;
use crate::time::TimestampDelta;

/// A fixed-capacity sliding window of heartbeat latencies.
///
/// The window keeps the most recent `capacity` latencies and exposes the
/// aggregate statistics PowerDial's controller consumes: the windowed heart
/// rate (beats divided by the summed latency), the mean latency, and the
/// latency variance.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::{SlidingWindow, TimestampDelta};
///
/// let mut window = SlidingWindow::new(3);
/// for _ in 0..5 {
///     window.push(TimestampDelta::from_millis(50));
/// }
/// assert_eq!(window.len(), 3);
/// assert!((window.rate().unwrap().beats_per_second() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindow {
    capacity: usize,
    latencies: VecDeque<TimestampDelta>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` latencies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be at least 1");
        SlidingWindow {
            capacity,
            latencies: VecDeque::with_capacity(capacity),
        }
    }

    /// Returns the maximum number of latencies retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of latencies currently stored.
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Returns true when the window holds no latencies.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Returns true when the window holds `capacity` latencies.
    pub fn is_full(&self) -> bool {
        self.latencies.len() == self.capacity
    }

    /// Pushes a new latency, evicting the oldest if the window is full.
    pub fn push(&mut self, latency: TimestampDelta) {
        if self.latencies.len() == self.capacity {
            self.latencies.pop_front();
        }
        self.latencies.push_back(latency);
    }

    /// Removes all stored latencies.
    pub fn clear(&mut self) {
        self.latencies.clear();
    }

    /// Iterates over the stored latencies from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = TimestampDelta> + '_ {
        self.latencies.iter().copied()
    }

    /// Returns the total time spanned by the stored latencies.
    pub fn total(&self) -> TimestampDelta {
        self.latencies
            .iter()
            .fold(TimestampDelta::ZERO, |acc, &l| acc + l)
    }

    /// Returns the windowed heart rate: stored beats divided by their summed
    /// latency. `None` if the window is empty or the summed latency is zero.
    pub fn rate(&self) -> Option<HeartRate> {
        HeartRate::from_beats_over(self.latencies.len() as u64, self.total())
    }

    /// Returns summary statistics for the stored latencies, or `None` when
    /// the window is empty.
    pub fn statistics(&self) -> Option<RateStatistics> {
        if self.latencies.is_empty() {
            return None;
        }
        let n = self.latencies.len() as f64;
        let secs: Vec<f64> = self.latencies.iter().map(|l| l.as_secs_f64()).collect();
        let mean = secs.iter().sum::<f64>() / n;
        let variance = secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let min = secs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = secs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(RateStatistics {
            count: self.latencies.len(),
            mean_latency_secs: mean,
            latency_variance: variance,
            min_latency_secs: min,
            max_latency_secs: max,
        })
    }
}

/// Summary statistics over a window of heartbeat latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateStatistics {
    /// Number of latencies in the window.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_latency_secs: f64,
    /// Population variance of the latency in seconds squared.
    pub latency_variance: f64,
    /// Smallest latency in seconds.
    pub min_latency_secs: f64,
    /// Largest latency in seconds.
    pub max_latency_secs: f64,
}

impl RateStatistics {
    /// Returns the standard deviation of the latency, in seconds.
    pub fn latency_std_dev(&self) -> f64 {
        self.latency_variance.sqrt()
    }

    /// Returns the heart rate implied by the mean latency, or `None` if the
    /// mean latency is zero.
    pub fn mean_rate(&self) -> Option<HeartRate> {
        if self.mean_latency_secs == 0.0 {
            None
        } else {
            Some(HeartRate::from_bps(1.0 / self.mean_latency_secs))
        }
    }

    /// Returns the coefficient of variation (standard deviation divided by
    /// mean), a unit-free measure of how noisy the heartbeat stream is.
    /// Returns `None` when the mean latency is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean_latency_secs == 0.0 {
            None
        } else {
            Some(self.latency_std_dev() / self.mean_latency_secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimestampDelta {
        TimestampDelta::from_millis(v)
    }

    #[test]
    fn window_evicts_oldest_entries() {
        let mut w = SlidingWindow::new(2);
        w.push(ms(10));
        w.push(ms(20));
        w.push(ms(30));
        let stored: Vec<_> = w.iter().collect();
        assert_eq!(stored, vec![ms(20), ms(30)]);
        assert!(w.is_full());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn rate_counts_beats_over_total_time() {
        let mut w = SlidingWindow::new(4);
        w.push(ms(100));
        w.push(ms(100));
        w.push(ms(200));
        // 3 beats over 0.4 seconds = 7.5 beats/s.
        assert!((w.rate().unwrap().beats_per_second() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn empty_window_has_no_rate_or_statistics() {
        let w = SlidingWindow::new(3);
        assert!(w.rate().is_none());
        assert!(w.statistics().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn statistics_report_mean_and_variance() {
        let mut w = SlidingWindow::new(10);
        w.push(ms(100));
        w.push(ms(300));
        let stats = w.statistics().unwrap();
        assert_eq!(stats.count, 2);
        assert!((stats.mean_latency_secs - 0.2).abs() < 1e-9);
        assert!((stats.latency_variance - 0.01).abs() < 1e-9);
        assert!((stats.min_latency_secs - 0.1).abs() < 1e-9);
        assert!((stats.max_latency_secs - 0.3).abs() < 1e-9);
        assert!((stats.latency_std_dev() - 0.1).abs() < 1e-9);
        assert!((stats.mean_rate().unwrap().beats_per_second() - 5.0).abs() < 1e-9);
        assert!((stats.coefficient_of_variation().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clear_empties_the_window() {
        let mut w = SlidingWindow::new(3);
        w.push(ms(10));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn zero_mean_latency_gives_no_rate() {
        let stats = RateStatistics {
            count: 1,
            mean_latency_secs: 0.0,
            latency_variance: 0.0,
            min_latency_secs: 0.0,
            max_latency_secs: 0.0,
        };
        assert!(stats.mean_rate().is_none());
        assert!(stats.coefficient_of_variation().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The window never stores more than its capacity.
        #[test]
        fn window_length_bounded_by_capacity(
            capacity in 1usize..32,
            latencies in proptest::collection::vec(1u64..1_000_000, 0..100),
        ) {
            let mut w = SlidingWindow::new(capacity);
            for l in &latencies {
                w.push(TimestampDelta::from_nanos(*l));
                prop_assert!(w.len() <= capacity);
            }
            prop_assert_eq!(w.len(), latencies.len().min(capacity));
        }

        /// The windowed rate always equals count / total for non-empty windows.
        #[test]
        fn rate_matches_definition(
            capacity in 1usize..16,
            latencies in proptest::collection::vec(1u64..10_000_000, 1..50),
        ) {
            let mut w = SlidingWindow::new(capacity);
            for l in &latencies {
                w.push(TimestampDelta::from_nanos(*l));
            }
            let rate = w.rate().unwrap().beats_per_second();
            let expected = w.len() as f64 / w.total().as_secs_f64();
            prop_assert!((rate - expected).abs() <= 1e-9 * expected.max(1.0));
        }

        /// Latency statistics stay within the observed min/max bounds.
        #[test]
        fn statistics_bounds_hold(
            latencies in proptest::collection::vec(1u64..10_000_000, 1..50),
        ) {
            let mut w = SlidingWindow::new(latencies.len());
            for l in &latencies {
                w.push(TimestampDelta::from_nanos(*l));
            }
            let stats = w.statistics().unwrap();
            prop_assert!(stats.mean_latency_secs >= stats.min_latency_secs - 1e-12);
            prop_assert!(stats.mean_latency_secs <= stats.max_latency_secs + 1e-12);
            prop_assert!(stats.latency_variance >= 0.0);
        }
    }
}
