//! Sliding-window statistics over heartbeat latencies.
//!
//! The window is the heart of PowerDial's feedback path: the controller
//! reads the windowed rate once per heartbeat, so [`SlidingWindow::push`],
//! [`SlidingWindow::rate`], and [`SlidingWindow::statistics`] must all be
//! O(1) and allocation-free in steady state. The implementation keeps
//! incrementally maintained aggregates instead of recomputing over the
//! stored latencies:
//!
//! * running sum and sum-of-squares of the latencies in **integer
//!   nanoseconds** (`u128`), so eviction subtracts exactly what insertion
//!   added — no floating-point drift, ever;
//! * two monotonic deques holding the suffix minima / maxima of the window,
//!   giving O(1)-amortized min/max under FIFO eviction.
//!
//! The pre-optimization recompute-on-read implementation is preserved as
//! [`crate::naive::NaiveSlidingWindow`] and is property-tested against this
//! one (and benchmarked, in `powerdial-bench`).

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::record::HeartRate;
use crate::time::TimestampDelta;

/// Nanoseconds per second, as used when converting aggregates to seconds.
const NANOS_PER_SEC_F64: f64 = 1e9;

/// The summed window latencies exceed `u64::MAX` nanoseconds (more than
/// five centuries of latency in one window).
///
/// No organic heartbeat stream gets here — only a hostile or corrupted
/// producer pushing near-`u64::MAX` latencies. [`SlidingWindow::rate`] and
/// [`SlidingWindow::try_total`] surface it as this typed error so a control
/// loop can blame and quarantine the one poisoned app instead of unwinding
/// through the shard that serves its neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOverflow;

impl fmt::Display for WindowOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window latency sum overflows u64 nanoseconds")
    }
}

impl std::error::Error for WindowOverflow {}

/// A fixed-capacity sliding window of heartbeat latencies.
///
/// The window keeps the most recent `capacity` latencies and exposes the
/// aggregate statistics PowerDial's controller consumes: the windowed heart
/// rate (beats divided by the summed latency), the mean latency, the latency
/// variance, and the min/max latency. All queries are O(1); `push` is
/// amortized O(1) and performs no heap allocation after construction.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::{SlidingWindow, TimestampDelta};
///
/// let mut window = SlidingWindow::new(3);
/// for _ in 0..5 {
///     window.push(TimestampDelta::from_millis(50));
/// }
/// assert_eq!(window.len(), 3);
/// let rate = window.rate().expect("no overflow").expect("non-empty");
/// assert!((rate.beats_per_second() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindow {
    capacity: usize,
    latencies: VecDeque<TimestampDelta>,
    /// Total pushes ever performed: the index the next push will receive.
    push_count: u64,
    /// Sum of the stored latencies, in nanoseconds (exact).
    sum_nanos: u128,
    /// Sum of the squared stored latencies, in nanoseconds² (exact).
    sum_sq_nanos: u128,
    /// `(push index, nanos)` suffix minima: values strictly increase from
    /// front to back, so the front is the window minimum.
    min_deque: VecDeque<(u64, u64)>,
    /// `(push index, nanos)` suffix maxima: values strictly decrease from
    /// front to back, so the front is the window maximum.
    max_deque: VecDeque<(u64, u64)>,
}

/// Every arithmetic op in this impl is on the controller's per-beat hot
/// path and feeds exact integer aggregates, so implicit overflow semantics
/// (panic in debug, wrap in release) are banned: each op is an explicit
/// `wrapping_*`/`checked_*` with its no-overflow argument, or a documented
/// adversarial-input concession.
#[deny(clippy::arithmetic_side_effects)]
impl SlidingWindow {
    /// Creates a window holding at most `capacity` latencies.
    ///
    /// All storage (the latency deque and both extremum deques) is allocated
    /// here; no later operation allocates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be at least 1");
        SlidingWindow {
            capacity,
            latencies: VecDeque::with_capacity(capacity),
            push_count: 0,
            sum_nanos: 0,
            sum_sq_nanos: 0,
            min_deque: VecDeque::with_capacity(capacity),
            max_deque: VecDeque::with_capacity(capacity),
        }
    }

    /// Returns the maximum number of latencies retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of latencies currently stored.
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Returns true when the window holds no latencies.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Returns true when the window holds `capacity` latencies.
    pub fn is_full(&self) -> bool {
        self.latencies.len() == self.capacity
    }

    /// Pushes a new latency, evicting the oldest if the window is full.
    ///
    /// Amortized O(1), allocation-free: the aggregates are updated
    /// incrementally and each element enters and leaves the extremum deques
    /// at most once.
    pub fn push(&mut self, latency: TimestampDelta) {
        if self.latencies.len() == self.capacity {
            let evicted = self
                .latencies
                .pop_front()
                .expect("full window has a front element");
            let nanos = u128::from(evicted.as_nanos());
            // Eviction subtracts exactly what insertion added (same wrapping
            // group), so the running sums are exact whenever insertion never
            // wrapped — see the insertion-side bounds below.
            self.sum_nanos = self.sum_nanos.wrapping_sub(nanos);
            self.sum_sq_nanos = self.sum_sq_nanos.wrapping_sub(nanos.wrapping_mul(nanos));
            // The evicted element can only sit at the front of a deque: the
            // deques hold indices in increasing order. `push_count` counts at
            // least `capacity` pushes here (the window is full), in the same
            // wrapping index space the deques store.
            let evicted_index = self.push_count.wrapping_sub(self.capacity as u64);
            if self
                .min_deque
                .front()
                .is_some_and(|&(i, _)| i == evicted_index)
            {
                self.min_deque.pop_front();
            }
            if self
                .max_deque
                .front()
                .is_some_and(|&(i, _)| i == evicted_index)
            {
                self.max_deque.pop_front();
            }
        }

        let nanos = latency.as_nanos();
        self.latencies.push_back(latency);
        // `sum_nanos` holds at most `capacity` u64 values, so it fits u128
        // for any allocatable capacity and the add is exact. `sum_sq_nanos`
        // can genuinely wrap under adversarial near-`u64::MAX` latencies
        // (each square is up to ~2¹²⁸); that only garbles the variance —
        // rate/total/min/max/mean never read it, and the overflow that
        // matters (`sum_nanos > u64::MAX`) is caught as a typed
        // [`WindowOverflow`] at the rate read.
        self.sum_nanos = self.sum_nanos.wrapping_add(u128::from(nanos));
        self.sum_sq_nanos = self
            .sum_sq_nanos
            .wrapping_add(u128::from(nanos).wrapping_mul(u128::from(nanos)));
        while self.min_deque.back().is_some_and(|&(_, v)| v >= nanos) {
            self.min_deque.pop_back();
        }
        self.min_deque.push_back((self.push_count, nanos));
        while self.max_deque.back().is_some_and(|&(_, v)| v <= nanos) {
            self.max_deque.pop_back();
        }
        self.max_deque.push_back((self.push_count, nanos));
        // Wrapping: the index space the extremum deques key on is compared
        // by equality only, which stays consistent across a wrap.
        self.push_count = self.push_count.wrapping_add(1);
    }

    /// Pushes every latency in `latencies`, oldest first — exactly
    /// equivalent to calling [`push`](Self::push) once per element, but
    /// written for the batched decision kernel's hot path.
    ///
    /// When the slice is at least as long as the window's capacity, none
    /// of the pre-existing contents survive, so the window is rebuilt
    /// from the slice's tail in one pass instead of churning through
    /// `len` evictions. The rebuild is **bit-identical** to the
    /// sequential pushes: the integer nanosecond sums are exact under
    /// both orders, and the monotonic deques end up holding the same
    /// `(index, value)` suffix extrema either way (sequential eviction
    /// would have popped every entry that predates the surviving
    /// window). The property test `push_slice_matches_sequential_push`
    /// pins this, including queries after further singleton pushes.
    ///
    /// Allocation-free: both paths reuse the storage sized at
    /// construction.
    pub fn push_slice(&mut self, latencies: &[TimestampDelta]) {
        if latencies.len() >= self.capacity {
            // Full replacement: only the slice's last `capacity` entries
            // can survive, so skip straight to them. (`len >= capacity`
            // here, so the subtraction cannot underflow.)
            let skipped = latencies.len().wrapping_sub(self.capacity);
            self.latencies.clear();
            self.min_deque.clear();
            self.max_deque.clear();
            self.sum_nanos = 0;
            self.sum_sq_nanos = 0;
            self.push_count = self.push_count.wrapping_add(skipped as u64);
            for &latency in &latencies[skipped..] {
                let nanos = latency.as_nanos();
                self.latencies.push_back(latency);
                // Same exactness argument as in `push`.
                self.sum_nanos = self.sum_nanos.wrapping_add(u128::from(nanos));
                self.sum_sq_nanos = self
                    .sum_sq_nanos
                    .wrapping_add(u128::from(nanos).wrapping_mul(u128::from(nanos)));
                while self.min_deque.back().is_some_and(|&(_, v)| v >= nanos) {
                    self.min_deque.pop_back();
                }
                self.min_deque.push_back((self.push_count, nanos));
                while self.max_deque.back().is_some_and(|&(_, v)| v <= nanos) {
                    self.max_deque.pop_back();
                }
                self.max_deque.push_back((self.push_count, nanos));
                self.push_count = self.push_count.wrapping_add(1);
            }
        } else {
            for &latency in latencies {
                self.push(latency);
            }
        }
    }

    /// Removes all stored latencies, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.latencies.clear();
        self.min_deque.clear();
        self.max_deque.clear();
        self.push_count = 0;
        self.sum_nanos = 0;
        self.sum_sq_nanos = 0;
    }

    /// Iterates over the stored latencies from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = TimestampDelta> + '_ {
        self.latencies.iter().copied()
    }

    /// Returns the total time spanned by the stored latencies, or a typed
    /// [`WindowOverflow`] when the sum exceeds `u64::MAX` nanoseconds.
    /// O(1): read from the running sum.
    pub fn try_total(&self) -> Result<TimestampDelta, WindowOverflow> {
        let nanos = u64::try_from(self.sum_nanos).map_err(|_| WindowOverflow)?;
        Ok(TimestampDelta::from_nanos(nanos))
    }

    /// Returns the total time spanned by the stored latencies. O(1): read
    /// from the running sum.
    ///
    /// # Panics
    ///
    /// Panics if the summed latencies exceed `u64::MAX` nanoseconds (more
    /// than five centuries; the pre-optimization fold overflowed there too).
    /// Poison-tolerant callers use [`try_total`](Self::try_total) instead.
    pub fn total(&self) -> TimestampDelta {
        self.try_total()
            .expect("window total overflows u64 nanoseconds")
    }

    /// Returns the windowed heart rate: stored beats divided by their summed
    /// latency. `Ok(None)` if the window is empty or the summed latency is
    /// zero; a typed [`WindowOverflow`] (instead of a panic unwinding
    /// through whoever hosts the window) when a poisoned stream pushed the
    /// latency sum past `u64::MAX` nanoseconds. O(1).
    pub fn rate(&self) -> Result<Option<HeartRate>, WindowOverflow> {
        Ok(HeartRate::from_beats_over(
            self.latencies.len() as u64,
            self.try_total()?,
        ))
    }

    /// Returns summary statistics for the stored latencies, or `None` when
    /// the window is empty. O(1): mean and variance come from the running
    /// sums, min and max from the monotonic deques.
    ///
    /// The variance is computed as `(n·Σx² − (Σx)²) / n²` over **exact**
    /// integer nanosecond sums, so there is no catastrophic cancellation and
    /// no drift relative to a naive recompute (see the equivalence property
    /// tests against [`crate::naive::NaiveSlidingWindow`]).
    pub fn statistics(&self) -> Option<RateStatistics> {
        let n = self.latencies.len();
        if n == 0 {
            return None;
        }
        let n_f64 = n as f64;
        let mean_nanos = self.sum_nanos as f64 / n_f64;
        // Cauchy–Schwarz guarantees n·Σx² ≥ (Σx)², so this cannot underflow
        // for any stream whose squared sums fit u128; under adversarial
        // near-`u64::MAX` latencies the wrapped `sum_sq_nanos` only garbles
        // the variance (documented in `push`), never panics.
        let variance_numerator = (n as u128)
            .wrapping_mul(self.sum_sq_nanos)
            .wrapping_sub(self.sum_nanos.wrapping_mul(self.sum_nanos));
        let variance_nanos2 = variance_numerator as f64 / (n_f64 * n_f64);
        let min_nanos = self
            .min_deque
            .front()
            .expect("non-empty window has a minimum")
            .1;
        let max_nanos = self
            .max_deque
            .front()
            .expect("non-empty window has a maximum")
            .1;
        Some(RateStatistics {
            count: n,
            mean_latency_secs: mean_nanos / NANOS_PER_SEC_F64,
            latency_variance: variance_nanos2 / (NANOS_PER_SEC_F64 * NANOS_PER_SEC_F64),
            min_latency_secs: min_nanos as f64 / NANOS_PER_SEC_F64,
            max_latency_secs: max_nanos as f64 / NANOS_PER_SEC_F64,
        })
    }
}

/// Two windows are equal when they have the same capacity and the same
/// stored latencies (the aggregates are a pure function of those).
impl PartialEq for SlidingWindow {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.latencies == other.latencies
    }
}

/// Summary statistics over a window of heartbeat latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateStatistics {
    /// Number of latencies in the window.
    pub count: usize,
    /// Mean latency in seconds.
    pub mean_latency_secs: f64,
    /// Population variance of the latency in seconds squared.
    pub latency_variance: f64,
    /// Smallest latency in seconds.
    pub min_latency_secs: f64,
    /// Largest latency in seconds.
    pub max_latency_secs: f64,
}

impl RateStatistics {
    /// Returns the standard deviation of the latency, in seconds.
    pub fn latency_std_dev(&self) -> f64 {
        self.latency_variance.sqrt()
    }

    /// Returns the heart rate implied by the mean latency, or `None` if the
    /// mean latency is zero.
    pub fn mean_rate(&self) -> Option<HeartRate> {
        if self.mean_latency_secs == 0.0 {
            None
        } else {
            Some(HeartRate::from_bps(1.0 / self.mean_latency_secs))
        }
    }

    /// Returns the coefficient of variation (standard deviation divided by
    /// mean), a unit-free measure of how noisy the heartbeat stream is.
    /// Returns `None` when the mean latency is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean_latency_secs == 0.0 {
            None
        } else {
            Some(self.latency_std_dev() / self.mean_latency_secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimestampDelta {
        TimestampDelta::from_millis(v)
    }

    #[test]
    fn window_evicts_oldest_entries() {
        let mut w = SlidingWindow::new(2);
        w.push(ms(10));
        w.push(ms(20));
        w.push(ms(30));
        let stored: Vec<_> = w.iter().collect();
        assert_eq!(stored, vec![ms(20), ms(30)]);
        assert!(w.is_full());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn rate_counts_beats_over_total_time() {
        let mut w = SlidingWindow::new(4);
        w.push(ms(100));
        w.push(ms(100));
        w.push(ms(200));
        // 3 beats over 0.4 seconds = 7.5 beats/s.
        assert!((w.rate().unwrap().unwrap().beats_per_second() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn empty_window_has_no_rate_or_statistics() {
        let w = SlidingWindow::new(3);
        assert!(w.rate().unwrap().is_none());
        assert!(w.statistics().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn statistics_report_mean_and_variance() {
        let mut w = SlidingWindow::new(10);
        w.push(ms(100));
        w.push(ms(300));
        let stats = w.statistics().unwrap();
        assert_eq!(stats.count, 2);
        assert!((stats.mean_latency_secs - 0.2).abs() < 1e-9);
        assert!((stats.latency_variance - 0.01).abs() < 1e-9);
        assert!((stats.min_latency_secs - 0.1).abs() < 1e-9);
        assert!((stats.max_latency_secs - 0.3).abs() < 1e-9);
        assert!((stats.latency_std_dev() - 0.1).abs() < 1e-9);
        assert!((stats.mean_rate().unwrap().beats_per_second() - 5.0).abs() < 1e-9);
        assert!((stats.coefficient_of_variation().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clear_empties_the_window() {
        let mut w = SlidingWindow::new(3);
        w.push(ms(10));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
        assert!(w.statistics().is_none());
        // The window is fully usable again after a clear.
        w.push(ms(20));
        assert_eq!(w.statistics().unwrap().count, 1);
        assert!((w.statistics().unwrap().mean_latency_secs - 0.02).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_eviction() {
        let mut w = SlidingWindow::new(3);
        w.push(ms(500)); // will be evicted
        w.push(ms(10));
        w.push(ms(20));
        let stats = w.statistics().unwrap();
        assert!((stats.max_latency_secs - 0.5).abs() < 1e-12);
        w.push(ms(30)); // evicts the 500 ms outlier
        let stats = w.statistics().unwrap();
        assert!((stats.max_latency_secs - 0.03).abs() < 1e-12);
        assert!((stats.min_latency_secs - 0.01).abs() < 1e-12);
    }

    #[test]
    fn poisoned_sum_surfaces_typed_overflow_instead_of_panicking() {
        let mut w = SlidingWindow::new(2);
        let poison = TimestampDelta::from_nanos(u64::MAX / 2 + 1);
        w.push(poison);
        w.push(poison);
        assert_eq!(w.rate(), Err(WindowOverflow));
        assert_eq!(w.try_total(), Err(WindowOverflow));
        // Min/max/mean still answer; only the variance is a documented
        // casualty of adversarial inputs.
        assert!(w.statistics().is_some());
        // The naive reference agrees on the overflow verdict.
        let mut naive = crate::naive::NaiveSlidingWindow::new(2);
        naive.push(poison);
        naive.push(poison);
        assert_eq!(naive.rate(), Err(WindowOverflow));
        // Evicting the poison heals the window: no sticky state.
        w.push(ms(10));
        w.push(ms(10));
        let healed = w.rate().expect("poison evicted").expect("non-empty");
        assert!(healed.beats_per_second() > 0.0);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn total_still_panics_on_overflow_for_compat() {
        let mut w = SlidingWindow::new(2);
        let poison = TimestampDelta::from_nanos(u64::MAX / 2 + 1);
        w.push(poison);
        w.push(poison);
        let _ = w.total();
    }

    #[test]
    fn equal_content_windows_compare_equal_regardless_of_history() {
        // Same final contents through different push histories.
        let mut a = SlidingWindow::new(2);
        a.push(ms(1));
        a.push(ms(2));
        let mut b = SlidingWindow::new(2);
        b.push(ms(9));
        b.push(ms(1));
        b.push(ms(2));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_mean_latency_gives_no_rate() {
        let stats = RateStatistics {
            count: 1,
            mean_latency_secs: 0.0,
            latency_variance: 0.0,
            min_latency_secs: 0.0,
            max_latency_secs: 0.0,
        };
        assert!(stats.mean_rate().is_none());
        assert!(stats.coefficient_of_variation().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::naive::NaiveSlidingWindow;
    use proptest::prelude::*;

    proptest! {
        /// The window never stores more than its capacity.
        #[test]
        fn window_length_bounded_by_capacity(
            capacity in 1usize..32,
            latencies in proptest::collection::vec(1u64..1_000_000, 0..100),
        ) {
            let mut w = SlidingWindow::new(capacity);
            for l in &latencies {
                w.push(TimestampDelta::from_nanos(*l));
                prop_assert!(w.len() <= capacity);
            }
            prop_assert_eq!(w.len(), latencies.len().min(capacity));
        }

        /// The windowed rate always equals count / total for non-empty windows.
        #[test]
        fn rate_matches_definition(
            capacity in 1usize..16,
            latencies in proptest::collection::vec(1u64..10_000_000, 1..50),
        ) {
            let mut w = SlidingWindow::new(capacity);
            for l in &latencies {
                w.push(TimestampDelta::from_nanos(*l));
            }
            let rate = w.rate().unwrap().unwrap().beats_per_second();
            let expected = w.len() as f64 / w.total().as_secs_f64();
            prop_assert!((rate - expected).abs() <= 1e-9 * expected.max(1.0));
        }

        /// Latency statistics stay within the observed min/max bounds.
        #[test]
        fn statistics_bounds_hold(
            latencies in proptest::collection::vec(1u64..10_000_000, 1..50),
        ) {
            let mut w = SlidingWindow::new(latencies.len());
            for l in &latencies {
                w.push(TimestampDelta::from_nanos(*l));
            }
            let stats = w.statistics().unwrap();
            prop_assert!(stats.mean_latency_secs >= stats.min_latency_secs - 1e-12);
            prop_assert!(stats.mean_latency_secs <= stats.max_latency_secs + 1e-12);
            prop_assert!(stats.latency_variance >= 0.0);
        }

        /// `push_slice` is bit-equivalent to element-wise `push` across
        /// arbitrary chunkings — including chunks larger than the window
        /// (the full-replacement fast path), empty chunks, and singleton
        /// pushes interleaved after batches.
        #[test]
        fn push_slice_matches_sequential_push(
            capacity in 1usize..24,
            chunks in proptest::collection::vec(
                proptest::collection::vec(1u64..1_000_000_000_000u64, 0..64),
                0..16,
            ),
        ) {
            let mut batched = SlidingWindow::new(capacity);
            let mut sequential = SlidingWindow::new(capacity);
            for chunk in &chunks {
                let deltas: Vec<TimestampDelta> =
                    chunk.iter().map(|&l| TimestampDelta::from_nanos(l)).collect();
                batched.push_slice(&deltas);
                for &d in &deltas {
                    sequential.push(d);
                }
                prop_assert_eq!(&batched, &sequential);
                prop_assert_eq!(batched.len(), sequential.len());
                if !batched.is_empty() {
                    prop_assert_eq!(batched.total(), sequential.total());
                    let (a, b) = (batched.rate().unwrap().unwrap(), sequential.rate().unwrap().unwrap());
                    prop_assert_eq!(
                        a.beats_per_second().to_bits(),
                        b.beats_per_second().to_bits()
                    );
                    let (fast, slow) =
                        (batched.statistics().unwrap(), sequential.statistics().unwrap());
                    prop_assert_eq!(fast.mean_latency_secs.to_bits(), slow.mean_latency_secs.to_bits());
                    prop_assert_eq!(fast.latency_variance.to_bits(), slow.latency_variance.to_bits());
                    prop_assert_eq!(fast.min_latency_secs.to_bits(), slow.min_latency_secs.to_bits());
                    prop_assert_eq!(fast.max_latency_secs.to_bits(), slow.max_latency_secs.to_bits());
                }
                // A singleton push after a batch must keep agreeing: the
                // extremum deques' internal indices line up too.
                batched.push(TimestampDelta::from_nanos(7));
                sequential.push(TimestampDelta::from_nanos(7));
                prop_assert_eq!(&batched, &sequential);
                let (fa, sl) = (batched.statistics().unwrap(), sequential.statistics().unwrap());
                prop_assert_eq!(fa.min_latency_secs.to_bits(), sl.min_latency_secs.to_bits());
                prop_assert_eq!(fa.max_latency_secs.to_bits(), sl.max_latency_secs.to_bits());
            }
        }

        /// The incremental statistics match a naive recompute to within 1e-9
        /// across arbitrary push/evict sequences — the equivalence guarantee
        /// for the O(1) rework. Latencies span six orders of magnitude so the
        /// running sums see both tiny and huge evictions.
        #[test]
        fn incremental_statistics_match_naive_recompute(
            capacity in 1usize..24,
            latencies in proptest::collection::vec(1u64..1_000_000_000_000u64, 1..200),
        ) {
            let mut incremental = SlidingWindow::new(capacity);
            let mut naive = NaiveSlidingWindow::new(capacity);
            for l in &latencies {
                let latency = TimestampDelta::from_nanos(*l);
                incremental.push(latency);
                naive.push(latency);

                // Rate and total are bit-identical: both divide the same
                // integer-exact totals.
                prop_assert_eq!(incremental.total(), naive.total());
                let (a, b) = (incremental.rate().unwrap().unwrap(), naive.rate().unwrap().unwrap());
                prop_assert_eq!(a.beats_per_second().to_bits(), b.beats_per_second().to_bits());

                let fast = incremental.statistics().unwrap();
                let slow = naive.statistics().unwrap();
                prop_assert_eq!(fast.count, slow.count);
                let close = |x: f64, y: f64, what: &str| {
                    let tolerance = 1e-9 * x.abs().max(y.abs()).max(1.0);
                    if (x - y).abs() <= tolerance {
                        Ok(())
                    } else {
                        Err(TestCaseError::fail(format!("{what}: {x} vs {y}")))
                    }
                };
                close(fast.mean_latency_secs, slow.mean_latency_secs, "mean")?;
                close(fast.latency_variance, slow.latency_variance, "variance")?;
                // Min and max are exact: a monotone conversion of the same
                // integer nanosecond values.
                prop_assert_eq!(fast.min_latency_secs.to_bits(), slow.min_latency_secs.to_bits());
                prop_assert_eq!(fast.max_latency_secs.to_bits(), slow.max_latency_secs.to_bits());
            }
        }
    }
}
