//! Virtual time used by the heartbeat framework.
//!
//! All heartbeat APIs take explicit timestamps instead of reading a system
//! clock, so the framework works identically on wall-clock time and on the
//! simulated clock used by the PowerDial platform simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Nanoseconds per second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A point in (possibly simulated) time, measured in nanoseconds from an
/// arbitrary epoch.
///
/// `Timestamp` is a monotone counter: the framework only ever compares and
/// subtracts timestamps, so the epoch does not matter as long as it is
/// consistent within one run.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::Timestamp;
///
/// let start = Timestamp::from_millis(10);
/// let end = Timestamp::from_millis(25);
/// assert_eq!((end - start).as_secs_f64(), 0.015);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (the epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Timestamp(nanos)
    }

    /// Creates a timestamp from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros * 1_000)
    }

    /// Creates a timestamp from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000_000)
    }

    /// Creates a timestamp from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * NANOS_PER_SEC)
    }

    /// Creates a timestamp from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "timestamp seconds must be finite and non-negative, got {secs}"
        );
        Timestamp((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the timestamp as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: Timestamp) -> TimestampDelta {
        TimestampDelta(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// The difference between two [`Timestamp`]s, in nanoseconds.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::{Timestamp, TimestampDelta};
///
/// let delta = Timestamp::from_secs(2) - Timestamp::from_secs(1);
/// assert_eq!(delta, TimestampDelta::from_secs(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimestampDelta(u64);

impl TimestampDelta {
    /// A zero-length delta.
    pub const ZERO: TimestampDelta = TimestampDelta(0);

    /// Creates a delta from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        TimestampDelta(nanos)
    }

    /// Creates a delta from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        TimestampDelta(millis * 1_000_000)
    }

    /// Creates a delta from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        TimestampDelta(secs * NANOS_PER_SEC)
    }

    /// Creates a delta from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "delta seconds must be finite and non-negative, got {secs}"
        );
        TimestampDelta((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the delta as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns true when the delta is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TimestampDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Sub for Timestamp {
    type Output = TimestampDelta;

    fn sub(self, rhs: Timestamp) -> TimestampDelta {
        TimestampDelta(
            self.0
                .checked_sub(rhs.0)
                .expect("timestamp subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add<TimestampDelta> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: TimestampDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimestampDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimestampDelta) {
        self.0 += rhs.0;
    }
}

impl Add for TimestampDelta {
    type Output = TimestampDelta;

    fn add(self, rhs: TimestampDelta) -> TimestampDelta {
        TimestampDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimestampDelta {
    fn add_assign(&mut self, rhs: TimestampDelta) {
        self.0 += rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_round_trips_through_seconds() {
        let t = Timestamp::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn timestamp_constructors_agree() {
        assert_eq!(Timestamp::from_secs(3), Timestamp::from_millis(3_000));
        assert_eq!(Timestamp::from_millis(5), Timestamp::from_micros(5_000));
        assert_eq!(Timestamp::from_micros(7), Timestamp::from_nanos(7_000));
    }

    #[test]
    fn subtraction_yields_delta() {
        let a = Timestamp::from_millis(100);
        let b = Timestamp::from_millis(175);
        assert_eq!(b - a, TimestampDelta::from_millis(75));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_panics_on_negative_result() {
        let _ = Timestamp::from_millis(1) - Timestamp::from_millis(2);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = Timestamp::from_millis(1);
        let b = Timestamp::from_millis(2);
        assert_eq!(a.saturating_since(b), TimestampDelta::ZERO);
        assert_eq!(b.saturating_since(a), TimestampDelta::from_millis(1));
    }

    #[test]
    fn addition_is_consistent_with_subtraction() {
        let start = Timestamp::from_secs(10);
        let delta = TimestampDelta::from_millis(500);
        let end = start + delta;
        assert_eq!(end - start, delta);
    }

    #[test]
    fn delta_display_is_seconds() {
        assert_eq!(TimestampDelta::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_nan() {
        let _ = Timestamp::from_secs_f64(f64::NAN);
    }

    #[test]
    fn max_returns_later_timestamp() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
