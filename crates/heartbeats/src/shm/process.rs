//! Minimal fork/wait helpers for cross-process tests and examples.
//!
//! The fork-based test suite and `examples/shm_external_controller.rs`
//! need a real second process that inherits a shared mapping. These
//! helpers wrap `fork`/`waitpid`/`kill` so those call sites stay free of
//! raw FFI.
//!
//! **Constraints on the child closure.** `fork` in a (potentially)
//! multi-threaded process clones only the calling thread; locks held by
//! other threads stay locked forever in the child. The closure must
//! therefore avoid anything that may take a process-global lock — heap
//! allocation included. The shm producer path satisfies this by design:
//! attach and `try_push` allocate nothing on success. The child never
//! returns to the caller: it exits via `_exit`, skipping destructors and
//! (deliberately) leaving its PID claimed in any attached segment, exactly
//! like a real crashed application.

#![cfg(unix)]

use std::os::raw::c_int;

use crate::shm::error::ShmError;

mod sys {
    use std::os::raw::c_int;

    pub const SIGKILL: c_int = 9;

    extern "C" {
        pub fn fork() -> c_int;
        pub fn waitpid(pid: c_int, status: *mut c_int, options: c_int) -> c_int;
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
        pub fn _exit(code: c_int) -> !;
    }
}

/// How a forked child terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildExit {
    /// `_exit(code)`.
    Exited(i32),
    /// Killed by a signal.
    Signaled(i32),
}

/// A forked child process.
#[derive(Debug)]
pub struct ForkedChild {
    pid: c_int,
}

/// Forks; the child runs `child` and `_exit`s with its return value, the
/// parent gets a [`ForkedChild`] to wait on or kill.
///
/// See the module docs for what `child` may safely do.
///
/// # Errors
///
/// Returns [`ShmError::Io`] when `fork` fails.
pub fn fork_child(child: impl FnOnce() -> i32) -> Result<ForkedChild, ShmError> {
    // SAFETY: fork itself is always sound to call; the constraints on what
    // the child may do are documented on this function and the module.
    match unsafe { sys::fork() } {
        -1 => Err(ShmError::Io {
            op: "fork",
            source: std::io::Error::last_os_error(),
        }),
        0 => {
            let code = child();
            // SAFETY: terminating the child without unwinding into the
            // cloned parent state is exactly what `_exit` is for.
            unsafe { sys::_exit(code) }
        }
        pid => Ok(ForkedChild { pid }),
    }
}

impl ForkedChild {
    /// The child's PID (as stored in segment headers).
    pub fn pid(&self) -> u32 {
        self.pid as u32
    }

    /// Blocks until the child terminates and reports how.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::Io`] when `waitpid` fails.
    pub fn wait(self) -> Result<ChildExit, ShmError> {
        let mut status: c_int = 0;
        // SAFETY: `pid` is a child of this process that has not been
        // waited on (wait consumes self).
        let rc = unsafe { sys::waitpid(self.pid, &mut status, 0) };
        if rc == -1 {
            return Err(ShmError::Io {
                op: "waitpid",
                source: std::io::Error::last_os_error(),
            });
        }
        // POSIX status decoding: low 7 bits are the terminating signal
        // (0 = normal exit), the next byte is the exit code.
        if status & 0x7f == 0 {
            Ok(ChildExit::Exited((status >> 8) & 0xff))
        } else {
            Ok(ChildExit::Signaled(status & 0x7f))
        }
    }

    /// Sends the child `SIGKILL` (the "application crashed mid-stream"
    /// fault the reap tests inject). Call [`ForkedChild::wait`] afterwards
    /// to release the zombie.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::Io`] when `kill` fails.
    pub fn kill(&self) -> Result<(), ShmError> {
        // SAFETY: signalling our own child.
        if unsafe { sys::kill(self.pid, sys::SIGKILL) } == -1 {
            return Err(ShmError::Io {
                op: "kill",
                source: std::io::Error::last_os_error(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_exit_code_is_reported() {
        let child = fork_child(|| 7).unwrap();
        assert!(child.pid() > 0);
        assert_eq!(child.wait().unwrap(), ChildExit::Exited(7));
    }

    #[test]
    fn killed_child_is_reported_as_signaled() {
        let child = fork_child(|| loop {
            std::hint::spin_loop();
        })
        .unwrap();
        child.kill().unwrap();
        assert_eq!(child.wait().unwrap(), ChildExit::Signaled(sys::SIGKILL));
    }
}
