//! Creating, mapping, and probing shared-memory segments.
//!
//! A [`Segment`] is a fixed-size byte region holding a [`SegmentHeader`]
//! followed by the slot array, behind one of three backings:
//!
//! * **memfd** (`memfd_create` + `mmap`, Linux, `shm-memfd` feature) — an
//!   anonymous shared file: forked children inherit the mapping, and the fd
//!   can be handed to unrelated processes over a Unix socket;
//! * **tmpfile** (`mmap` of a temporary file, any Unix) — the portable
//!   fallback; unrelated processes attach by path via [`Segment::open`];
//! * **in-memory fake** (`shm-fake` feature, any platform) — a plain heap
//!   allocation with the same layout, so the protocol logic (handshake,
//!   validation, ring discipline) is testable where `mmap` is unavailable.
//!   It is *not* visible to other processes.
//!
//! The segment itself is policy-free bytes; the ownership handshake lives
//! in [`crate::shm::transport`].

use std::fmt;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shm::error::ShmError;
use crate::shm::layout::{SegmentGeometry, SegmentHeader, SEGMENT_HEADER_LEN};

/// Raw OS bindings. Declared here instead of depending on the `libc` crate
/// (the offline build has no crates.io access); `std` already links the
/// platform C library, so these resolve to the same symbols `libc` wraps.
#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 0x01;
    pub const ESRCH: i32 = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub const O_RDONLY: c_int = 0;
    #[cfg(target_os = "linux")]
    pub const O_CLOEXEC: c_int = 0o2000000;

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn open(path: *const std::os::raw::c_char, flags: c_int, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(all(target_os = "linux", feature = "shm-memfd"))]
    pub const MFD_CLOEXEC: std::os::raw::c_uint = 1;

    #[cfg(all(target_os = "linux", feature = "shm-memfd"))]
    extern "C" {
        pub fn memfd_create(
            name: *const std::os::raw::c_char,
            flags: std::os::raw::c_uint,
        ) -> c_int;
    }
}

/// This process's PID in the 32-bit form stored in segment headers.
pub fn current_pid() -> u32 {
    std::process::id()
}

/// The start nonce of process `pid`: a value that identifies this
/// *incarnation* of the PID, so liveness probes can tell a recycled PID
/// from the original claimant.
///
/// On Linux this is the `starttime` field of `/proc/<pid>/stat` (clock
/// ticks since boot at which the process started) — stable for the
/// process's whole life, different for any later process recycled onto the
/// same PID. Returns `None` where `/proc` is unavailable (non-Linux, or a
/// PID hidden from this process), in which case callers fall back to plain
/// `kill(pid, 0)` liveness.
/// Allocation-free: this runs inside the reaper's per-quantum liveness
/// probe, which shares the hot path's no-heap contract (enforced by the
/// `no_alloc` test suite) — hence raw `open`/`read`/`close` into stack
/// buffers instead of `std::fs`.
pub fn process_start_nonce(pid: u32) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        // "/proc/" + up to 10 PID digits + "/stat" + NUL = 23 bytes.
        let mut path = [0u8; 24];
        let mut cursor = 0;
        for &byte in b"/proc/" {
            path[cursor] = byte;
            cursor += 1;
        }
        let mut digits = [0u8; 10];
        let mut remaining = pid;
        let mut count = 0;
        loop {
            digits[count] = b'0' + (remaining % 10) as u8;
            count += 1;
            remaining /= 10;
            if remaining == 0 {
                break;
            }
        }
        for index in (0..count).rev() {
            path[cursor] = digits[index];
            cursor += 1;
        }
        for &byte in b"/stat" {
            path[cursor] = byte;
            cursor += 1;
        }
        debug_assert!(cursor < path.len(), "path stays NUL-terminated");

        // SAFETY: `path` is NUL-terminated and outlives the call.
        let fd = unsafe {
            sys::open(
                path.as_ptr() as *const std::os::raw::c_char,
                sys::O_RDONLY | sys::O_CLOEXEC,
            )
        };
        if fd < 0 {
            return None;
        }
        // One read suffices: starttime is field 22, always within the
        // first few hundred bytes even with a pathological comm (the
        // kernel caps comm at 16 bytes).
        let mut buf = [0u8; 1024];
        let got = loop {
            // SAFETY: `buf` is writable for its full length and outlives
            // the call.
            let got =
                unsafe { sys::read(fd, buf.as_mut_ptr() as *mut std::os::raw::c_void, buf.len()) };
            if got >= 0 {
                break got as usize;
            }
            let interrupted =
                std::io::Error::last_os_error().kind() == std::io::ErrorKind::Interrupted;
            if !interrupted {
                // SAFETY: `fd` is ours and open.
                unsafe { sys::close(fd) };
                return None;
            }
        };
        // SAFETY: `fd` is ours and open.
        unsafe { sys::close(fd) };

        // The comm field is parenthesized and may itself contain spaces and
        // parentheses; everything after the *last* ')' is whitespace-split:
        // state(3) ppid(4) … starttime(22), i.e. index 19 after the comm.
        let stat = &buf[..got];
        let close_paren = stat.iter().rposition(|&byte| byte == b')')?;
        let token = stat[close_paren + 1..]
            .split(|&byte| byte == b' ')
            .filter(|token| !token.is_empty())
            .nth(19)?;
        std::str::from_utf8(token)
            .ok()?
            .parse::<u64>()
            .ok()
            .filter(|&nonce| nonce != 0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        None
    }
}

/// True when a process with `pid` currently exists (it may belong to
/// another user — existence is all the handshake needs).
///
/// On Unix this is `kill(pid, 0)`: success or `EPERM` means the process
/// exists, `ESRCH` means it does not. Elsewhere only the current process
/// can be confirmed alive, which is exactly the reach of the in-memory
/// fake backing.
pub fn pid_alive(pid: u32) -> bool {
    // 0 is "unclaimed", and anything beyond i32::MAX cannot be a real PID
    // (and would turn into a process-group kill if passed through).
    if pid == 0 || pid > i32::MAX as u32 {
        return false;
    }
    #[cfg(unix)]
    {
        if unsafe { sys::kill(pid as std::os::raw::c_int, 0) } == 0 {
            return true;
        }
        std::io::Error::last_os_error().raw_os_error() != Some(sys::ESRCH)
    }
    #[cfg(not(unix))]
    {
        pid == current_pid()
    }
}

/// How a segment's bytes are held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingKind {
    /// `memfd_create` + `mmap(MAP_SHARED)`.
    Memfd,
    /// `mmap(MAP_SHARED)` over a temporary file.
    TmpFile,
    /// Heap allocation (testing fake; not cross-process).
    InMemory,
}

impl fmt::Display for BackingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackingKind::Memfd => f.write_str("memfd"),
            BackingKind::TmpFile => f.write_str("tmpfile"),
            BackingKind::InMemory => f.write_str("in-memory"),
        }
    }
}

enum Backing {
    #[cfg(unix)]
    Mapped {
        /// Keeps the backing fd open for the lifetime of the mapping (a
        /// forked child or fd-passing peer may still need it).
        _file: std::fs::File,
        /// For tmpfile backings created by us: the path, unlinked on drop.
        owned_path: Option<PathBuf>,
        /// For attached tmpfile backings: the path, left in place.
        path: Option<PathBuf>,
    },
    #[cfg(feature = "shm-fake")]
    Heap { layout: std::alloc::Layout },
}

/// A mapped (or fake) shared-memory segment.
///
/// The segment owns its mapping; producers and consumers hold it behind an
/// `Arc` so the bytes outlive whichever side detaches last *within* a
/// process. Across processes the kernel keeps the pages alive while any
/// mapping exists.
pub struct Segment {
    ptr: NonNull<u8>,
    len: usize,
    geometry: SegmentGeometry,
    kind: BackingKind,
    backing: Backing,
}

// SAFETY: the segment's bytes are shared memory by design; all mutation of
// shared state goes through atomics in `SegmentHeader` or through slots
// whose exclusive ownership the transport protocol hands between producer
// and consumer via acquire/release on `head`/`tail`.
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Segment")
            .field("kind", &self.kind)
            .field("len", &self.len)
            .field("geometry", &self.geometry)
            .finish()
    }
}

/// Monotone counter making tmpfile names unique within a process.
static TMPFILE_SEQ: AtomicU64 = AtomicU64::new(0);

impl Segment {
    /// Creates a segment with the best *cross-process* backing available:
    /// memfd where supported, falling back to a tmpfile under
    /// [`std::env::temp_dir`].
    ///
    /// On Unix this never silently degrades to the in-memory fake — a
    /// fake segment is invisible to other processes, so a forked or
    /// attached peer would spin forever on a ring nobody shares with it.
    /// The fake is only chosen on platforms with no `mmap` at all (where
    /// no cross-process deployment exists to be broken); tests that want
    /// it explicitly call [`Segment::create_in_memory`].
    ///
    /// # Errors
    ///
    /// Returns the tmpfile-creation [`ShmError::Io`] when both real
    /// backings fail, or [`ShmError::NoBackingAvailable`] when every
    /// backing is compiled out.
    pub fn create(geometry: SegmentGeometry) -> Result<Segment, ShmError> {
        #[cfg(all(target_os = "linux", feature = "shm-memfd"))]
        {
            // Fall through on failure (e.g. a seccomp filter denying the
            // syscall): the tmpfile backing is functionally equivalent.
            if let Ok(segment) = Segment::create_memfd(geometry) {
                return Ok(segment);
            }
        }
        #[cfg(unix)]
        {
            // Propagate the error: no silent downgrade below a shareable
            // mapping.
            return Segment::create_tmpfile_in(std::env::temp_dir(), geometry);
        }
        #[cfg(all(not(unix), feature = "shm-fake"))]
        {
            return Segment::create_in_memory(geometry);
        }
        #[allow(unreachable_code)]
        Err(ShmError::NoBackingAvailable)
    }

    /// Creates a memfd-backed segment.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::Io`] when `memfd_create`, `ftruncate`, or
    /// `mmap` fails.
    #[cfg(all(target_os = "linux", feature = "shm-memfd"))]
    pub fn create_memfd(geometry: SegmentGeometry) -> Result<Segment, ShmError> {
        use std::os::fd::FromRawFd;

        geometry.validate()?;
        let name = c"powerdial-beats";
        let fd = unsafe { sys::memfd_create(name.as_ptr(), sys::MFD_CLOEXEC) };
        if fd < 0 {
            return Err(ShmError::Io {
                op: "memfd_create",
                source: std::io::Error::last_os_error(),
            });
        }
        // SAFETY: `fd` is a freshly created, owned file descriptor.
        let file = unsafe { std::fs::File::from_raw_fd(fd) };
        Segment::from_file(file, geometry, BackingKind::Memfd, None)
    }

    /// Creates a tmpfile-backed segment in `dir`; other processes attach
    /// with [`Segment::open`] on [`Segment::path`]. The file is unlinked
    /// when the creating segment drops.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::Io`] when file creation, sizing, or mapping
    /// fails.
    #[cfg(unix)]
    pub fn create_tmpfile_in(
        dir: impl AsRef<Path>,
        geometry: SegmentGeometry,
    ) -> Result<Segment, ShmError> {
        geometry.validate()?;
        let sequence = TMPFILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.as_ref().join(format!(
            "powerdial-beats-{}-{}.shm",
            current_pid(),
            sequence
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|source| ShmError::Io {
                op: "open(tmpfile)",
                source,
            })?;
        match Segment::from_file(file, geometry, BackingKind::TmpFile, Some(path.clone())) {
            Ok(segment) => Ok(segment),
            Err(error) => {
                let _ = std::fs::remove_file(&path);
                Err(error)
            }
        }
    }

    /// Sizes `file` for `geometry`, maps it shared, and initializes the
    /// header.
    #[cfg(unix)]
    fn from_file(
        file: std::fs::File,
        geometry: SegmentGeometry,
        kind: BackingKind,
        owned_path: Option<PathBuf>,
    ) -> Result<Segment, ShmError> {
        let len = geometry.total_len();
        file.set_len(len as u64).map_err(|source| ShmError::Io {
            op: "ftruncate",
            source,
        })?;
        let ptr = map_shared(&file, len)?;
        let segment = Segment {
            ptr,
            len,
            geometry,
            kind,
            backing: Backing::Mapped {
                _file: file,
                owned_path,
                path: None,
            },
        };
        segment.header().initialize(geometry);
        Ok(segment)
    }

    /// Creates the heap-backed in-memory fake (same layout and protocol,
    /// no cross-process visibility).
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] for an invalid geometry.
    #[cfg(feature = "shm-fake")]
    pub fn create_in_memory(geometry: SegmentGeometry) -> Result<Segment, ShmError> {
        geometry.validate()?;
        let len = geometry.total_len();
        // Page-align the fake so header offsets have the same cache-line
        // placement as a real mapping.
        let layout =
            std::alloc::Layout::from_size_align(len, 4096).map_err(|_| ShmError::BadGeometry {
                field: "total_len",
                found: len as u64,
            })?;
        // SAFETY: `layout` has nonzero size (≥ SEGMENT_HEADER_LEN).
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        let segment = Segment {
            ptr,
            len,
            geometry,
            kind: BackingKind::InMemory,
            backing: Backing::Heap { layout },
        };
        segment.header().initialize(geometry);
        Ok(segment)
    }

    /// Attaches to an existing file-backed segment by path (the
    /// cross-process entry point for tmpfile backings), validating the
    /// header before returning.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::Io`] when the file cannot be opened or mapped,
    /// [`ShmError::TruncatedSegment`] when it is too small to even hold a
    /// header, and any [`SegmentHeader::validate`] error for a malformed
    /// header.
    #[cfg(unix)]
    pub fn open(path: impl AsRef<Path>) -> Result<Segment, ShmError> {
        let path = path.as_ref();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|source| ShmError::Io {
                op: "open(segment)",
                source,
            })?;
        Segment::attach_file(file, BackingKind::TmpFile, Some(path.to_path_buf()))
    }

    /// Attaches to an existing, already-initialized segment through an open
    /// file descriptor — the entry point for memfds received over a Unix
    /// socket (`SCM_RIGHTS`, the attach broker) or inherited across
    /// `exec`. The header is validated before the first slot access.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::Io`] when the fd cannot be sized or mapped,
    /// [`ShmError::TruncatedSegment`] when it is too small to hold a
    /// header, and any [`SegmentHeader::validate`] error for a malformed
    /// header.
    #[cfg(unix)]
    pub fn attach_fd(file: std::fs::File) -> Result<Segment, ShmError> {
        Segment::attach_file(file, BackingKind::Memfd, None)
    }

    /// Maps and validates an existing segment file (no initialization).
    #[cfg(unix)]
    fn attach_file(
        file: std::fs::File,
        kind: BackingKind,
        path: Option<PathBuf>,
    ) -> Result<Segment, ShmError> {
        let len = file
            .metadata()
            .map_err(|source| ShmError::Io {
                op: "stat(segment)",
                source,
            })?
            .len();
        if len < SEGMENT_HEADER_LEN as u64 {
            return Err(ShmError::TruncatedSegment {
                expected: SEGMENT_HEADER_LEN as u64,
                found: len,
            });
        }
        let len = usize::try_from(len).map_err(|_| ShmError::TruncatedSegment {
            expected: u64::MAX,
            found: len,
        })?;
        let ptr = map_shared(&file, len)?;
        let mut segment = Segment {
            ptr,
            len,
            // Placeholder until the header is validated below.
            geometry: SegmentGeometry::for_beat_samples(1).expect("static geometry"),
            kind,
            backing: Backing::Mapped {
                _file: file,
                owned_path: None,
                path,
            },
        };
        segment.geometry = segment.header().validate(segment.len)?;
        Ok(segment)
    }

    /// The segment header.
    pub fn header(&self) -> &SegmentHeader {
        debug_assert!(self.len >= SEGMENT_HEADER_LEN);
        debug_assert_eq!(
            self.ptr.as_ptr() as usize % std::mem::align_of::<SegmentHeader>(),
            0
        );
        // SAFETY: the mapping is at least SEGMENT_HEADER_LEN bytes, lives
        // as long as `self`, is suitably aligned (page-aligned mmap or
        // page-aligned heap allocation), and every header field is an
        // atomic, so shared references are sound even while another
        // process mutates the memory.
        unsafe { &*(self.ptr.as_ptr() as *const SegmentHeader) }
    }

    /// Re-validates the header against the mapping (attach time, and any
    /// time a peer is suspected of having scribbled on it).
    ///
    /// # Errors
    ///
    /// Propagates [`SegmentHeader::validate`] errors.
    pub fn validate(&self) -> Result<SegmentGeometry, ShmError> {
        self.header().validate(self.len)
    }

    /// The geometry the segment was created (or validated) with.
    pub fn geometry(&self) -> SegmentGeometry {
        self.geometry
    }

    /// Total mapped bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// A segment always holds at least a header; this mirrors the
    /// conventional `len`/`is_empty` pairing and is never true.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Which backing holds the bytes.
    pub fn backing_kind(&self) -> BackingKind {
        self.kind
    }

    /// For file-backed segments: the raw file descriptor another process
    /// can attach through, after receiving it over a Unix socket
    /// (`SCM_RIGHTS`) or inheriting it. `None` for the in-memory fake. The
    /// fd stays owned by this segment — callers duplicate it (the kernel
    /// does, for fd passing) rather than close it.
    #[cfg(unix)]
    pub fn as_raw_fd(&self) -> Option<std::os::fd::RawFd> {
        use std::os::fd::AsRawFd;
        match &self.backing {
            Backing::Mapped { _file, .. } => Some(_file.as_raw_fd()),
            #[cfg(feature = "shm-fake")]
            Backing::Heap { .. } => None,
        }
    }

    /// For file-backed segments: the filesystem path another process can
    /// [`Segment::open`] (tmpfile backings only; memfds are attached by
    /// inheriting the mapping or passing the fd).
    pub fn path(&self) -> Option<&Path> {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped {
                owned_path, path, ..
            } => owned_path.as_deref().or(path.as_deref()),
            #[cfg(feature = "shm-fake")]
            Backing::Heap { .. } => None,
        }
    }

    /// Raw pointer to the start of slot `index` (callers mask positions
    /// first). The pointer stays in bounds for `record_size` bytes by the
    /// geometry invariants validated at attach time.
    pub(crate) fn slot_ptr(&self, index: u64) -> *mut u8 {
        let offset = self.geometry.slot_offset(index);
        debug_assert!(offset + self.geometry.record_size() as usize <= self.len);
        // SAFETY: offset < len by geometry validation against the mapping.
        unsafe { self.ptr.as_ptr().add(offset) }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { owned_path, .. } => {
                // SAFETY: `ptr`/`len` describe a live mapping created by
                // `map_shared`; after this call nothing dereferences it
                // (we are in drop).
                unsafe {
                    sys::munmap(self.ptr.as_ptr() as *mut std::os::raw::c_void, self.len);
                }
                if let Some(path) = owned_path {
                    let _ = std::fs::remove_file(path);
                }
            }
            #[cfg(feature = "shm-fake")]
            Backing::Heap { layout } => {
                // SAFETY: allocated in `create_in_memory` with this layout.
                unsafe { std::alloc::dealloc(self.ptr.as_ptr(), *layout) };
            }
        }
    }
}

/// Maps `len` bytes of `file` shared and read-write.
#[cfg(unix)]
fn map_shared(file: &std::fs::File, len: usize) -> Result<NonNull<u8>, ShmError> {
    use std::os::fd::AsRawFd;

    let raw = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ | sys::PROT_WRITE,
            sys::MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if raw as isize == -1 || raw.is_null() {
        return Err(ShmError::Io {
            op: "mmap",
            source: std::io::Error::last_os_error(),
        });
    }
    Ok(NonNull::new(raw as *mut u8).expect("mmap returned non-null"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::layout::SEGMENT_MAGIC;

    fn geometry() -> SegmentGeometry {
        SegmentGeometry::for_beat_samples(16).unwrap()
    }

    #[test]
    fn create_initializes_a_valid_header() {
        let segment = Segment::create(geometry()).unwrap();
        assert_eq!(segment.validate().unwrap(), geometry());
        assert_eq!(
            segment.header().magic.load(Ordering::Relaxed),
            SEGMENT_MAGIC
        );
        assert_eq!(segment.len(), geometry().total_len());
        assert!(!segment.is_empty());
    }

    #[cfg(feature = "shm-fake")]
    #[test]
    fn in_memory_fake_has_same_layout() {
        let segment = Segment::create_in_memory(geometry()).unwrap();
        assert_eq!(segment.backing_kind(), BackingKind::InMemory);
        assert_eq!(segment.path(), None);
        assert_eq!(segment.validate().unwrap(), geometry());
    }

    #[cfg(unix)]
    #[test]
    fn tmpfile_segment_reopens_by_path() {
        let created = Segment::create_tmpfile_in(std::env::temp_dir(), geometry()).unwrap();
        let path = created.path().unwrap().to_path_buf();
        assert!(path.exists());
        let attached = Segment::open(&path).unwrap();
        assert_eq!(attached.geometry(), geometry());
        // The two mappings see the same memory: a store through one is a
        // load through the other.
        created.header().tail.store(7, Ordering::Release);
        assert_eq!(attached.header().tail.load(Ordering::Acquire), 7);
        drop(attached);
        drop(created);
        assert!(!path.exists(), "creator unlinks its tmpfile");
    }

    #[cfg(all(target_os = "linux", feature = "shm-memfd"))]
    #[test]
    fn memfd_segment_creates_and_validates() {
        let segment = Segment::create_memfd(geometry()).unwrap();
        assert_eq!(segment.backing_kind(), BackingKind::Memfd);
        assert_eq!(segment.path(), None);
        assert_eq!(segment.validate().unwrap(), geometry());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn start_nonce_identifies_this_process() {
        let nonce = process_start_nonce(current_pid());
        assert!(nonce.is_some(), "own /proc entry must be readable");
        assert_ne!(nonce, Some(0));
        // Stable across reads: the nonce identifies the incarnation.
        assert_eq!(nonce, process_start_nonce(current_pid()));
        // A PID that cannot exist has no nonce.
        assert_eq!(process_start_nonce((i32::MAX - 1) as u32), None);
        assert_eq!(process_start_nonce(0), None);
    }

    #[cfg(unix)]
    #[test]
    fn attach_fd_maps_the_same_memory() {
        use std::os::fd::FromRawFd;

        let created = Segment::create(geometry()).unwrap();
        let raw = created.as_raw_fd().expect("file-backed segment has an fd");
        // Duplicate the fd the way fd-passing would (the kernel dups on
        // SCM_RIGHTS transfer); attach through the duplicate.
        let dup = unsafe { sys_dup(raw) };
        assert!(dup >= 0);
        let attached = Segment::attach_fd(unsafe { std::fs::File::from_raw_fd(dup) }).unwrap();
        assert_eq!(attached.geometry(), geometry());
        created.header().tail.store(9, Ordering::Release);
        assert_eq!(attached.header().tail.load(Ordering::Acquire), 9);
    }

    #[cfg(unix)]
    unsafe fn sys_dup(fd: std::os::raw::c_int) -> std::os::raw::c_int {
        extern "C" {
            fn dup(fd: std::os::raw::c_int) -> std::os::raw::c_int;
        }
        unsafe { dup(fd) }
    }

    #[test]
    fn pid_liveness_basics() {
        assert!(pid_alive(current_pid()));
        assert!(!pid_alive(0));
        // Linux caps PIDs at 2²² by default; this one cannot exist.
        assert!(!pid_alive((i32::MAX - 1) as u32));
        // Out-of-range values are dead by definition, never a group kill.
        assert!(!pid_alive(u32::MAX));
    }
}
