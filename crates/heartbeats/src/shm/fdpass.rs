//! `SCM_RIGHTS` fd passing and the attach-broker hello wire protocol.
//!
//! The attach broker (in `powerdial-control`) hands memfd-backed segments
//! to unrelated connecting processes over a Unix domain socket. This
//! module owns the two low-level pieces both ends share:
//!
//! * [`send_with_fd`] / [`recv_exact_with_fd`] — `sendmsg`/`recvmsg`
//!   wrappers carrying at most one file descriptor in an `SCM_RIGHTS`
//!   ancillary message (Linux only; received fds are opened
//!   close-on-exec via `MSG_CMSG_CLOEXEC`);
//! * [`HelloRequest`] / [`HelloReply`] — the fixed-size, little-endian
//!   hello exchange that precedes the fd transfer.
//!
//! # Wire protocol
//!
//! The connecting client speaks first:
//!
//! ```text
//! HelloRequest (24 bytes):  magic "PDBRKHLO" (u64 LE)
//!                           abi_version (u32 LE)   client's SEGMENT_ABI_VERSION
//!                           flags (u32 LE)         0, or HELLO_FLAG_REATTACH
//!                           capacity (u64 LE)      requested ring capacity
//! HelloReply   (16 bytes):  magic "PDBRKRPY" (u64 LE)
//!                           status (u32 LE)        HelloStatus
//!                           abi_version (u32 LE)   broker's SEGMENT_ABI_VERSION
//! ```
//!
//! On [`HelloStatus::Granted`] the reply bytes travel together with the
//! segment fd in the same `sendmsg`, so a client that read a granted
//! reply is guaranteed the ancillary fd accompanied it (stream sockets
//! deliver ancillary data with the first byte of the paired payload). Any
//! other status carries no fd and the broker closes the connection.
//!
//! # Reattach (daemon crash recovery)
//!
//! A client that survived a daemon crash still holds its mapped segment;
//! re-registering with a fresh segment would discard every beat pushed
//! across the outage. Instead it sends a hello with
//! [`HELLO_FLAG_REATTACH`] set and its *existing* segment fd riding in
//! the hello's own `SCM_RIGHTS` ancillary data (the reverse direction of
//! the grant). The broker validates and adopts that segment — a granted
//! reattach reply carries **no** fd back. Brokers predating this flag
//! refuse any nonzero flags as [`HelloStatus::Malformed`], which a
//! reattaching client treats as "re-register from scratch": cross-version
//! behavior degrades to the old protocol instead of wedging.
//!
//! Everything here is length-prefixed-free and fixed-size on purpose: a
//! malformed, truncated, or hostile peer can produce a *decode failure*
//! (handled, typed) but never an unbounded read.

use std::fmt;

use crate::shm::layout::SEGMENT_ABI_VERSION;

/// First 8 bytes of every [`HelloRequest`].
pub const HELLO_REQUEST_MAGIC: u64 = u64::from_le_bytes(*b"PDBRKHLO");
/// First 8 bytes of every [`HelloReply`].
pub const HELLO_REPLY_MAGIC: u64 = u64::from_le_bytes(*b"PDBRKRPY");
/// Encoded size of a [`HelloRequest`].
pub const HELLO_REQUEST_LEN: usize = 24;
/// Encoded size of a [`HelloReply`].
pub const HELLO_REPLY_LEN: usize = 16;

/// [`HelloRequest::flags`] bit: this hello is a *reattach* — the client's
/// existing segment fd rides in the hello's own `SCM_RIGHTS` ancillary
/// data for the broker to adopt, and a granted reply carries no fd back.
pub const HELLO_FLAG_REATTACH: u32 = 1;

/// Mask of every [`HelloRequest::flags`] bit this build understands;
/// brokers refuse anything outside it as [`HelloStatus::Malformed`].
pub const HELLO_FLAGS_KNOWN: u32 = HELLO_FLAG_REATTACH;

/// The client's opening message: who it is (ABI) and what it wants
/// (ring capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloRequest {
    /// The client's [`SEGMENT_ABI_VERSION`]; the broker refuses a
    /// mismatch ([`HelloStatus::WrongAbi`]) instead of handing over a
    /// segment the client would misinterpret.
    pub abi_version: u32,
    /// Capability bits ([`HELLO_FLAG_REATTACH`] is the only one defined);
    /// brokers reject unknown bits as malformed, so the field stays room
    /// for future negotiation without a magic bump.
    pub flags: u32,
    /// Requested beat-ring capacity in records (the broker clamps to its
    /// configured maximum and rounds to a power of two). On a reattach
    /// the field carries the existing ring's capacity, informationally —
    /// the broker re-derives geometry from the adopted segment itself.
    pub capacity: u64,
}

impl HelloRequest {
    /// A well-formed request for this build's ABI.
    pub fn new(capacity: u64) -> Self {
        HelloRequest {
            abi_version: SEGMENT_ABI_VERSION,
            flags: 0,
            capacity,
        }
    }

    /// A reattach request for this build's ABI: the sender must attach
    /// its existing segment fd to the hello via [`send_with_fd`].
    pub fn reattach(capacity: u64) -> Self {
        HelloRequest {
            abi_version: SEGMENT_ABI_VERSION,
            flags: HELLO_FLAG_REATTACH,
            capacity,
        }
    }

    /// True when this hello asks to reattach an existing segment.
    pub fn is_reattach(&self) -> bool {
        self.flags & HELLO_FLAG_REATTACH != 0
    }

    /// Encodes to the fixed wire form.
    pub fn encode(&self) -> [u8; HELLO_REQUEST_LEN] {
        let mut bytes = [0u8; HELLO_REQUEST_LEN];
        bytes[0..8].copy_from_slice(&HELLO_REQUEST_MAGIC.to_le_bytes());
        bytes[8..12].copy_from_slice(&self.abi_version.to_le_bytes());
        bytes[12..16].copy_from_slice(&self.flags.to_le_bytes());
        bytes[16..24].copy_from_slice(&self.capacity.to_le_bytes());
        bytes
    }

    /// Decodes the fixed wire form; `None` on a bad magic (anything else
    /// in the buffer is structurally valid and judged by the broker).
    pub fn decode(bytes: &[u8; HELLO_REQUEST_LEN]) -> Option<Self> {
        let magic = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if magic != HELLO_REQUEST_MAGIC {
            return None;
        }
        Some(HelloRequest {
            abi_version: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            flags: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            capacity: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        })
    }
}

/// The broker's verdict on a [`HelloRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum HelloStatus {
    /// Attach granted; the segment fd rides along in the same message.
    Granted = 0,
    /// The client's ABI version is not this broker's.
    WrongAbi = 1,
    /// The request was structurally invalid (bad magic, nonzero reserved
    /// flags, zero or absurd capacity).
    Malformed = 2,
    /// The broker is at its configured app capacity; retry later.
    Busy = 3,
    /// Segment creation failed (fd exhaustion, memfd failure); the
    /// broker itself survives, the one attach does not.
    Resources = 4,
}

impl HelloStatus {
    /// Decodes the wire value.
    pub fn from_u32(value: u32) -> Option<Self> {
        Some(match value {
            0 => HelloStatus::Granted,
            1 => HelloStatus::WrongAbi,
            2 => HelloStatus::Malformed,
            3 => HelloStatus::Busy,
            4 => HelloStatus::Resources,
            _ => return None,
        })
    }
}

impl fmt::Display for HelloStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            HelloStatus::Granted => "granted",
            HelloStatus::WrongAbi => "ABI version mismatch",
            HelloStatus::Malformed => "malformed hello",
            HelloStatus::Busy => "broker at capacity",
            HelloStatus::Resources => "broker out of resources",
        };
        f.write_str(text)
    }
}

/// The broker's reply to a [`HelloRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloReply {
    /// The verdict.
    pub status: HelloStatus,
    /// The broker's [`SEGMENT_ABI_VERSION`], so a refused client can log
    /// *which* ABI it should have spoken.
    pub abi_version: u32,
}

impl HelloReply {
    /// A reply carrying `status` and this build's ABI version.
    pub fn new(status: HelloStatus) -> Self {
        HelloReply {
            status,
            abi_version: SEGMENT_ABI_VERSION,
        }
    }

    /// Encodes to the fixed wire form.
    pub fn encode(&self) -> [u8; HELLO_REPLY_LEN] {
        let mut bytes = [0u8; HELLO_REPLY_LEN];
        bytes[0..8].copy_from_slice(&HELLO_REPLY_MAGIC.to_le_bytes());
        bytes[8..12].copy_from_slice(&(self.status as u32).to_le_bytes());
        bytes[12..16].copy_from_slice(&self.abi_version.to_le_bytes());
        bytes
    }

    /// Decodes the fixed wire form; `None` on a bad magic or an unknown
    /// status value.
    pub fn decode(bytes: &[u8; HELLO_REPLY_LEN]) -> Option<Self> {
        let magic = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if magic != HELLO_REPLY_MAGIC {
            return None;
        }
        let status = HelloStatus::from_u32(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))?;
        Some(HelloReply {
            status,
            abi_version: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        })
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Just enough of the Linux `sendmsg`/`recvmsg` ABI (glibc x86-64 /
    //! aarch64 layout) to move one fd. Mirrors the style of
    //! `segment::sys`: direct declarations, no libc crate.
    #![allow(missing_docs, clippy::missing_safety_doc)]

    use std::os::raw::{c_int, c_uint, c_void};

    #[repr(C)]
    pub struct iovec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    #[repr(C)]
    pub struct msghdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: c_uint,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: c_int,
    }

    #[repr(C)]
    pub struct cmsghdr {
        pub cmsg_len: usize,
        pub cmsg_level: c_int,
        pub cmsg_type: c_int,
    }

    pub const SOL_SOCKET: c_int = 1;
    pub const SCM_RIGHTS: c_int = 1;
    pub const MSG_CMSG_CLOEXEC: c_int = 0x4000_0000;
    pub const MSG_NOSIGNAL: c_int = 0x4000;

    /// `CMSG_LEN(size_of::<c_int>())`: header plus one fd, unpadded.
    pub const CMSG_LEN_ONE_FD: usize = std::mem::size_of::<cmsghdr>() + 4;
    /// `CMSG_SPACE(size_of::<c_int>())`: one-fd message, padded to 8.
    pub const CMSG_SPACE_ONE_FD: usize = (CMSG_LEN_ONE_FD + 7) & !7;

    extern "C" {
        pub fn sendmsg(sockfd: c_int, msg: *const msghdr, flags: c_int) -> isize;
        pub fn recvmsg(sockfd: c_int, msg: *mut msghdr, flags: c_int) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Sends `bytes` over `socket` with `fd` (if any) attached as a single
/// `SCM_RIGHTS` ancillary descriptor, in one `sendmsg`.
///
/// The payload must be small enough to go out in one call (the hello
/// messages are ≤ 24 bytes, far below any socket buffer); a short send is
/// reported as [`std::io::ErrorKind::WriteZero`] rather than looped,
/// because splitting the payload would detach the ancillary fd from its
/// first byte.
///
/// # Errors
///
/// Any `sendmsg` failure (`EINTR` is retried), or `WriteZero` on a short
/// send. The send is `MSG_NOSIGNAL`: a peer that vanished before the
/// reply reached it surfaces as `EPIPE` instead of raising `SIGPIPE` —
/// a daemon that never installed a handler (or runs outside a Rust
/// binary's SIGPIPE-ignoring startup) must not die because one client
/// disconnected early.
#[cfg(target_os = "linux")]
pub fn send_with_fd(
    socket: &std::os::unix::net::UnixStream,
    bytes: &[u8],
    fd: Option<std::os::fd::RawFd>,
) -> std::io::Result<()> {
    use std::os::fd::AsRawFd;
    use std::os::raw::c_void;

    // 8-aligned backing store for the control message (cmsghdr wants the
    // platform's natural alignment).
    let mut control = [0u64; sys::CMSG_SPACE_ONE_FD.div_ceil(8)];
    let mut iov = sys::iovec {
        iov_base: bytes.as_ptr() as *mut c_void,
        iov_len: bytes.len(),
    };
    // SAFETY: an all-zero msghdr is the valid "no name, no control"
    // state; every pointer field is initialized before use below.
    let mut msg: sys::msghdr = unsafe { std::mem::zeroed() };
    msg.msg_iov = &mut iov;
    msg.msg_iovlen = 1;
    if let Some(fd) = fd {
        msg.msg_control = control.as_mut_ptr() as *mut c_void;
        msg.msg_controllen = sys::CMSG_SPACE_ONE_FD;
        let cmsg = msg.msg_control as *mut sys::cmsghdr;
        // SAFETY: `control` is CMSG_SPACE_ONE_FD bytes of 8-aligned
        // storage, enough for the header and the one c_int that follows.
        unsafe {
            (*cmsg).cmsg_len = sys::CMSG_LEN_ONE_FD;
            (*cmsg).cmsg_level = sys::SOL_SOCKET;
            (*cmsg).cmsg_type = sys::SCM_RIGHTS;
            (cmsg.add(1) as *mut std::os::raw::c_int).write_unaligned(fd);
        }
    }
    loop {
        // SAFETY: `msg` and everything it points to live across the call.
        let sent = unsafe { sys::sendmsg(socket.as_raw_fd(), &msg, sys::MSG_NOSIGNAL) };
        if sent < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        if sent as usize != bytes.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "short sendmsg would detach the ancillary fd",
            ));
        }
        return Ok(());
    }
}

/// Receives exactly `buf.len()` bytes from `socket`, harvesting at most
/// one `SCM_RIGHTS` fd from the ancillary data of any chunk (surplus fds
/// a hostile peer piles on are closed, not leaked). Received fds are
/// `MSG_CMSG_CLOEXEC`.
///
/// # Errors
///
/// [`std::io::ErrorKind::UnexpectedEof`] when the peer closes before the
/// buffer fills (the truncated-hello case); `TimedOut`/`WouldBlock` when
/// the socket's read timeout expires (the slow-loris case); any other
/// `recvmsg` failure verbatim. An fd already harvested is closed on the
/// error paths by `OwnedFd`'s drop.
#[cfg(target_os = "linux")]
pub fn recv_exact_with_fd(
    socket: &std::os::unix::net::UnixStream,
    buf: &mut [u8],
) -> std::io::Result<Option<std::os::fd::OwnedFd>> {
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::os::raw::{c_int, c_void};

    let mut received: Option<OwnedFd> = None;
    let mut filled = 0usize;
    while filled < buf.len() {
        let mut control = [0u64; sys::CMSG_SPACE_ONE_FD.div_ceil(8)];
        let mut iov = sys::iovec {
            iov_base: buf[filled..].as_mut_ptr() as *mut c_void,
            iov_len: buf.len() - filled,
        };
        // SAFETY: as in `send_with_fd`.
        let mut msg: sys::msghdr = unsafe { std::mem::zeroed() };
        msg.msg_iov = &mut iov;
        msg.msg_iovlen = 1;
        msg.msg_control = control.as_mut_ptr() as *mut c_void;
        msg.msg_controllen = sys::CMSG_SPACE_ONE_FD;
        // SAFETY: `msg` and everything it points to live across the call.
        let got = unsafe { sys::recvmsg(socket.as_raw_fd(), &mut msg, sys::MSG_CMSG_CLOEXEC) };
        if got < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        if got == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed mid-message",
            ));
        }
        filled += got as usize;

        // Harvest at most one fd; close everything beyond it. The control
        // buffer only has room for one cmsg, and MSG_CTRUNC-dropped fds
        // are closed by the kernel, so nothing can leak past this loop.
        if msg.msg_controllen >= sys::CMSG_LEN_ONE_FD {
            let cmsg = msg.msg_control as *const sys::cmsghdr;
            // SAFETY: the kernel wrote a valid cmsghdr of at least
            // CMSG_LEN_ONE_FD bytes into our aligned control buffer.
            let (len, level, typ) =
                unsafe { ((*cmsg).cmsg_len, (*cmsg).cmsg_level, (*cmsg).cmsg_type) };
            if level == sys::SOL_SOCKET && typ == sys::SCM_RIGHTS && len >= sys::CMSG_LEN_ONE_FD {
                let count = (len - std::mem::size_of::<sys::cmsghdr>()) / 4;
                for index in 0..count {
                    // SAFETY: `count` fds follow the header per cmsg_len,
                    // all within our control buffer.
                    let fd = unsafe { (cmsg.add(1) as *const c_int).add(index).read_unaligned() };
                    if received.is_none() {
                        // SAFETY: the kernel just granted us this fd; we
                        // are its unique owner.
                        received = Some(unsafe { OwnedFd::from_raw_fd(fd) });
                    } else {
                        // SAFETY: ditto, and nothing else holds it.
                        unsafe { sys::close(fd) };
                    }
                }
            }
        }
    }
    Ok(received)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_request_round_trips() {
        let request = HelloRequest::new(256);
        let bytes = request.encode();
        assert_eq!(bytes.len(), HELLO_REQUEST_LEN);
        assert_eq!(HelloRequest::decode(&bytes), Some(request));

        let mut bad = bytes;
        bad[0] ^= 0xff;
        assert_eq!(HelloRequest::decode(&bad), None, "wrong magic");
    }

    #[test]
    fn reattach_hello_round_trips_and_flags_decode() {
        let request = HelloRequest::reattach(128);
        assert!(request.is_reattach());
        assert!(!HelloRequest::new(128).is_reattach());
        let decoded = HelloRequest::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
        assert!(decoded.is_reattach());
        assert_eq!(HELLO_FLAGS_KNOWN & HELLO_FLAG_REATTACH, HELLO_FLAG_REATTACH);
    }

    #[test]
    fn hello_reply_round_trips_and_rejects_unknown_status() {
        for status in [
            HelloStatus::Granted,
            HelloStatus::WrongAbi,
            HelloStatus::Malformed,
            HelloStatus::Busy,
            HelloStatus::Resources,
        ] {
            let reply = HelloReply::new(status);
            assert_eq!(HelloReply::decode(&reply.encode()), Some(reply));
        }
        let mut bytes = HelloReply::new(HelloStatus::Granted).encode();
        bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
        assert_eq!(HelloReply::decode(&bytes), None, "unknown status");
        bytes = HelloReply::new(HelloStatus::Granted).encode();
        bytes[3] ^= 0x01;
        assert_eq!(HelloReply::decode(&bytes), None, "wrong magic");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn fd_rides_along_with_payload() {
        use std::os::fd::AsRawFd;
        use std::os::unix::net::UnixStream;
        use std::sync::atomic::Ordering;

        use crate::shm::layout::SegmentGeometry;
        use crate::shm::segment::Segment;

        let (ours, theirs) = UnixStream::pair().unwrap();
        let segment = Segment::create(SegmentGeometry::for_beat_samples(16).unwrap()).unwrap();
        let reply = HelloReply::new(HelloStatus::Granted).encode();
        send_with_fd(&ours, &reply, segment.as_raw_fd()).unwrap();

        let mut buf = [0u8; HELLO_REPLY_LEN];
        let fd = recv_exact_with_fd(&theirs, &mut buf).unwrap();
        assert_eq!(
            HelloReply::decode(&buf).unwrap().status,
            HelloStatus::Granted
        );
        let fd = fd.expect("granted reply carries the segment fd");
        assert_ne!(fd.as_raw_fd(), segment.as_raw_fd().unwrap(), "kernel dups");

        // The received fd maps the same memory: writes cross over.
        let attached = Segment::attach_fd(std::fs::File::from(fd)).unwrap();
        segment.header().tail.store(7, Ordering::Release);
        assert_eq!(attached.header().tail.load(Ordering::Acquire), 7);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn plain_payload_carries_no_fd() {
        use std::os::unix::net::UnixStream;

        let (ours, theirs) = UnixStream::pair().unwrap();
        let request = HelloRequest::new(64).encode();
        send_with_fd(&ours, &request, None).unwrap();
        let mut buf = [0u8; HELLO_REQUEST_LEN];
        let fd = recv_exact_with_fd(&theirs, &mut buf).unwrap();
        assert!(fd.is_none());
        assert_eq!(HelloRequest::decode(&buf), Some(HelloRequest::new(64)));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn truncated_message_reads_unexpected_eof() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;

        let (mut ours, theirs) = UnixStream::pair().unwrap();
        ours.write_all(&HelloRequest::new(64).encode()[..7])
            .unwrap();
        drop(ours);
        let mut buf = [0u8; HELLO_REQUEST_LEN];
        let err = recv_exact_with_fd(&theirs, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
