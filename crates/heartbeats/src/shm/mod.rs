//! Cross-process shared-memory heartbeat transport.
//!
//! The Application Heartbeats interface is explicitly *cross-process*: an
//! instrumented application emits beats into a shared-memory region that an
//! external controller (the PowerDial daemon) attaches to and reads. The
//! in-heap SPSC rings of [`crate::channel`] implement the protocol within
//! one process; this module family backs the same wait-free protocol with
//! an actual shared mapping so the producer and consumer may be different
//! OS processes:
//!
//! * [`layout`] — the stable, versioned `#[repr(C)]` segment ABI: a
//!   [`SegmentHeader`] (magic, ABI version, geometry, producer/consumer
//!   PIDs, cache-line-isolated head/tail atomics) followed by a
//!   fixed-stride slot array of [`ShmBeatSample`] records;
//! * [`segment`] — creating and mapping segments: `memfd_create` + `mmap`
//!   on Linux (`shm-memfd` feature), a tmpfile mapping on any Unix
//!   (attachable by path from unrelated processes), and a feature-gated
//!   in-memory fake (`shm-fake`) so the protocol logic is testable on any
//!   platform;
//! * [`transport`] — [`ShmProducer`] / [`ShmConsumer`]: the wait-free
//!   `try_push` / batched `drain_into` protocol over the mapped atomics,
//!   plus the attach-time handshake, peer liveness, and the decision
//!   read-back path;
//! * [`fdpass`] — `SCM_RIGHTS` fd passing and the hello wire protocol the
//!   attach broker (`powerdial-control`) and `powerdial-client` speak;
//! * [`process`] — fork/wait helpers for the cross-process tests and the
//!   `shm_external_controller` example.
//!
//! # Segment layout (ABI version 2)
//!
//! ```text
//! offset 0    magic ("PDSHMBT1"), abi_version, ready,
//!             capacity, slot_stride, record_size,
//!             producer_pid, consumer_pid,
//!             producer_nonce                      ── control block
//! offset 128  head  (consumer-owned cache line)
//! offset 256  tail  (producer-owned cache line)
//! offset 384  decision block (consumer-owned cache line):
//!             decision_seq, decision_point, decision_gain_bits,
//!             decision_speedup_bits, decision_qos_bits
//! offset 424  warm-start block (reserved-region extension):
//!             warm_seq, warm_point, warm_speedup_bits,
//!             warm_rate_bits, warm_beat_in_quantum
//! offset 512  slot[0], slot[1], …, slot[capacity-1]   (fixed stride)
//! ```
//!
//! # ABI v2 additions
//!
//! Version 2 (this build) grew the header from 384 to 512 bytes and the
//! ABI in three ways; v1 segments are refused at validation (`abi_version`
//! mismatch), never reinterpreted.
//!
//! **Producer start nonce.** `producer_nonce` records the claimant's
//! start time (Linux: the `starttime` field of `/proc/<pid>/stat`, in
//! clock ticks since boot) alongside its PID. Liveness probes compare the
//! live process's actual start time against the recorded nonce: a
//! mismatch means the PID was recycled and the original producer is dead
//! — closing the v1 false-liveness hole where a recycled PID deferred the
//! reap indefinitely. A zero nonce (pre-nonce attacher, `/proc`
//! unavailable, non-Linux) degrades to plain `kill(pid, 0)` liveness, a
//! conservative *alive*. The claim protocol keeps the pair coherent
//! without widening the CAS: the nonce slot is zero whenever the PID slot
//! is claimable (`initialize` and [`ShmProducer::detach`] clear the nonce
//! *before* the PID; death clears neither), and a probe racing the
//! post-claim nonce store just sees the zero-nonce fallback.
//!
//! **Decision block.** Decisions flow controller → application through a
//! consumer-owned cache line published under a seqlock: `decision_seq` is
//! a version counter (0 = never published, odd = write in progress, even
//! ≥ 2 = consistent), and the payload is the controller's current
//! [`layout::ShmDecision`] — knob point index plus gain, achieved
//! speedup, and expected QoS loss as raw `f64` bit patterns, so a decision
//! read via shm is bit-identical to the in-process `DecisionView`. The
//! writer ([`ShmConsumer::publish_decision`]) bumps the counter to odd,
//! release-fences, stores the payload, then release-stores the even
//! successor; it also repairs the parity a predecessor that died
//! mid-publish left behind. The reader ([`ShmProducer::read_decision`])
//! is wait-free with [`layout::DECISION_READ_RETRIES`] bounded retries
//! and returns a typed [`layout::DecisionRead`]: `Empty` (never
//! published), `Ready` (a consistent snapshot — both counter reads agree
//! around an acquire fence), or `Torn` (a writer died mid-publish or the
//! line is churning; the caller keeps its last-known-good decision). A
//! torn snapshot is *reported*, never returned as data.
//!
//! **Attach broker handshake.** Unrelated processes (no inherited
//! mapping, no shared tmpfile path) attach by connecting to the daemon's
//! Unix-socket broker and speaking the [`fdpass`] hello protocol; the
//! broker creates a memfd segment, registers the consumer side, and
//! passes the fd over `SCM_RIGHTS`. See `powerdial-control`'s broker
//! module and the `powerdial-client` crate for the two ends.
//!
//! # Running the daemon as a service (deployment note)
//!
//! The deployment shape the paper assumes — one controller process, many
//! instrumented applications — maps to: run one daemon process hosting
//! `PowerDialDaemon` plus its `AttachBroker`, bound to a well-known Unix
//! socket path. Conventions:
//!
//! * **Socket path**: a root daemon serves `/run/powerdial/broker.sock`;
//!   per-user daemons serve `$XDG_RUNTIME_DIR/powerdial/broker.sock`.
//!   Clients take the path from `$POWERDIAL_BROKER` when set. Keep paths
//!   under ~100 bytes — `sun_path` is 108 bytes on Linux.
//! * **Stale sockets**: the broker unlinks a pre-existing socket file at
//!   bind time only after a probe connect fails (a live listener is a
//!   configuration error, not something to steal). Crashed daemons leave
//!   the file behind; restart handles it.
//! * **Permissions**: the socket file's mode gates who can register apps
//!   (connect requires write). Create the parent directory `0755` root /
//!   `0700` per-user and let the socket inherit the umask.
//! * **Liveness**: applications outliving the daemon see its death
//!   through the consumer PID + decision staleness and degrade per their
//!   grace policy (`powerdial-client`'s ladder); a restarted daemon
//!   serves new attaches immediately **and** re-adopts existing segments:
//!   a surviving client sends its mapped fd back in a reattach hello
//!   ([`fdpass::HELLO_FLAG_REATTACH`]), the successor daemon validates it,
//!   claims the consumer role over the dead predecessor
//!   ([`ShmConsumer::adopt`]), and warm-starts its controller from the
//!   segment's warm-start block — no beat pushed across the outage is
//!   lost beyond ring capacity.
//!
//! # Ownership rules
//!
//! * Exactly one producer and one consumer per segment, claimed at attach
//!   time by compare-and-swap of the role's PID field (0 = unclaimed).
//! * `tail` is written only by the producer, `head` only by the consumer;
//!   both are monotone u64 positions masked into the power-of-two slot
//!   array. Publication is release/acquire on those two atomics — the same
//!   Lamport discipline as the in-heap ring, now spanning processes.
//! * Attach validates magic, ABI version, geometry, and mapping size
//!   before the first slot access; every failure is a typed [`ShmError`].
//! * Counters read back from the header are clamped to the validated
//!   geometry, so a scribbling peer can corrupt *values* (garbage beats)
//!   but never induce out-of-bounds access, unbounded allocation, or UB.
//!
//! # Reap protocol
//!
//! The producer PID is never cleared implicitly — a stale producer PID is
//! how abandonment is detected (dropping the handle, clean exit, and
//! SIGKILL all look identical to the controller, which is the point). The
//! controller side periodically probes [`ShmConsumer::producer_state`]
//! (or a detached [`ShmPeerProbe`]): when the producing process no longer
//! exists, the consumer drains whatever the producer managed to publish
//! (beats already in the ring survive the producer's death — they live in
//! the segment, not the process) and then unregisters and unmaps the
//! segment. `PowerDialDaemon::reap_dead` in `powerdial-control` implements
//! exactly this. An orderly producer hand-off uses
//! [`ShmProducer::detach`], which clears the PID instead of leaving it
//! stale; the consumer claim, which carries no liveness protocol, is
//! released automatically when the [`ShmConsumer`] drops.
//!
//! PID recycling — the v1 false-liveness hole where `kill(pid, 0)`
//! against a recycled PID made a dead producer look alive — is closed by
//! the ABI v2 producer start nonce (see "ABI v2 additions" above); the
//! zero-nonce fallback intentionally retains the old conservative
//! behaviour on platforms without `/proc`.
//!
//! # Example (single process; see `examples/shm_external_controller.rs`
//! for the forked two-process deployment)
//!
//! ```
//! use std::sync::Arc;
//! use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
//! use powerdial_heartbeats::channel::BeatSample;
//! use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
//!
//! # fn main() -> Result<(), powerdial_heartbeats::shm::ShmError> {
//! let segment = Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64)?)?);
//! let mut producer = ShmProducer::attach(Arc::clone(&segment))?;
//! let mut consumer = ShmConsumer::attach(Arc::clone(&segment))?;
//!
//! producer
//!     .try_push(BeatSample {
//!         tag: HeartbeatTag(0),
//!         timestamp: Timestamp::from_millis(0),
//!         latency: TimestampDelta::ZERO,
//!     })
//!     .unwrap();
//!
//! let mut scratch = Vec::new();
//! assert_eq!(consumer.drain_into(&mut scratch), 1);
//! assert_eq!(scratch[0].tag, HeartbeatTag(0));
//! # Ok(())
//! # }
//! ```

mod error;
pub mod fdpass;
pub mod layout;
pub mod process;
pub mod segment;
pub mod transport;

pub use error::{PeerRole, PeerState, ShmError};
pub use fdpass::{
    HelloReply, HelloRequest, HelloStatus, HELLO_FLAGS_KNOWN, HELLO_FLAG_REATTACH, HELLO_REPLY_LEN,
    HELLO_REPLY_MAGIC, HELLO_REQUEST_LEN, HELLO_REQUEST_MAGIC,
};
pub use layout::{
    DecisionRead, SegmentGeometry, SegmentHeader, ShmBeatSample, ShmDecision, ShmWarmState,
    WarmRead, DECISION_READ_RETRIES, DEFAULT_SLOT_STRIDE, SEGMENT_ABI_VERSION, SEGMENT_HEADER_LEN,
    SEGMENT_MAGIC,
};
pub use segment::{current_pid, pid_alive, process_start_nonce, BackingKind, Segment};
pub use transport::{ShmConsumer, ShmPeerProbe, ShmProducer};

#[cfg(target_os = "linux")]
pub use fdpass::{recv_exact_with_fd, send_with_fd};
