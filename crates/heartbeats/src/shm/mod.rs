//! Cross-process shared-memory heartbeat transport.
//!
//! The Application Heartbeats interface is explicitly *cross-process*: an
//! instrumented application emits beats into a shared-memory region that an
//! external controller (the PowerDial daemon) attaches to and reads. The
//! in-heap SPSC rings of [`crate::channel`] implement the protocol within
//! one process; this module family backs the same wait-free protocol with
//! an actual shared mapping so the producer and consumer may be different
//! OS processes:
//!
//! * [`layout`] — the stable, versioned `#[repr(C)]` segment ABI: a
//!   [`SegmentHeader`] (magic, ABI version, geometry, producer/consumer
//!   PIDs, cache-line-isolated head/tail atomics) followed by a
//!   fixed-stride slot array of [`ShmBeatSample`] records;
//! * [`segment`] — creating and mapping segments: `memfd_create` + `mmap`
//!   on Linux (`shm-memfd` feature), a tmpfile mapping on any Unix
//!   (attachable by path from unrelated processes), and a feature-gated
//!   in-memory fake (`shm-fake`) so the protocol logic is testable on any
//!   platform;
//! * [`transport`] — [`ShmProducer`] / [`ShmConsumer`]: the wait-free
//!   `try_push` / batched `drain_into` protocol over the mapped atomics,
//!   plus the attach-time handshake and peer liveness;
//! * [`process`] — fork/wait helpers for the cross-process tests and the
//!   `shm_external_controller` example.
//!
//! # Segment layout (ABI version 1)
//!
//! ```text
//! offset 0    magic ("PDSHMBT1"), abi_version, ready,
//!             capacity, slot_stride, record_size,
//!             producer_pid, consumer_pid          ── control block
//! offset 128  head  (consumer-owned cache line)
//! offset 256  tail  (producer-owned cache line)
//! offset 384  slot[0], slot[1], …, slot[capacity-1]   (fixed stride)
//! ```
//!
//! # Ownership rules
//!
//! * Exactly one producer and one consumer per segment, claimed at attach
//!   time by compare-and-swap of the role's PID field (0 = unclaimed).
//! * `tail` is written only by the producer, `head` only by the consumer;
//!   both are monotone u64 positions masked into the power-of-two slot
//!   array. Publication is release/acquire on those two atomics — the same
//!   Lamport discipline as the in-heap ring, now spanning processes.
//! * Attach validates magic, ABI version, geometry, and mapping size
//!   before the first slot access; every failure is a typed [`ShmError`].
//! * Counters read back from the header are clamped to the validated
//!   geometry, so a scribbling peer can corrupt *values* (garbage beats)
//!   but never induce out-of-bounds access, unbounded allocation, or UB.
//!
//! # Reap protocol
//!
//! The producer PID is never cleared implicitly — a stale producer PID is
//! how abandonment is detected (dropping the handle, clean exit, and
//! SIGKILL all look identical to the controller, which is the point). The
//! controller side periodically probes [`ShmConsumer::producer_state`]
//! (or a detached [`ShmPeerProbe`]): when the producing process no longer
//! exists, the consumer drains whatever the producer managed to publish
//! (beats already in the ring survive the producer's death — they live in
//! the segment, not the process) and then unregisters and unmaps the
//! segment. `PowerDialDaemon::reap_dead` in `powerdial-control` implements
//! exactly this. An orderly producer hand-off uses
//! [`ShmProducer::detach`], which clears the PID instead of leaving it
//! stale; the consumer claim, which carries no liveness protocol, is
//! released automatically when the [`ShmConsumer`] drops.
//!
//! **Known limitation — PID recycling**: liveness is `kill(pid, 0)`, so a
//! producer PID recycled to an unrelated long-lived process makes a dead
//! producer look alive and defers the reap indefinitely (the beats stop,
//! but the segment is retained). With Linux's default 4M `pid_max` and
//! 32-bit claim fields this is rare but real; a hardening pass would
//! claim with `pidfd_open` or record the claimant's start time from
//! `/proc/<pid>/stat` and compare at probe time.
//!
//! # Example (single process; see `examples/shm_external_controller.rs`
//! for the forked two-process deployment)
//!
//! ```
//! use std::sync::Arc;
//! use powerdial_heartbeats::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
//! use powerdial_heartbeats::channel::BeatSample;
//! use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
//!
//! # fn main() -> Result<(), powerdial_heartbeats::shm::ShmError> {
//! let segment = Arc::new(Segment::create(SegmentGeometry::for_beat_samples(64)?)?);
//! let mut producer = ShmProducer::attach(Arc::clone(&segment))?;
//! let mut consumer = ShmConsumer::attach(Arc::clone(&segment))?;
//!
//! producer
//!     .try_push(BeatSample {
//!         tag: HeartbeatTag(0),
//!         timestamp: Timestamp::from_millis(0),
//!         latency: TimestampDelta::ZERO,
//!     })
//!     .unwrap();
//!
//! let mut scratch = Vec::new();
//! assert_eq!(consumer.drain_into(&mut scratch), 1);
//! assert_eq!(scratch[0].tag, HeartbeatTag(0));
//! # Ok(())
//! # }
//! ```

mod error;
pub mod layout;
pub mod process;
pub mod segment;
pub mod transport;

pub use error::{PeerRole, PeerState, ShmError};
pub use layout::{
    SegmentGeometry, SegmentHeader, ShmBeatSample, DEFAULT_SLOT_STRIDE, SEGMENT_ABI_VERSION,
    SEGMENT_HEADER_LEN, SEGMENT_MAGIC,
};
pub use segment::{current_pid, pid_alive, BackingKind, Segment};
pub use transport::{ShmConsumer, ShmPeerProbe, ShmProducer};
