//! The wait-free SPSC beat protocol over a mapped segment.
//!
//! [`ShmProducer`] and [`ShmConsumer`] reimplement the in-heap
//! [`crate::channel`] protocol — wait-free `try_push`, batched
//! `drain_into` — with the head/tail atomics and the slot array living in
//! the shared mapping instead of this process's heap, so the two halves
//! may run in *different processes*.
//!
//! # Attach handshake
//!
//! Attaching validates magic, ABI version, geometry, and mapping size
//! ([`SegmentHeader::validate`]), then claims the role by compare-and-swap
//! of the role's PID field from 0 to the caller's PID:
//!
//! * claimed by a **live** process → [`ShmError::RoleClaimed`] (a segment
//!   carries exactly one producer and one consumer);
//! * claimed by a **dead** process → [`ShmError::DeadPeer`] (the segment
//!   is abandoned; reap it, do not adopt it);
//! * the consumer additionally refuses to attach when the *producer* slot
//!   is claimed by a dead process — the stream can never complete.
//!
//! One deliberate exception: [`ShmConsumer::adopt`] — the daemon-crash
//! recovery path — *does* adopt a consumer slot whose claimant is dead,
//! because a SIGKILLed daemon's `Drop` never ran and its stale consumer
//! PID would otherwise wedge the segment forever. Adoption still refuses
//! live claimants and dead producers.
//!
//! The **producer** PID is deliberately not cleared by `Drop`: an
//! application that drops its handle, exits, or crashes leaves its stale
//! PID behind, and that staleness *is* the death signal
//! [`ShmConsumer::producer_state`] and [`ShmPeerProbe::producer_state`]
//! report, which the daemon's reaper acts on; only an explicit
//! [`ShmProducer::detach`] hands the stream to a successor. Since ABI v2
//! the producer claim also records the process **start nonce**
//! (`/proc/<pid>/stat` starttime), so an unrelated process that inherits
//! the dead producer's recycled PID no longer masquerades as a live peer:
//! a live PID whose actual start time disagrees with the recorded nonce
//! reads as [`PeerState::Dead`]. The **consumer** PID carries no liveness
//! protocol — it only enforces single-consumer access — so it *is*
//! released when the consumer drops (daemon unregister/reap), keeping
//! segments re-attachable without restarting the controller.
//!
//! # Decision read-back (ABI v2)
//!
//! Decisions flow the other way through the same segment: the consumer
//! (controller) publishes the current knob decision with
//! [`ShmConsumer::publish_decision`] and the producer (application) reads
//! it back with [`ShmProducer::read_decision`] — seqlock-protected, so
//! reads are wait-free and a torn snapshot is *reported*
//! ([`DecisionRead::Torn`]), never silently returned. See
//! [`crate::shm::layout`] for the protocol.
//!
//! # Safety argument
//!
//! All cross-process synchronization goes through the header atomics; a
//! slot is written only in `[head, head+capacity)` exclusively owned by
//! the producer and read only in `[head, tail)` after the acquiring load
//! of `tail`. Records are plain `u64` triples ([`ShmBeatSample`]), so even
//! a torn or scribbled slot decodes to a harmless garbage *value*, never
//! undefined behaviour. Counters read from the header are clamped before
//! use ([`ShmConsumer::drain_into`]) so a hostile peer cannot induce
//! out-of-bounds access or unbounded allocation. The `shm` test suite
//! (fork, fault-injection, property tests) exercises exactly these claims.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::channel::BeatSample;
use crate::shm::error::{PeerRole, PeerState, ShmError};
use crate::shm::layout::{
    DecisionRead, SegmentHeader, ShmBeatSample, ShmDecision, ShmWarmState, WarmRead,
};
use crate::shm::segment::{current_pid, pid_alive, process_start_nonce, Segment};

/// Validates a segment for *typed* [`ShmBeatSample`] access: on top of the
/// generic header checks, the recorded `record_size` must be exactly this
/// build's sample size — a segment written with a different record revision
/// (header says 16-byte records, we read/write 24) would otherwise pass the
/// generic geometry checks and let the fixed-size slot accesses overlap
/// neighboring slots or run past the mapping.
fn validate_for_beat_samples(
    segment: &Segment,
) -> Result<crate::shm::layout::SegmentGeometry, ShmError> {
    let geometry = segment.validate()?;
    let expected = std::mem::size_of::<ShmBeatSample>() as u64;
    if geometry.record_size() != expected {
        return Err(ShmError::GeometryMismatch {
            field: "record_size",
            found: geometry.record_size(),
            expected,
        });
    }
    Ok(geometry)
}

/// Claims `role`'s PID slot for this process. Contested producer claims
/// are liveness-checked with the start nonce (a recycled-PID claimant is a
/// dead peer, not a live rival); consumer claims carry no nonce.
fn claim(header: &SegmentHeader, role: PeerRole) -> Result<u32, ShmError> {
    let pid = current_pid();
    let slot = match role {
        PeerRole::Producer => &header.producer_pid,
        PeerRole::Consumer => &header.consumer_pid,
    };
    match slot.compare_exchange(0, pid, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => Ok(pid),
        Err(existing) => {
            let alive = match role {
                PeerRole::Producer => producer_state_of(header).is_alive(),
                PeerRole::Consumer => pid_alive(existing),
            };
            if alive {
                Err(ShmError::RoleClaimed {
                    role,
                    pid: existing,
                })
            } else {
                Err(ShmError::DeadPeer {
                    role,
                    pid: existing,
                })
            }
        }
    }
}

/// Claims the *consumer* PID slot for this process, adopting over a dead
/// claimant: the recovery path for a daemon that was SIGKILLed with its
/// `Drop` never running. A free slot is claimed normally; a slot held by a
/// dead process is compare-and-swapped from the observed stale PID to
/// ours; a live claimant still refuses with [`ShmError::RoleClaimed`]
/// (adoption never steals from a running daemon). The CAS from the
/// *observed* stale value makes racing successor daemons safe: exactly one
/// wins, the losers see the winner's live PID.
fn claim_consumer_adopting(header: &SegmentHeader) -> Result<u32, ShmError> {
    let pid = current_pid();
    let slot = &header.consumer_pid;
    loop {
        let existing = slot.load(Ordering::Acquire);
        if existing == 0 {
            match slot.compare_exchange(0, pid, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Ok(pid),
                Err(_) => continue,
            }
        }
        if pid_alive(existing) {
            return Err(ShmError::RoleClaimed {
                role: PeerRole::Consumer,
                pid: existing,
            });
        }
        match slot.compare_exchange(existing, pid, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Ok(pid),
            Err(_) => continue,
        }
    }
}

/// Records between two monotone ring positions, clamped to `[0, capacity]`.
///
/// Positions never legitimately run backwards or diverge by more than the
/// capacity (they are u64s that would take centuries to wrap), so anything
/// outside that envelope is a corrupt or hostile header: a `to` behind
/// `from` reads as empty, a `to` absurdly far ahead reads as a full ring.
/// Either way the result bounds every subsequent slot access and
/// allocation.
#[deny(clippy::arithmetic_side_effects)]
fn clamped_distance(from: u64, to: u64, capacity: u64) -> u64 {
    if to >= from {
        to.wrapping_sub(from).min(capacity)
    } else {
        0
    }
}

/// Liveness of a claimed PID slot.
fn peer_state(slot: &AtomicU32) -> PeerState {
    match slot.load(Ordering::Acquire) {
        0 => PeerState::Absent,
        pid if pid_alive(pid) => PeerState::Alive(pid),
        pid => PeerState::Dead(pid),
    }
}

/// Liveness of the *producer* claim, which — unlike the consumer's — is
/// nonce-checked (ABI v2): a live process at the claimed PID whose actual
/// start time disagrees with the recorded [`SegmentHeader::producer_nonce`]
/// is a recycled PID, so the original producer is dead. A zero nonce (not
/// recorded, pre-nonce attacher, or `/proc` unavailable at claim time)
/// falls back to plain `kill(pid, 0)` liveness.
fn producer_state_of(header: &SegmentHeader) -> PeerState {
    let pid = header.producer_pid.load(Ordering::Acquire);
    if pid == 0 {
        return PeerState::Absent;
    }
    if !pid_alive(pid) {
        return PeerState::Dead(pid);
    }
    let nonce = header.producer_nonce.load(Ordering::Acquire);
    if nonce != 0 {
        if let Some(actual) = process_start_nonce(pid) {
            if actual != nonce {
                return PeerState::Dead(pid);
            }
        }
    }
    PeerState::Alive(pid)
}

/// The producer (application) half of a shared-memory beat segment.
///
/// Mirrors [`crate::channel::Producer`]: `try_push` is wait-free — one
/// compare against a locally cached consumer position, one slot write, one
/// release store — and never blocks, spins, syscalls, or allocates.
pub struct ShmProducer {
    segment: Arc<Segment>,
    pid: u32,
    tail: u64,
    cached_head: u64,
    rejected: u64,
    capacity: u64,
    mask: u64,
}

impl std::fmt::Debug for ShmProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmProducer")
            .field("pid", &self.pid)
            .field("pushed", &self.tail)
            .field("rejected", &self.rejected)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl ShmProducer {
    /// Validates the segment and claims the producer role.
    ///
    /// The producer resumes from the segment's current `tail`, so a
    /// segment that already carried beats (from a detached predecessor)
    /// continues seamlessly.
    ///
    /// # Errors
    ///
    /// Any [`SegmentHeader::validate`] error,
    /// [`ShmError::GeometryMismatch`] for a segment whose record size is
    /// not this build's [`ShmBeatSample`], [`ShmError::RoleClaimed`] when
    /// a live producer is attached, or [`ShmError::DeadPeer`] when a dead
    /// one left its stale PID behind.
    ///
    /// [`SegmentHeader::validate`]: crate::shm::layout::SegmentHeader::validate
    pub fn attach(segment: Arc<Segment>) -> Result<Self, ShmError> {
        let geometry = validate_for_beat_samples(&segment)?;
        let header = segment.header();
        let pid = claim(header, PeerRole::Producer)?;
        // Record this process's start nonce so a recycled PID can never
        // masquerade as us (ABI v2). The slot is guaranteed 0 here: both
        // `initialize` and `detach` zero it before the PID becomes
        // claimable, and death never clears the PID. A probe racing this
        // store sees nonce 0 and falls back to plain `kill` liveness — a
        // conservative *alive*, never a false *dead*.
        header
            .producer_nonce
            .store(process_start_nonce(pid).unwrap_or(0), Ordering::Release);
        let tail = header.tail.load(Ordering::Acquire);
        let cached_head = header.head.load(Ordering::Acquire);
        Ok(ShmProducer {
            pid,
            tail,
            cached_head,
            rejected: 0,
            capacity: geometry.capacity(),
            mask: geometry.mask(),
            segment,
        })
    }

    /// Attempts to push one beat. Wait-free; on a full ring the beat is
    /// rejected (backpressure) and returned.
    ///
    /// # Errors
    ///
    /// Returns the record back when the ring is full.
    #[inline]
    #[deny(clippy::arithmetic_side_effects)]
    pub fn try_push(&mut self, sample: BeatSample) -> Result<(), BeatSample> {
        let header = self.segment.header();
        if self.tail.wrapping_sub(self.cached_head) >= self.capacity {
            self.cached_head = header.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) >= self.capacity {
                self.rejected = self.rejected.saturating_add(1);
                return Err(sample);
            }
        }
        let slot = self.segment.slot_ptr(self.tail & self.mask);
        // SAFETY: the slot pointer is in bounds for `record_size` (== 24)
        // bytes and 8-aligned by the validated geometry; positions in
        // [head, head+capacity) ∋ tail are exclusively producer-owned
        // until the release store below publishes them. The store itself
        // is atomic per word, so even a protocol-violating peer racing on
        // the slot is a torn *value*, not UB.
        unsafe { ShmBeatSample::from_sample(sample).store_to(slot) };
        self.tail = self.tail.wrapping_add(1);
        header.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Total beats successfully pushed through this handle's segment
    /// (the segment's monotone producer position).
    pub fn pushed(&self) -> u64 {
        self.tail
    }

    /// Pushes rejected by this handle because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Beats currently in flight (pushed but not yet drained). Clamped to
    /// `[0, capacity]` even if a corrupt consumer published a nonsense
    /// `head`.
    pub fn in_flight(&self) -> u64 {
        let head = self.segment.header().head.load(Ordering::Acquire);
        clamped_distance(head, self.tail, self.capacity)
    }

    /// The ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Liveness of the consumer side.
    pub fn consumer_state(&self) -> PeerState {
        peer_state(&self.segment.header().consumer_pid)
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    /// Releases the producer role so another same-process (or
    /// fd-inheriting) producer may attach.
    ///
    /// This is deliberately **not** done by `Drop`: the producer PID is
    /// the application-liveness signal — an application that merely drops
    /// its handle (or exits, cleanly or not) must still read as *gone* to
    /// the controller's reaper, exactly like a crash. Only an explicit
    /// `detach` declares "the stream continues under a new producer".
    pub fn detach(self) {
        let header = self.segment.header();
        // Nonce first, then PID: the claim protocol relies on the nonce
        // slot being 0 whenever the PID slot is CAS-able.
        header.producer_nonce.store(0, Ordering::Release);
        let _ =
            header
                .producer_pid
                .compare_exchange(self.pid, 0, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Reads the controller's current decision (ABI v2 decision block).
    ///
    /// Wait-free with bounded retries: a writer caught mid-publish yields
    /// a handful of spins, a writer that *died* mid-publish yields
    /// [`DecisionRead::Torn`] — never a half-written decision presented as
    /// whole.
    pub fn read_decision(&self) -> DecisionRead {
        self.segment.header().read_decision()
    }
}

/// The consumer (controller) half of a shared-memory beat segment.
///
/// Mirrors [`crate::channel::Consumer`]: `drain_into` takes every pending
/// record in one batch into a caller-owned scratch buffer, paying the
/// cross-process synchronization once per actuation quantum.
pub struct ShmConsumer {
    segment: Arc<Segment>,
    pid: u32,
    head: u64,
    capacity: u64,
    mask: u64,
}

impl std::fmt::Debug for ShmConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmConsumer")
            .field("pid", &self.pid)
            .field("drained", &self.head)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl ShmConsumer {
    /// Validates the segment, refuses abandoned streams, and claims the
    /// consumer role.
    ///
    /// # Errors
    ///
    /// Any [`SegmentHeader::validate`] error;
    /// [`ShmError::GeometryMismatch`] for a segment whose record size is
    /// not this build's [`ShmBeatSample`]; [`ShmError::DeadPeer`] when
    /// the producer slot holds a stale PID (attaching to a stream that can
    /// never complete is always a mistake — reap the segment instead);
    /// [`ShmError::RoleClaimed`] / [`ShmError::DeadPeer`] for the consumer
    /// slot itself.
    ///
    /// [`SegmentHeader::validate`]: crate::shm::layout::SegmentHeader::validate
    pub fn attach(segment: Arc<Segment>) -> Result<Self, ShmError> {
        let geometry = validate_for_beat_samples(&segment)?;
        let header = segment.header();
        if let PeerState::Dead(pid) = producer_state_of(header) {
            return Err(ShmError::DeadPeer {
                role: PeerRole::Producer,
                pid,
            });
        }
        let pid = claim(header, PeerRole::Consumer)?;
        let head = header.head.load(Ordering::Acquire);
        Ok(ShmConsumer {
            pid,
            head,
            capacity: geometry.capacity(),
            mask: geometry.mask(),
            segment,
        })
    }

    /// Validates a *foreign* segment (handed back by a surviving client)
    /// and claims the consumer role **over a dead predecessor**: the
    /// recovery path for a daemon that crashed without its `Drop` ever
    /// releasing the claim.
    ///
    /// Differs from [`ShmConsumer::attach`] in exactly one rule: a
    /// consumer slot held by a *dead* PID is adopted (CAS from the
    /// observed stale value to ours) instead of refused. Everything else
    /// is unchanged — a live consumer still refuses with
    /// [`ShmError::RoleClaimed`], a dead *producer* still refuses with
    /// [`ShmError::DeadPeer`] (a stream that can never complete is reaped,
    /// not adopted), and the head resumes from the header so every beat
    /// the client pushed across the outage — up to ring capacity — is
    /// drained by the successor.
    ///
    /// # Errors
    ///
    /// Any [`SegmentHeader::validate`] error,
    /// [`ShmError::GeometryMismatch`], [`ShmError::DeadPeer`] (producer),
    /// or [`ShmError::RoleClaimed`] when the consumer claimant is alive.
    ///
    /// [`SegmentHeader::validate`]: crate::shm::layout::SegmentHeader::validate
    pub fn adopt(segment: Arc<Segment>) -> Result<Self, ShmError> {
        let geometry = validate_for_beat_samples(&segment)?;
        let header = segment.header();
        if let PeerState::Dead(pid) = producer_state_of(header) {
            return Err(ShmError::DeadPeer {
                role: PeerRole::Producer,
                pid,
            });
        }
        let pid = claim_consumer_adopting(header)?;
        let head = header.head.load(Ordering::Acquire);
        Ok(ShmConsumer {
            pid,
            head,
            capacity: geometry.capacity(),
            mask: geometry.mask(),
            segment,
        })
    }

    /// Drains every pending beat into `out` (cleared first), oldest first,
    /// and returns how many were drained.
    ///
    /// `out` grows to at most the ring capacity and is never reallocated
    /// after that — the steady-state drain performs no heap allocation.
    /// The published `tail` is clamped to `[head, head+capacity]` before
    /// use, so a corrupt or hostile producer can at worst deliver garbage
    /// records, never drive reads out of bounds or force unbounded
    /// allocation.
    pub fn drain_into(&mut self, out: &mut Vec<BeatSample>) -> usize {
        self.drain_into_capped(out, usize::MAX)
    }

    /// Drains at most `cap` pending beats into `out` (cleared first),
    /// oldest first, and returns how many were drained; the rest stay in
    /// the ring for the next drain. Same safety and allocation contract
    /// as [`drain_into`](ShmConsumer::drain_into).
    #[deny(clippy::arithmetic_side_effects)]
    pub fn drain_into_capped(&mut self, out: &mut Vec<BeatSample>, cap: usize) -> usize {
        out.clear();
        let header = self.segment.header();
        let tail = header.tail.load(Ordering::Acquire);
        let available = (clamped_distance(self.head, tail, self.capacity) as usize).min(cap);
        if available == 0 {
            return 0;
        }
        out.reserve(available);
        for offset in 0..available as u64 {
            let position = self.head.wrapping_add(offset);
            let slot = self.segment.slot_ptr(position & self.mask);
            // SAFETY: slot pointer in bounds and 8-aligned by validated
            // geometry; positions in [head, tail) were published by the
            // producer's release store of `tail`, which the acquire load
            // above synchronized with. Per-word atomic loads keep a
            // protocol-violating peer a garbage value, not a data race.
            let record = unsafe { ShmBeatSample::load_from(slot) };
            out.push(record.to_sample());
        }
        self.head = self.head.wrapping_add(available as u64);
        header.head.store(self.head, Ordering::Release);
        available
    }

    /// Pops a single pending beat, oldest first.
    #[deny(clippy::arithmetic_side_effects)]
    pub fn try_pop(&mut self) -> Option<BeatSample> {
        let header = self.segment.header();
        let tail = header.tail.load(Ordering::Acquire);
        if clamped_distance(self.head, tail, self.capacity) == 0 {
            return None;
        }
        let slot = self.segment.slot_ptr(self.head & self.mask);
        // SAFETY: as in `drain_into`.
        let record = unsafe { ShmBeatSample::load_from(slot) };
        self.head = self.head.wrapping_add(1);
        header.head.store(self.head, Ordering::Release);
        Some(record.to_sample())
    }

    /// Beats currently pending (clamped to `[0, capacity]`).
    pub fn pending(&self) -> usize {
        let tail = self.segment.header().tail.load(Ordering::Acquire);
        clamped_distance(self.head, tail, self.capacity) as usize
    }

    /// True when no beats are pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total beats drained through this segment (the monotone consumer
    /// position).
    pub fn drained(&self) -> u64 {
        self.head
    }

    /// The ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Liveness of the producer side: the signal the reap protocol acts
    /// on. [`PeerState::Dead`] means the producing process exited (cleanly
    /// or not) without detaching — including the recycled-PID case, which
    /// the ABI v2 start nonce unmasks.
    pub fn producer_state(&self) -> PeerState {
        producer_state_of(self.segment.header())
    }

    /// Publishes a decision for the producer side to read back (ABI v2
    /// decision block, seqlock-protected).
    pub fn publish_decision(&self, decision: ShmDecision) {
        self.segment.header().publish_decision(decision);
    }

    /// Resets the decision block to the never-published state. Part of
    /// the reap protocol: a reaped app's stale decision must not leak to
    /// the segment's next tenant.
    pub fn reset_decision(&self) {
        self.segment.header().reset_decision();
    }

    /// Publishes the controller warm-start state (reserved-region seqlock
    /// block) for a successor daemon to resume from after a crash.
    pub fn publish_warm_state(&self, state: ShmWarmState) {
        self.segment.header().publish_warm_state(state);
    }

    /// Reads the warm-start state a dead predecessor left behind. Wait-free;
    /// [`WarmRead::Torn`] means the predecessor died mid-publish and the
    /// successor starts cold.
    pub fn read_warm_state(&self) -> WarmRead {
        self.segment.header().read_warm_state()
    }

    /// Resets the warm-start block to the never-published state. Part of
    /// the reap protocol, like [`ShmConsumer::reset_decision`]: a reused
    /// segment must not warm-start a fresh app's controller from a dead
    /// app's trajectory.
    pub fn reset_warm_state(&self) {
        self.segment.header().reset_warm_state();
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    /// A cheap handle for liveness/occupancy probes of this segment that
    /// can live apart from the consumer (e.g. in a daemon's registry while
    /// the consumer itself sits in a worker shard).
    pub fn probe(&self) -> ShmPeerProbe {
        ShmPeerProbe {
            segment: Arc::clone(&self.segment),
            capacity: self.capacity,
        }
    }

    /// Releases the consumer role eagerly (equivalent to dropping).
    pub fn detach(self) {}
}

impl Drop for ShmConsumer {
    /// Unlike the producer's, the consumer claim is released on drop: the
    /// consumer PID carries no liveness protocol (nothing reaps on a dead
    /// *consumer*), it only enforces single-consumer access — and the
    /// consumer side lives inside a long-running controller, where
    /// unregister/reap paths drop the handle and the segment must become
    /// re-attachable without restarting the daemon. A *crashed* consumer
    /// process still leaves its stale PID behind (drops never ran), which
    /// the next attacher observes as [`ShmError::DeadPeer`].
    fn drop(&mut self) {
        let _ = self.segment.header().consumer_pid.compare_exchange(
            self.pid,
            0,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }
}

impl crate::channel::BeatTransport for ShmConsumer {
    fn drain_into(&mut self, out: &mut Vec<BeatSample>) -> usize {
        ShmConsumer::drain_into(self, out)
    }

    fn drain_into_capped(&mut self, out: &mut Vec<BeatSample>, cap: usize) -> usize {
        ShmConsumer::drain_into_capped(self, out, cap)
    }

    fn pending(&self) -> usize {
        ShmConsumer::pending(self)
    }

    fn capacity(&self) -> usize {
        ShmConsumer::capacity(self)
    }
}

/// A read-only liveness/occupancy probe of a segment.
#[derive(Debug, Clone)]
pub struct ShmPeerProbe {
    segment: Arc<Segment>,
    capacity: u64,
}

impl ShmPeerProbe {
    /// Liveness of the producer side (nonce-checked, like
    /// [`ShmConsumer::producer_state`]).
    pub fn producer_state(&self) -> PeerState {
        producer_state_of(self.segment.header())
    }

    /// Reads the currently published decision (ABI v2 decision block).
    pub fn read_decision(&self) -> DecisionRead {
        self.segment.header().read_decision()
    }

    /// Reads the currently published warm-start state.
    pub fn read_warm_state(&self) -> WarmRead {
        self.segment.header().read_warm_state()
    }

    /// Liveness of the consumer side.
    pub fn consumer_state(&self) -> PeerState {
        peer_state(&self.segment.header().consumer_pid)
    }

    /// Beats published but not yet drained (clamped to `[0, capacity]`).
    pub fn pending(&self) -> usize {
        let header = self.segment.header();
        let head = header.head.load(Ordering::Acquire);
        let tail = header.tail.load(Ordering::Acquire);
        clamped_distance(head, tail, self.capacity) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HeartbeatTag;
    use crate::shm::layout::SegmentGeometry;
    use crate::time::{Timestamp, TimestampDelta};

    fn segment(capacity: usize) -> Arc<Segment> {
        Arc::new(Segment::create(SegmentGeometry::for_beat_samples(capacity).unwrap()).unwrap())
    }

    fn sample(tag: u64) -> BeatSample {
        BeatSample {
            tag: HeartbeatTag(tag),
            timestamp: Timestamp::from_millis(tag * 40),
            latency: TimestampDelta::from_millis(if tag == 0 { 0 } else { 40 }),
        }
    }

    #[test]
    fn push_then_drain_preserves_order_and_bits() {
        let segment = segment(16);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        for tag in 0..10 {
            tx.try_push(sample(tag)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 10);
        for (tag, record) in out.iter().enumerate() {
            assert_eq!(*record, sample(tag as u64));
        }
        assert_eq!(rx.drain_into(&mut out), 0);
        assert!(rx.is_empty());
    }

    #[test]
    fn capped_drain_leaves_the_rest_queued() {
        let segment = segment(16);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        for tag in 0..10 {
            tx.try_push(sample(tag)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into_capped(&mut out, 3), 3);
        assert_eq!(out.last().unwrap().tag, HeartbeatTag(2));
        assert_eq!(rx.pending(), 7);
        assert_eq!(rx.drain_into_capped(&mut out, usize::MAX), 7);
        assert_eq!(out.first().unwrap().tag, HeartbeatTag(3));
        assert!(rx.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let segment = segment(4);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        for tag in 0..4 {
            tx.try_push(sample(tag)).unwrap();
        }
        assert!(tx.try_push(sample(99)).is_err());
        assert_eq!(tx.rejected(), 1);
        assert_eq!(tx.in_flight(), 4);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 4);
        tx.try_push(sample(4)).unwrap();
        assert_eq!(rx.try_pop().unwrap().tag, HeartbeatTag(4));
    }

    #[test]
    fn wraparound_keeps_fifo_order() {
        let segment = segment(4);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let mut out = Vec::new();
        let mut expected = 0u64;
        for round in 0..100u64 {
            for _ in 0..(1 + round % 4) {
                tx.try_push(sample(tx.pushed())).unwrap();
            }
            rx.drain_into(&mut out);
            for record in &out {
                assert_eq!(record.tag.value(), expected);
                expected += 1;
            }
        }
        assert_eq!(tx.rejected(), 0);
        assert_eq!(rx.drained(), expected);
    }

    #[test]
    fn consumer_claim_released_on_drop_producer_claim_is_not() {
        let segment = segment(8);
        {
            let _rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        }
        // Dropped consumer: role free again (daemon unregister/reap path).
        let rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        {
            let _tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        }
        // Dropped producer: stale PID stays — within this (live) process
        // that reads as a live claim; from another process it would read
        // as dead. Either way, no silent adoption.
        assert!(matches!(
            ShmProducer::attach(Arc::clone(&segment)),
            Err(ShmError::RoleClaimed {
                role: PeerRole::Producer,
                ..
            })
        ));
        assert!(rx.producer_state().is_alive());
    }

    #[test]
    fn roles_are_exclusive_until_detached() {
        let segment = segment(8);
        let tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        assert!(matches!(
            ShmProducer::attach(Arc::clone(&segment)),
            Err(ShmError::RoleClaimed {
                role: PeerRole::Producer,
                ..
            })
        ));
        tx.detach();
        let tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        assert_eq!(tx.pushed(), 0);

        let rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        assert!(matches!(
            ShmConsumer::attach(Arc::clone(&segment)),
            Err(ShmError::RoleClaimed {
                role: PeerRole::Consumer,
                ..
            })
        ));
        assert!(rx.producer_state().is_alive());
        assert!(tx.consumer_state().is_alive());
        rx.detach();
        assert!(tx.consumer_state() == PeerState::Absent);
    }

    #[test]
    fn reattached_producer_resumes_position() {
        let segment = segment(8);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        tx.try_push(sample(0)).unwrap();
        tx.try_push(sample(1)).unwrap();
        tx.detach();
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        assert_eq!(tx.pushed(), 2, "resumes from the segment tail");
        tx.try_push(sample(2)).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 3);
        assert_eq!(out.last().unwrap().tag, HeartbeatTag(2));
    }

    #[test]
    fn probe_reports_occupancy_and_liveness() {
        let segment = segment(8);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        let probe = rx.probe();
        assert_eq!(probe.pending(), 0);
        tx.try_push(sample(0)).unwrap();
        assert_eq!(probe.pending(), 1);
        assert!(probe.producer_state().is_alive());
        assert!(probe.consumer_state().is_alive());
    }

    #[test]
    fn decisions_round_trip_consumer_to_producer() {
        let segment = segment(8);
        let tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        assert_eq!(tx.read_decision(), DecisionRead::Empty);
        let decision = ShmDecision {
            point_idx: 3,
            gain_bits: 2.5f64.to_bits(),
            achieved_speedup_bits: 1.75f64.to_bits(),
            qos_loss_bits: 0.03f64.to_bits(),
        };
        rx.publish_decision(decision);
        assert_eq!(tx.read_decision(), DecisionRead::Ready(decision));
        assert_eq!(rx.probe().read_decision(), DecisionRead::Ready(decision));
        rx.reset_decision();
        assert_eq!(tx.read_decision(), DecisionRead::Empty);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn recycled_pid_reads_dead_through_nonce_mismatch() {
        let segment = segment(8);
        let _tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let header = segment.header();
        let recorded = header.producer_nonce.load(Ordering::Acquire);
        assert_ne!(recorded, 0, "attach must record our start nonce");

        // Simulate PID recycling: the claimed PID is alive (it is ours),
        // but the recorded start time belongs to a *different* incarnation.
        header
            .producer_nonce
            .store(recorded.wrapping_add(1), Ordering::Release);
        let probe = ShmPeerProbe {
            segment: Arc::clone(&segment),
            capacity: 8,
        };
        assert!(matches!(probe.producer_state(), PeerState::Dead(_)));
        // A fresh producer claim sees a dead peer (reap it), not a rival.
        assert!(matches!(
            ShmProducer::attach(Arc::clone(&segment)),
            Err(ShmError::DeadPeer {
                role: PeerRole::Producer,
                ..
            })
        ));
        // And the consumer refuses the abandoned stream outright.
        assert!(matches!(
            ShmConsumer::attach(Arc::clone(&segment)),
            Err(ShmError::DeadPeer {
                role: PeerRole::Producer,
                ..
            })
        ));

        // Nonce 0 (pre-nonce attacher / no /proc): conservative fallback
        // to plain kill-liveness — alive, since the PID really is ours.
        header.producer_nonce.store(0, Ordering::Release);
        assert!(probe.producer_state().is_alive());
    }

    #[test]
    fn detach_clears_nonce_with_pid() {
        let segment = segment(8);
        let tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        tx.detach();
        let header = segment.header();
        assert_eq!(header.producer_nonce.load(Ordering::Acquire), 0);
        assert_eq!(header.producer_pid.load(Ordering::Acquire), 0);
    }

    #[test]
    fn adopt_takes_over_dead_consumer_and_resumes_head() {
        let segment = segment(8);
        let mut tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        tx.try_push(sample(0)).unwrap();
        tx.try_push(sample(1)).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 2);
        // The daemon is SIGKILLed: its Drop never runs. Simulate by
        // forgetting the handle and injecting an impossible (dead) PID.
        std::mem::forget(rx);
        segment
            .header()
            .consumer_pid
            .store(0x7FFF_FF00, Ordering::Release);

        // Plain attach refuses the stale claim; adopt takes it over.
        assert!(matches!(
            ShmConsumer::attach(Arc::clone(&segment)),
            Err(ShmError::DeadPeer {
                role: PeerRole::Consumer,
                ..
            })
        ));
        tx.try_push(sample(2)).unwrap();
        let mut rx = ShmConsumer::adopt(Arc::clone(&segment)).unwrap();
        assert_eq!(rx.drained(), 2, "resumes from the segment head");
        assert_eq!(rx.drain_into(&mut out), 1, "no beat lost, none replayed");
        assert_eq!(out[0].tag, HeartbeatTag(2));
    }

    #[test]
    fn adopt_claims_free_slot_but_refuses_live_claimant_and_dead_producer() {
        let segment = segment(8);
        let _tx = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        // Free slot: adoption degenerates to a normal claim.
        let rx = ShmConsumer::adopt(Arc::clone(&segment)).unwrap();
        // Live claimant (ourselves): never stolen.
        assert!(matches!(
            ShmConsumer::adopt(Arc::clone(&segment)),
            Err(ShmError::RoleClaimed {
                role: PeerRole::Consumer,
                ..
            })
        ));
        drop(rx);
        // Dead producer: the stream can never complete — reap, not adopt.
        segment
            .header()
            .producer_pid
            .store(0x7FFF_FF00, Ordering::Release);
        assert!(matches!(
            ShmConsumer::adopt(Arc::clone(&segment)),
            Err(ShmError::DeadPeer {
                role: PeerRole::Producer,
                ..
            })
        ));
    }

    #[test]
    fn warm_state_round_trips_through_consumer_and_probe() {
        let segment = segment(8);
        let rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        assert_eq!(rx.read_warm_state(), WarmRead::Empty);
        let state = ShmWarmState {
            point_idx: 4,
            speedup_bits: 1.25f64.to_bits(),
            observed_rate_bits: 92.0f64.to_bits(),
            beat_in_quantum: 17,
        };
        rx.publish_warm_state(state);
        assert_eq!(rx.read_warm_state(), WarmRead::Ready(state));
        assert_eq!(rx.probe().read_warm_state(), WarmRead::Ready(state));
        rx.reset_warm_state();
        assert_eq!(rx.read_warm_state(), WarmRead::Empty);
    }

    #[test]
    fn hostile_tail_is_clamped_not_trusted() {
        let segment = segment(4);
        let mut rx = ShmConsumer::attach(Arc::clone(&segment)).unwrap();
        // A scribbling peer publishes an absurd tail: the consumer must
        // clamp to capacity — bounded drain of garbage values, no
        // unbounded allocation, no out-of-bounds access.
        segment.header().tail.store(u64::MAX - 3, Ordering::Release);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 4);
        // And a tail *behind* head reads as empty, not as ~2^64 pending.
        segment.header().tail.store(0, Ordering::Release);
        assert_eq!(rx.pending(), 0);
        assert_eq!(rx.drain_into(&mut out), 0);
    }
}
