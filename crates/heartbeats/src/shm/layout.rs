//! The stable, versioned on-segment layout of the beat transport.
//!
//! Everything in this module is ABI: the header is `#[repr(C)]`, every
//! field has a fixed offset, and a segment written by one build must be
//! readable by any other build with the same [`SEGMENT_ABI_VERSION`]. The
//! layout is:
//!
//! ```text
//! offset 0    ┌────────────────────────────────────────────┐
//!             │ magic, abi_version, ready                  │
//!             │ capacity, slot_stride, record_size         │  control block
//!             │ producer_pid, consumer_pid, producer_nonce │  (cache line 0)
//! offset 128  ├────────────────────────────────────────────┤
//!             │ head (consumer-owned)                      │  cache line 1
//! offset 256  ├────────────────────────────────────────────┤
//!             │ tail (producer-owned)                      │  cache line 2
//! offset 384  ├────────────────────────────────────────────┤
//!             │ decision block (daemon-owned seqlock)      │  cache line 3
//! offset 512  ├────────────────────────────────────────────┤
//!             │ slot 0 │ slot 1 │ …  │ slot capacity-1     │  fixed stride
//!             └────────────────────────────────────────────┘
//! ```
//!
//! `head` and `tail` sit on their own 128-byte blocks so the producer and
//! consumer — in *different processes* — never false-share a cache line.
//! All header fields are atomics: the segment is plain shared memory, so a
//! misbehaving peer can scribble anywhere, and reading a scribbled-on field
//! must be a data-race-free load that yields a garbage *value* (rejected by
//! validation) rather than undefined behaviour.
//!
//! # ABI v2 additions
//!
//! Version 2 extends version 1 with the *bidirectional* control plane:
//!
//! * **`producer_nonce`** (control block) — the producing process's start
//!   nonce (its `/proc/<pid>/stat` start time on Linux), stored by the
//!   producer right after it claims its PID slot. Liveness probes compare
//!   the nonce against the live process's actual start time, so a recycled
//!   PID no longer masquerades as a live peer (`0` = nonce unavailable,
//!   probes fall back to plain `kill(pid, 0)` liveness).
//! * **Decision block** (cache line 3) — the daemon-owned back-channel: the
//!   latest control decision ([`ShmDecision`]: knob point index, gain,
//!   achieved speedup, expected QoS loss) published under a seqlock
//!   ([`SegmentHeader::publish_decision`]). Application-side reads
//!   ([`SegmentHeader::read_decision`]) are wait-free (bounded retries) and
//!   torn-read-free: a reader either gets a bit-consistent snapshot, an
//!   explicit [`DecisionRead::Empty`], or an explicit
//!   [`DecisionRead::Torn`] — never a half-written mixture, even when the
//!   daemon is SIGKILLed between the two halves of a seqlock write.
//!
//! # Reserved-region extension: the warm-start block
//!
//! The tail of cache line 3 (offset 424, formerly all padding) carries the
//! daemon's *warm-start block* ([`ShmWarmState`]): the controller state a
//! successor daemon needs to resume from the last actuation instead of
//! re-converging from cold after a crash — current knob point, integrator
//! (speedup) state, and a window summary. It lives under its own seqlock
//! (`warm_seq`), written by the same single daemon writer as the decision
//! block and read only on the adoption path. Fields that were previously
//! zero padding stay zero until first publish, so the extension is
//! backward- and forward-compatible within ABI v2: old readers ignore the
//! bytes, new readers see [`WarmRead::Empty`] on old segments.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use crate::channel::BeatSample;
use crate::record::HeartbeatTag;
use crate::shm::error::ShmError;
use crate::time::{Timestamp, TimestampDelta};

/// First eight bytes of every beat segment: `b"PDSHMBT1"`, little-endian.
pub const SEGMENT_MAGIC: u64 = u64::from_le_bytes(*b"PDSHMBT1");

/// Version of the segment ABI this build reads and writes. Bump on any
/// change to [`SegmentHeader`] or [`ShmBeatSample`] layout. Version 2
/// added the producer start nonce and the daemon-owned decision block.
pub const SEGMENT_ABI_VERSION: u32 = 2;

/// Byte length of the segment header; slot 0 starts here. Four 128-byte
/// blocks: control fields, consumer-owned `head`, producer-owned `tail`,
/// and the daemon-owned decision block.
pub const SEGMENT_HEADER_LEN: usize = 512;

/// Bounded seqlock read attempts in [`SegmentHeader::read_decision`]. The
/// writer holds the lock for a handful of relaxed stores, so under any
/// live writer two attempts suffice; the bound exists so a writer that
/// died mid-publish degrades to [`DecisionRead::Torn`] instead of a spin.
pub const DECISION_READ_RETRIES: usize = 8;

/// Default distance in bytes between consecutive slots. Must be at least
/// `size_of::<ShmBeatSample>()` (24); 32 keeps slots 8-aligned with room
/// for one more field before the stride (and hence the ABI) has to change.
pub const DEFAULT_SLOT_STRIDE: usize = 32;

/// Largest accepted slot count (2³⁰ slots ≈ 32 GiB at the default stride);
/// anything bigger is a corrupt header, not a real ring.
pub const MAX_SLOT_CAPACITY: u64 = 1 << 30;

/// Header `ready` value meaning the creator finished initialization.
pub const SEGMENT_READY: u32 = 1;

/// One beat record as stored in a segment slot: the `#[repr(C)]` wire form
/// of [`BeatSample`], all fields explicit `u64` nanosecond counts so the
/// layout is independent of this crate's internal newtypes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmBeatSample {
    /// Sequence number of the heartbeat (0 for the first beat).
    pub tag: u64,
    /// Emission time, nanoseconds since the producer's epoch.
    pub timestamp_nanos: u64,
    /// Time since the previous heartbeat, nanoseconds.
    pub latency_nanos: u64,
}

impl ShmBeatSample {
    /// Encodes an in-memory beat sample into its wire form.
    pub fn from_sample(sample: BeatSample) -> Self {
        ShmBeatSample {
            tag: sample.tag.value(),
            timestamp_nanos: sample.timestamp.as_nanos(),
            latency_nanos: sample.latency.as_nanos(),
        }
    }

    /// Decodes the wire form back into an in-memory beat sample.
    pub fn to_sample(self) -> BeatSample {
        BeatSample {
            tag: HeartbeatTag(self.tag),
            timestamp: Timestamp::from_nanos(self.timestamp_nanos),
            latency: TimestampDelta::from_nanos(self.latency_nanos),
        }
    }

    /// Stores this record into a slot as three relaxed atomic words.
    ///
    /// Slot bytes live in memory another *process* can touch at any time;
    /// plain stores would make a protocol-violating peer a formal data
    /// race (UB). Relaxed atomics compile to the same plain moves on
    /// x86-64/AArch64 but make concurrent access yield garbage *values*
    /// instead — ordering against the peer comes from the release store
    /// of `tail`, not from these.
    ///
    /// # Safety
    ///
    /// `slot` must be valid for 24 bytes of writes and 8-byte aligned
    /// (guaranteed by a validated [`SegmentGeometry`]).
    pub unsafe fn store_to(self, slot: *mut u8) {
        debug_assert_eq!(slot as usize % 8, 0);
        let words = slot as *mut AtomicU64;
        // SAFETY: caller guarantees 24 valid, aligned bytes; AtomicU64 is
        // layout-compatible with u64 and never uninhabited on zeroed or
        // garbage memory.
        unsafe {
            (*words).store(self.tag, Ordering::Relaxed);
            (*words.add(1)).store(self.timestamp_nanos, Ordering::Relaxed);
            (*words.add(2)).store(self.latency_nanos, Ordering::Relaxed);
        }
    }

    /// Loads a record from a slot as three relaxed atomic words (see
    /// [`ShmBeatSample::store_to`] for why not a plain read).
    ///
    /// # Safety
    ///
    /// `slot` must be valid for 24 bytes of reads and 8-byte aligned.
    pub unsafe fn load_from(slot: *const u8) -> Self {
        debug_assert_eq!(slot as usize % 8, 0);
        let words = slot as *const AtomicU64;
        // SAFETY: as in `store_to`.
        unsafe {
            ShmBeatSample {
                tag: (*words).load(Ordering::Relaxed),
                timestamp_nanos: (*words.add(1)).load(Ordering::Relaxed),
                latency_nanos: (*words.add(2)).load(Ordering::Relaxed),
            }
        }
    }
}

const _: () = assert!(std::mem::size_of::<ShmBeatSample>() == 24);
const _: () = assert!(std::mem::align_of::<ShmBeatSample>() == 8);

/// One control decision as published in the segment's decision block: the
/// daemon→application half of the bidirectional control plane. All floats
/// travel as raw bit patterns so a decision read back through shared
/// memory is *bit-identical* to the daemon's in-process
/// `DecisionView` — the equivalence the `daemon_shm_equivalence` suite
/// pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmDecision {
    /// Dense index of the decided setting in the application's knob table.
    pub point_idx: u32,
    /// Bit pattern of the decided knob gain (instantaneous speedup, f64).
    pub gain_bits: u64,
    /// Bit pattern of the quantum's achieved (time-averaged) speedup (f64).
    pub achieved_speedup_bits: u64,
    /// Bit pattern of the quantum's expected QoS loss (f64).
    pub qos_loss_bits: u64,
}

impl ShmDecision {
    /// The decided knob gain.
    pub fn gain(&self) -> f64 {
        f64::from_bits(self.gain_bits)
    }

    /// The achieved (time-averaged) speedup of the planned quantum.
    pub fn achieved_speedup(&self) -> f64 {
        f64::from_bits(self.achieved_speedup_bits)
    }

    /// The expected QoS loss of the planned quantum.
    pub fn expected_qos_loss(&self) -> f64 {
        f64::from_bits(self.qos_loss_bits)
    }
}

/// The controller warm-start state as published in the segment's reserved
/// region (tail of cache line 3): everything a successor daemon needs to
/// resume control from the last actuation after its predecessor crashed.
/// Floats travel as raw bit patterns so a warm-started controller is
/// *bit-identical* to the dead one at the instant of the last publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmWarmState {
    /// Dense knob-table index of the last actuated setting.
    pub point_idx: u32,
    /// Bit pattern of the controller's integrator state — the commanded
    /// speedup carried across updates (f64).
    pub speedup_bits: u64,
    /// Bit pattern of the last observed window heart rate fed to the
    /// controller (f64); the successor's first update sees the same input
    /// its predecessor would have.
    pub observed_rate_bits: u64,
    /// Beat position within the current control quantum at publish time.
    pub beat_in_quantum: u64,
}

impl ShmWarmState {
    /// The controller's integrator (commanded speedup) state.
    pub fn speedup(&self) -> f64 {
        f64::from_bits(self.speedup_bits)
    }

    /// The last observed window heart rate.
    pub fn observed_rate(&self) -> f64 {
        f64::from_bits(self.observed_rate_bits)
    }
}

/// Outcome of one wait-free warm-start-block read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmRead {
    /// No warm state has ever been published (or the block was reset);
    /// the successor starts the controller cold.
    Empty,
    /// A bit-consistent snapshot of the latest published warm state.
    Ready(ShmWarmState),
    /// Every bounded retry raced a write in progress — the predecessor
    /// died between the halves of a seqlock write. The successor starts
    /// cold; the first publish repairs the parity.
    Torn,
}

/// Outcome of one wait-free decision-block read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionRead {
    /// No decision has ever been published (or the block was reset).
    Empty,
    /// A bit-consistent snapshot of the latest published decision.
    Ready(ShmDecision),
    /// Every bounded retry raced a write in progress. Either the daemon is
    /// publishing right now (the next read will succeed) or it died between
    /// the two halves of a seqlock write (the block is permanently torn
    /// until reset). Callers keep their last known-good decision.
    Torn,
}

/// The geometry of a segment's slot array: how many slots, how far apart,
/// and how many bytes of each slot carry a record.
///
/// A geometry is only constructible in validated form; every invariant the
/// property tests check ([`SegmentGeometry::validate`]) holds for every
/// value accepted by [`SegmentGeometry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGeometry {
    capacity: u64,
    slot_stride: u64,
    record_size: u64,
}

impl SegmentGeometry {
    /// A validated geometry with `capacity` slots of `record_size` useful
    /// bytes each, `slot_stride` bytes apart.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] unless all invariants hold:
    /// power-of-two `capacity` within [`MAX_SLOT_CAPACITY`], nonzero
    /// `record_size`, 8-byte-multiple `slot_stride` that covers the record,
    /// and a total length that fits in `usize`.
    pub fn new(capacity: u64, slot_stride: u64, record_size: u64) -> Result<Self, ShmError> {
        let geometry = SegmentGeometry {
            capacity,
            slot_stride,
            record_size,
        };
        geometry.validate()?;
        Ok(geometry)
    }

    /// The geometry used for [`BeatSample`] transport: `capacity` rounded
    /// up to a power of two, the default stride, and this build's record
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] when `capacity` is zero or rounds
    /// beyond [`MAX_SLOT_CAPACITY`].
    pub fn for_beat_samples(capacity: usize) -> Result<Self, ShmError> {
        if capacity == 0 {
            return Err(ShmError::BadGeometry {
                field: "capacity",
                found: 0,
            });
        }
        SegmentGeometry::new(
            capacity.next_power_of_two() as u64,
            DEFAULT_SLOT_STRIDE as u64,
            std::mem::size_of::<ShmBeatSample>() as u64,
        )
    }

    /// Re-checks every geometry invariant (used when the fields come from
    /// an untrusted segment header rather than [`SegmentGeometry::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ShmError> {
        if self.capacity == 0 || !self.capacity.is_power_of_two() {
            return Err(ShmError::BadGeometry {
                field: "capacity",
                found: self.capacity,
            });
        }
        if self.capacity > MAX_SLOT_CAPACITY {
            return Err(ShmError::BadGeometry {
                field: "capacity",
                found: self.capacity,
            });
        }
        if self.record_size == 0 {
            return Err(ShmError::BadGeometry {
                field: "record_size",
                found: 0,
            });
        }
        if self.slot_stride < self.record_size || !self.slot_stride.is_multiple_of(8) {
            return Err(ShmError::BadGeometry {
                field: "slot_stride",
                found: self.slot_stride,
            });
        }
        let slots_len = self.capacity.checked_mul(self.slot_stride);
        let total = slots_len.and_then(|len| len.checked_add(SEGMENT_HEADER_LEN as u64));
        match total {
            Some(total) if usize::try_from(total).is_ok() => Ok(()),
            _ => Err(ShmError::BadGeometry {
                field: "total_len",
                found: u64::MAX,
            }),
        }
    }

    /// Number of slots (always a power of two).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Distance in bytes between consecutive slot starts.
    pub fn slot_stride(&self) -> u64 {
        self.slot_stride
    }

    /// Useful bytes at the start of each slot.
    pub fn record_size(&self) -> u64 {
        self.record_size
    }

    /// Bitmask turning a monotone position into a slot index.
    pub fn mask(&self) -> u64 {
        self.capacity - 1
    }

    /// Byte offset of slot `index` from the start of the segment.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `index` is out of range; callers mask first.
    pub fn slot_offset(&self, index: u64) -> usize {
        debug_assert!(index < self.capacity, "slot index out of range");
        SEGMENT_HEADER_LEN + (index * self.slot_stride) as usize
    }

    /// Total byte length of a segment with this geometry.
    pub fn total_len(&self) -> usize {
        SEGMENT_HEADER_LEN + (self.capacity * self.slot_stride) as usize
    }
}

/// The raw header at offset 0 of every segment.
///
/// All fields are atomics because the header lives in memory shared with
/// another *process*: loads from fields a hostile or crashed peer scribbled
/// on must still be well-defined. The fields are public so tests (and
/// diagnostic tools) can inspect and fault-inject a mapped header directly;
/// everything outside the test suite goes through the validated
/// [`crate::shm::ShmProducer`] / [`crate::shm::ShmConsumer`] handshake
/// instead of touching these.
#[repr(C)]
#[derive(Debug)]
pub struct SegmentHeader {
    /// [`SEGMENT_MAGIC`], written last during initialization.
    pub magic: AtomicU64,
    /// [`SEGMENT_ABI_VERSION`] of the creator.
    pub abi_version: AtomicU32,
    /// [`SEGMENT_READY`] once the creator finished writing the header.
    pub ready: AtomicU32,
    /// Slot count (power of two).
    pub capacity: AtomicU64,
    /// Bytes between consecutive slots.
    pub slot_stride: AtomicU64,
    /// Useful bytes per slot (`size_of::<ShmBeatSample>()` for beat
    /// segments).
    pub record_size: AtomicU64,
    /// PID of the attached producer (0 = unclaimed). Claimed by
    /// compare-and-swap; never cleared by process death, which is exactly
    /// how a dead peer is detected.
    pub producer_pid: AtomicU32,
    /// PID of the attached consumer (0 = unclaimed).
    pub consumer_pid: AtomicU32,
    /// Start nonce of the producing process (ABI v2): its
    /// `/proc/<pid>/stat` start time, written by the producer right after
    /// its PID claim, cleared by [`crate::shm::ShmProducer::detach`].
    /// `0` = unavailable; liveness probes then fall back to plain
    /// `kill(pid, 0)`. A live process at `producer_pid` whose actual start
    /// time disagrees with this nonce is a *recycled* PID: the original
    /// producer is dead.
    pub producer_nonce: AtomicU64,
    _pad0: [u8; 72],
    /// Next position the consumer will read. Consumer-owned: written with
    /// `Release` after the freed slots were read, loaded by the producer
    /// with `Acquire` before overwriting them.
    pub head: AtomicU64,
    _pad1: [u8; 120],
    /// Next position the producer will write. Producer-owned: written with
    /// `Release` after the slot bytes are in place, loaded by the consumer
    /// with `Acquire` before reading them.
    pub tail: AtomicU64,
    _pad2: [u8; 120],
    /// Seqlock version counter of the decision block (ABI v2). `0` = no
    /// decision ever published; odd = a write is in progress. Written only
    /// by the daemon ([`SegmentHeader::publish_decision`]); read with
    /// bounded retries by the application
    /// ([`SegmentHeader::read_decision`]).
    pub decision_seq: AtomicU64,
    /// Dense knob-table index of the latest decision (low 32 bits used).
    pub decision_point: AtomicU64,
    /// Bit pattern of the latest decision's knob gain (f64).
    pub decision_gain_bits: AtomicU64,
    /// Bit pattern of the latest quantum's achieved speedup (f64).
    pub decision_speedup_bits: AtomicU64,
    /// Bit pattern of the latest quantum's expected QoS loss (f64).
    pub decision_qos_bits: AtomicU64,
    /// Seqlock version counter of the warm-start block (reserved-region
    /// extension). `0` = never published; odd = write in progress. Written
    /// only by the daemon ([`SegmentHeader::publish_warm_state`]); read by
    /// a successor daemon on the adoption path
    /// ([`SegmentHeader::read_warm_state`]).
    pub warm_seq: AtomicU64,
    /// Dense knob-table index of the last actuation (low 32 bits used).
    pub warm_point: AtomicU64,
    /// Bit pattern of the controller integrator (speedup) state (f64).
    pub warm_speedup_bits: AtomicU64,
    /// Bit pattern of the last observed window heart rate (f64).
    pub warm_rate_bits: AtomicU64,
    /// Beat position within the control quantum at publish time.
    pub warm_beat_in_quantum: AtomicU64,
    _pad3: [u8; 48],
}

const _: () = assert!(std::mem::size_of::<SegmentHeader>() == SEGMENT_HEADER_LEN);
const _: () = assert!(std::mem::align_of::<SegmentHeader>() == 8);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, producer_nonce) == 48);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, head) == 128);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, tail) == 256);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, decision_seq) == 384);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, warm_seq) == 424);

impl SegmentHeader {
    /// Writes a fresh header for `geometry` into zeroed segment memory.
    /// The magic and ready flag are stored last (release), so a concurrent
    /// attacher either sees an unready header or a fully initialized one.
    pub(crate) fn initialize(&self, geometry: SegmentGeometry) {
        self.abi_version
            .store(SEGMENT_ABI_VERSION, Ordering::Relaxed);
        self.capacity.store(geometry.capacity(), Ordering::Relaxed);
        self.slot_stride
            .store(geometry.slot_stride(), Ordering::Relaxed);
        self.record_size
            .store(geometry.record_size(), Ordering::Relaxed);
        self.producer_pid.store(0, Ordering::Relaxed);
        self.consumer_pid.store(0, Ordering::Relaxed);
        self.producer_nonce.store(0, Ordering::Relaxed);
        self.head.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
        self.decision_seq.store(0, Ordering::Relaxed);
        self.decision_point.store(0, Ordering::Relaxed);
        self.decision_gain_bits.store(0, Ordering::Relaxed);
        self.decision_speedup_bits.store(0, Ordering::Relaxed);
        self.decision_qos_bits.store(0, Ordering::Relaxed);
        self.warm_seq.store(0, Ordering::Relaxed);
        self.warm_point.store(0, Ordering::Relaxed);
        self.warm_speedup_bits.store(0, Ordering::Relaxed);
        self.warm_rate_bits.store(0, Ordering::Relaxed);
        self.warm_beat_in_quantum.store(0, Ordering::Relaxed);
        self.magic.store(SEGMENT_MAGIC, Ordering::Relaxed);
        self.ready.store(SEGMENT_READY, Ordering::Release);
    }

    /// Publishes one decision into the decision block under the seqlock.
    ///
    /// Single-writer by protocol (the attached consumer/daemon); the
    /// version counter goes odd, the payload words are stored, the counter
    /// goes even. A writer that inherits an odd counter (its predecessor
    /// died mid-publish) transparently repairs it: the in-progress parity
    /// is kept odd for the duration of this write and lands on even.
    pub fn publish_decision(&self, decision: ShmDecision) {
        let seq = self.decision_seq.load(Ordering::Relaxed);
        // Next odd value above `seq`: seq+1 when even, seq+2 when a dead
        // predecessor left it odd.
        let writing = seq + 1 + (seq & 1);
        self.decision_seq.store(writing, Ordering::Relaxed);
        // Readers that loaded `writing` (odd) discard their snapshot, so
        // these relaxed stores can never be *observed* torn; the fence
        // keeps them from sinking above the odd store.
        fence(Ordering::Release);
        self.decision_point
            .store(u64::from(decision.point_idx), Ordering::Relaxed);
        self.decision_gain_bits
            .store(decision.gain_bits, Ordering::Relaxed);
        self.decision_speedup_bits
            .store(decision.achieved_speedup_bits, Ordering::Relaxed);
        self.decision_qos_bits
            .store(decision.qos_loss_bits, Ordering::Relaxed);
        self.decision_seq.store(writing + 1, Ordering::Release);
    }

    /// Clears the decision block back to the never-published state (the
    /// reap path: a reaped application's segment must not leak its last
    /// decision into a future reuse of the mapping).
    ///
    /// The clear runs under the same seqlock discipline as a publish, so a
    /// concurrent reader races into [`DecisionRead::Empty`] or a retry —
    /// never a half-cleared snapshot.
    pub fn reset_decision(&self) {
        let seq = self.decision_seq.load(Ordering::Relaxed);
        let writing = seq + 1 + (seq & 1);
        self.decision_seq.store(writing, Ordering::Relaxed);
        fence(Ordering::Release);
        self.decision_point.store(0, Ordering::Relaxed);
        self.decision_gain_bits.store(0, Ordering::Relaxed);
        self.decision_speedup_bits.store(0, Ordering::Relaxed);
        self.decision_qos_bits.store(0, Ordering::Relaxed);
        self.decision_seq.store(0, Ordering::Release);
    }

    /// Reads the decision block wait-free: at most
    /// [`DECISION_READ_RETRIES`] seqlock attempts, each one a pair of
    /// version loads around relaxed payload loads.
    ///
    /// Returns [`DecisionRead::Ready`] with a snapshot whose bits are
    /// exactly what some single [`SegmentHeader::publish_decision`] wrote,
    /// [`DecisionRead::Empty`] when nothing was ever published, or
    /// [`DecisionRead::Torn`] when every attempt raced an in-progress (or
    /// abandoned mid-write) publication. A torn result is a *signal*, not
    /// data: callers keep their last known-good decision.
    pub fn read_decision(&self) -> DecisionRead {
        for _ in 0..DECISION_READ_RETRIES {
            let before = self.decision_seq.load(Ordering::Acquire);
            if before == 0 {
                return DecisionRead::Empty;
            }
            if before & 1 == 1 {
                // Write in progress; try again.
                std::hint::spin_loop();
                continue;
            }
            let decision = ShmDecision {
                point_idx: self.decision_point.load(Ordering::Relaxed) as u32,
                gain_bits: self.decision_gain_bits.load(Ordering::Relaxed),
                achieved_speedup_bits: self.decision_speedup_bits.load(Ordering::Relaxed),
                qos_loss_bits: self.decision_qos_bits.load(Ordering::Relaxed),
            };
            // Order the payload loads before the confirming version load.
            fence(Ordering::Acquire);
            let after = self.decision_seq.load(Ordering::Relaxed);
            if before == after {
                return DecisionRead::Ready(decision);
            }
        }
        DecisionRead::Torn
    }

    /// Publishes the controller warm-start state under its seqlock.
    ///
    /// Same single-writer discipline and dead-predecessor parity repair as
    /// [`SegmentHeader::publish_decision`]; the writer is the attached
    /// daemon, once per actuation.
    pub fn publish_warm_state(&self, state: ShmWarmState) {
        let seq = self.warm_seq.load(Ordering::Relaxed);
        let writing = seq + 1 + (seq & 1);
        self.warm_seq.store(writing, Ordering::Relaxed);
        fence(Ordering::Release);
        self.warm_point
            .store(u64::from(state.point_idx), Ordering::Relaxed);
        self.warm_speedup_bits
            .store(state.speedup_bits, Ordering::Relaxed);
        self.warm_rate_bits
            .store(state.observed_rate_bits, Ordering::Relaxed);
        self.warm_beat_in_quantum
            .store(state.beat_in_quantum, Ordering::Relaxed);
        self.warm_seq.store(writing + 1, Ordering::Release);
    }

    /// Clears the warm-start block back to the never-published state (the
    /// reap path: a reused segment must not warm-start a fresh app's
    /// controller from a dead app's trajectory).
    pub fn reset_warm_state(&self) {
        let seq = self.warm_seq.load(Ordering::Relaxed);
        let writing = seq + 1 + (seq & 1);
        self.warm_seq.store(writing, Ordering::Relaxed);
        fence(Ordering::Release);
        self.warm_point.store(0, Ordering::Relaxed);
        self.warm_speedup_bits.store(0, Ordering::Relaxed);
        self.warm_rate_bits.store(0, Ordering::Relaxed);
        self.warm_beat_in_quantum.store(0, Ordering::Relaxed);
        self.warm_seq.store(0, Ordering::Release);
    }

    /// Reads the warm-start block wait-free (bounded seqlock retries,
    /// exactly like [`SegmentHeader::read_decision`]). A torn result means
    /// the predecessor died mid-publish; the successor starts cold.
    pub fn read_warm_state(&self) -> WarmRead {
        for _ in 0..DECISION_READ_RETRIES {
            let before = self.warm_seq.load(Ordering::Acquire);
            if before == 0 {
                return WarmRead::Empty;
            }
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let state = ShmWarmState {
                point_idx: self.warm_point.load(Ordering::Relaxed) as u32,
                speedup_bits: self.warm_speedup_bits.load(Ordering::Relaxed),
                observed_rate_bits: self.warm_rate_bits.load(Ordering::Relaxed),
                beat_in_quantum: self.warm_beat_in_quantum.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            let after = self.warm_seq.load(Ordering::Relaxed);
            if before == after {
                return WarmRead::Ready(state);
            }
        }
        WarmRead::Torn
    }

    /// Validates magic, version, readiness, and geometry against a mapping
    /// of `mapped_len` bytes, returning the (validated) geometry.
    ///
    /// # Errors
    ///
    /// Returns the [`ShmError`] naming the first check that failed; a
    /// header that passes is safe to run the transport protocol against
    /// (every slot access derived from it stays inside the mapping).
    pub fn validate(&self, mapped_len: usize) -> Result<SegmentGeometry, ShmError> {
        if self.ready.load(Ordering::Acquire) != SEGMENT_READY {
            return Err(ShmError::NotInitialized);
        }
        let magic = self.magic.load(Ordering::Relaxed);
        if magic != SEGMENT_MAGIC {
            return Err(ShmError::BadMagic { found: magic });
        }
        let version = self.abi_version.load(Ordering::Relaxed);
        if version != SEGMENT_ABI_VERSION {
            return Err(ShmError::AbiVersionMismatch {
                found: version,
                expected: SEGMENT_ABI_VERSION,
            });
        }
        let geometry = SegmentGeometry {
            capacity: self.capacity.load(Ordering::Relaxed),
            slot_stride: self.slot_stride.load(Ordering::Relaxed),
            record_size: self.record_size.load(Ordering::Relaxed),
        };
        geometry.validate()?;
        let required = geometry.total_len() as u64;
        if required > mapped_len as u64 {
            return Err(ShmError::TruncatedSegment {
                expected: required,
                found: mapped_len as u64,
            });
        }
        Ok(geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_sample_round_trips_bit_identically() {
        let sample = BeatSample {
            tag: HeartbeatTag(7),
            timestamp: Timestamp::from_nanos(123_456_789),
            latency: TimestampDelta::from_nanos(33_000_001),
        };
        let wire = ShmBeatSample::from_sample(sample);
        assert_eq!(wire.tag, 7);
        assert_eq!(wire.timestamp_nanos, 123_456_789);
        assert_eq!(wire.latency_nanos, 33_000_001);
        assert_eq!(wire.to_sample(), sample);
    }

    #[test]
    fn geometry_accepts_only_pow2_capacities() {
        assert!(SegmentGeometry::new(8, 32, 24).is_ok());
        assert!(matches!(
            SegmentGeometry::new(0, 32, 24),
            Err(ShmError::BadGeometry {
                field: "capacity",
                ..
            })
        ));
        assert!(matches!(
            SegmentGeometry::new(3, 32, 24),
            Err(ShmError::BadGeometry {
                field: "capacity",
                ..
            })
        ));
        assert!(matches!(
            SegmentGeometry::new(MAX_SLOT_CAPACITY * 2, 32, 24),
            Err(ShmError::BadGeometry {
                field: "capacity",
                ..
            })
        ));
    }

    #[test]
    fn geometry_rejects_bad_strides() {
        // Stride smaller than the record.
        assert!(matches!(
            SegmentGeometry::new(8, 16, 24),
            Err(ShmError::BadGeometry {
                field: "slot_stride",
                ..
            })
        ));
        // Misaligned stride.
        assert!(matches!(
            SegmentGeometry::new(8, 30, 24),
            Err(ShmError::BadGeometry {
                field: "slot_stride",
                ..
            })
        ));
        // Zero record.
        assert!(matches!(
            SegmentGeometry::new(8, 32, 0),
            Err(ShmError::BadGeometry {
                field: "record_size",
                ..
            })
        ));
    }

    #[test]
    fn for_beat_samples_rounds_to_pow2() {
        let geometry = SegmentGeometry::for_beat_samples(5).unwrap();
        assert_eq!(geometry.capacity(), 8);
        assert_eq!(geometry.slot_stride(), DEFAULT_SLOT_STRIDE as u64);
        assert_eq!(
            geometry.record_size(),
            std::mem::size_of::<ShmBeatSample>() as u64
        );
        assert_eq!(geometry.total_len(), SEGMENT_HEADER_LEN + 8 * 32);
        assert!(SegmentGeometry::for_beat_samples(0).is_err());
    }

    #[test]
    fn slot_offsets_do_not_overlap_header() {
        let geometry = SegmentGeometry::for_beat_samples(16).unwrap();
        assert!(geometry.slot_offset(0) >= SEGMENT_HEADER_LEN);
        for index in 1..geometry.capacity() {
            let previous = geometry.slot_offset(index - 1);
            let current = geometry.slot_offset(index);
            assert!(current >= previous + geometry.record_size() as usize);
        }
        let last = geometry.slot_offset(geometry.capacity() - 1);
        assert!(last + geometry.record_size() as usize <= geometry.total_len());
    }

    #[test]
    fn decision_block_publish_read_reset_round_trips() {
        let header: SegmentHeader = unsafe { std::mem::zeroed() };
        header.initialize(SegmentGeometry::for_beat_samples(8).unwrap());
        assert_eq!(header.read_decision(), DecisionRead::Empty);

        let decision = ShmDecision {
            point_idx: 3,
            gain_bits: 2.5f64.to_bits(),
            achieved_speedup_bits: 1.75f64.to_bits(),
            qos_loss_bits: 0.03f64.to_bits(),
        };
        header.publish_decision(decision);
        assert_eq!(header.read_decision(), DecisionRead::Ready(decision));
        assert_eq!(header.decision_seq.load(Ordering::Relaxed), 2);

        // NaN payloads survive bit-exactly (bits, not float compare).
        let nan = ShmDecision {
            point_idx: u32::MAX,
            gain_bits: f64::NAN.to_bits(),
            achieved_speedup_bits: f64::INFINITY.to_bits(),
            qos_loss_bits: (-0.0f64).to_bits(),
        };
        header.publish_decision(nan);
        assert_eq!(header.read_decision(), DecisionRead::Ready(nan));
        assert_eq!(nan.gain().to_bits(), f64::NAN.to_bits());
        assert_eq!(nan.achieved_speedup(), f64::INFINITY);
        assert_eq!(nan.expected_qos_loss().to_bits(), (-0.0f64).to_bits());

        header.reset_decision();
        assert_eq!(header.read_decision(), DecisionRead::Empty);
    }

    #[test]
    fn decision_read_reports_torn_when_writer_died_mid_publish() {
        let header: SegmentHeader = unsafe { std::mem::zeroed() };
        header.initialize(SegmentGeometry::for_beat_samples(8).unwrap());
        header.publish_decision(ShmDecision {
            point_idx: 1,
            gain_bits: 1.5f64.to_bits(),
            achieved_speedup_bits: 1.5f64.to_bits(),
            qos_loss_bits: 0.0f64.to_bits(),
        });
        // Simulate a daemon SIGKILLed between the seqlock write halves:
        // version odd, payload half-scribbled.
        header.decision_seq.store(3, Ordering::Release);
        header.decision_gain_bits.store(0xdead, Ordering::Relaxed);
        assert_eq!(header.read_decision(), DecisionRead::Torn);
        // A successor writer repairs the parity: the next publish lands on
        // an even version and reads go through again.
        let repaired = ShmDecision {
            point_idx: 2,
            gain_bits: 2.0f64.to_bits(),
            achieved_speedup_bits: 2.0f64.to_bits(),
            qos_loss_bits: 0.01f64.to_bits(),
        };
        header.publish_decision(repaired);
        assert_eq!(header.decision_seq.load(Ordering::Relaxed) & 1, 0);
        assert_eq!(header.read_decision(), DecisionRead::Ready(repaired));
    }

    #[test]
    fn warm_state_publish_read_reset_round_trips() {
        let header: SegmentHeader = unsafe { std::mem::zeroed() };
        header.initialize(SegmentGeometry::for_beat_samples(8).unwrap());
        assert_eq!(header.read_warm_state(), WarmRead::Empty);

        let state = ShmWarmState {
            point_idx: 5,
            speedup_bits: 1.9f64.to_bits(),
            observed_rate_bits: 87.5f64.to_bits(),
            beat_in_quantum: 42,
        };
        header.publish_warm_state(state);
        assert_eq!(header.read_warm_state(), WarmRead::Ready(state));
        assert_eq!(header.warm_seq.load(Ordering::Relaxed), 2);
        // Warm and decision blocks are independent seqlocks.
        assert_eq!(header.read_decision(), DecisionRead::Empty);

        header.reset_warm_state();
        assert_eq!(header.read_warm_state(), WarmRead::Empty);
    }

    #[test]
    fn warm_state_read_reports_torn_when_writer_died_mid_publish() {
        let header: SegmentHeader = unsafe { std::mem::zeroed() };
        header.initialize(SegmentGeometry::for_beat_samples(8).unwrap());
        // Predecessor SIGKILLed between the seqlock write halves.
        header.warm_seq.store(1, Ordering::Release);
        header.warm_speedup_bits.store(0xbeef, Ordering::Relaxed);
        assert_eq!(header.read_warm_state(), WarmRead::Torn);
        // The successor's first publish repairs the parity.
        let state = ShmWarmState {
            point_idx: 1,
            speedup_bits: 1.0f64.to_bits(),
            observed_rate_bits: 90.0f64.to_bits(),
            beat_in_quantum: 0,
        };
        header.publish_warm_state(state);
        assert_eq!(header.warm_seq.load(Ordering::Relaxed) & 1, 0);
        assert_eq!(header.read_warm_state(), WarmRead::Ready(state));
    }

    #[test]
    fn header_initialize_then_validate_round_trips() {
        let header: SegmentHeader = unsafe { std::mem::zeroed() };
        assert!(matches!(
            header.validate(1 << 20),
            Err(ShmError::NotInitialized)
        ));
        let geometry = SegmentGeometry::for_beat_samples(64).unwrap();
        header.initialize(geometry);
        assert_eq!(header.validate(geometry.total_len()).unwrap(), geometry);
        // A mapping one byte short is truncated.
        assert!(matches!(
            header.validate(geometry.total_len() - 1),
            Err(ShmError::TruncatedSegment { .. })
        ));
    }
}
