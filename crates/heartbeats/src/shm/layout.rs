//! The stable, versioned on-segment layout of the beat transport.
//!
//! Everything in this module is ABI: the header is `#[repr(C)]`, every
//! field has a fixed offset, and a segment written by one build must be
//! readable by any other build with the same [`SEGMENT_ABI_VERSION`]. The
//! layout is:
//!
//! ```text
//! offset 0    ┌────────────────────────────────────────────┐
//!             │ magic, abi_version, ready                  │
//!             │ capacity, slot_stride, record_size         │  control block
//!             │ producer_pid, consumer_pid                 │  (cache line 0)
//! offset 128  ├────────────────────────────────────────────┤
//!             │ head (consumer-owned)                      │  cache line 1
//! offset 256  ├────────────────────────────────────────────┤
//!             │ tail (producer-owned)                      │  cache line 2
//! offset 384  ├────────────────────────────────────────────┤
//!             │ slot 0 │ slot 1 │ …  │ slot capacity-1     │  fixed stride
//!             └────────────────────────────────────────────┘
//! ```
//!
//! `head` and `tail` sit on their own 128-byte blocks so the producer and
//! consumer — in *different processes* — never false-share a cache line.
//! All header fields are atomics: the segment is plain shared memory, so a
//! misbehaving peer can scribble anywhere, and reading a scribbled-on field
//! must be a data-race-free load that yields a garbage *value* (rejected by
//! validation) rather than undefined behaviour.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::channel::BeatSample;
use crate::record::HeartbeatTag;
use crate::shm::error::ShmError;
use crate::time::{Timestamp, TimestampDelta};

/// First eight bytes of every beat segment: `b"PDSHMBT1"`, little-endian.
pub const SEGMENT_MAGIC: u64 = u64::from_le_bytes(*b"PDSHMBT1");

/// Version of the segment ABI this build reads and writes. Bump on any
/// change to [`SegmentHeader`] or [`ShmBeatSample`] layout.
pub const SEGMENT_ABI_VERSION: u32 = 1;

/// Byte length of the segment header; slot 0 starts here. Three 128-byte
/// blocks: control fields, consumer-owned `head`, producer-owned `tail`.
pub const SEGMENT_HEADER_LEN: usize = 384;

/// Default distance in bytes between consecutive slots. Must be at least
/// `size_of::<ShmBeatSample>()` (24); 32 keeps slots 8-aligned with room
/// for one more field before the stride (and hence the ABI) has to change.
pub const DEFAULT_SLOT_STRIDE: usize = 32;

/// Largest accepted slot count (2³⁰ slots ≈ 32 GiB at the default stride);
/// anything bigger is a corrupt header, not a real ring.
pub const MAX_SLOT_CAPACITY: u64 = 1 << 30;

/// Header `ready` value meaning the creator finished initialization.
pub const SEGMENT_READY: u32 = 1;

/// One beat record as stored in a segment slot: the `#[repr(C)]` wire form
/// of [`BeatSample`], all fields explicit `u64` nanosecond counts so the
/// layout is independent of this crate's internal newtypes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmBeatSample {
    /// Sequence number of the heartbeat (0 for the first beat).
    pub tag: u64,
    /// Emission time, nanoseconds since the producer's epoch.
    pub timestamp_nanos: u64,
    /// Time since the previous heartbeat, nanoseconds.
    pub latency_nanos: u64,
}

impl ShmBeatSample {
    /// Encodes an in-memory beat sample into its wire form.
    pub fn from_sample(sample: BeatSample) -> Self {
        ShmBeatSample {
            tag: sample.tag.value(),
            timestamp_nanos: sample.timestamp.as_nanos(),
            latency_nanos: sample.latency.as_nanos(),
        }
    }

    /// Decodes the wire form back into an in-memory beat sample.
    pub fn to_sample(self) -> BeatSample {
        BeatSample {
            tag: HeartbeatTag(self.tag),
            timestamp: Timestamp::from_nanos(self.timestamp_nanos),
            latency: TimestampDelta::from_nanos(self.latency_nanos),
        }
    }

    /// Stores this record into a slot as three relaxed atomic words.
    ///
    /// Slot bytes live in memory another *process* can touch at any time;
    /// plain stores would make a protocol-violating peer a formal data
    /// race (UB). Relaxed atomics compile to the same plain moves on
    /// x86-64/AArch64 but make concurrent access yield garbage *values*
    /// instead — ordering against the peer comes from the release store
    /// of `tail`, not from these.
    ///
    /// # Safety
    ///
    /// `slot` must be valid for 24 bytes of writes and 8-byte aligned
    /// (guaranteed by a validated [`SegmentGeometry`]).
    pub unsafe fn store_to(self, slot: *mut u8) {
        debug_assert_eq!(slot as usize % 8, 0);
        let words = slot as *mut AtomicU64;
        // SAFETY: caller guarantees 24 valid, aligned bytes; AtomicU64 is
        // layout-compatible with u64 and never uninhabited on zeroed or
        // garbage memory.
        unsafe {
            (*words).store(self.tag, Ordering::Relaxed);
            (*words.add(1)).store(self.timestamp_nanos, Ordering::Relaxed);
            (*words.add(2)).store(self.latency_nanos, Ordering::Relaxed);
        }
    }

    /// Loads a record from a slot as three relaxed atomic words (see
    /// [`ShmBeatSample::store_to`] for why not a plain read).
    ///
    /// # Safety
    ///
    /// `slot` must be valid for 24 bytes of reads and 8-byte aligned.
    pub unsafe fn load_from(slot: *const u8) -> Self {
        debug_assert_eq!(slot as usize % 8, 0);
        let words = slot as *const AtomicU64;
        // SAFETY: as in `store_to`.
        unsafe {
            ShmBeatSample {
                tag: (*words).load(Ordering::Relaxed),
                timestamp_nanos: (*words.add(1)).load(Ordering::Relaxed),
                latency_nanos: (*words.add(2)).load(Ordering::Relaxed),
            }
        }
    }
}

const _: () = assert!(std::mem::size_of::<ShmBeatSample>() == 24);
const _: () = assert!(std::mem::align_of::<ShmBeatSample>() == 8);

/// The geometry of a segment's slot array: how many slots, how far apart,
/// and how many bytes of each slot carry a record.
///
/// A geometry is only constructible in validated form; every invariant the
/// property tests check ([`SegmentGeometry::validate`]) holds for every
/// value accepted by [`SegmentGeometry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGeometry {
    capacity: u64,
    slot_stride: u64,
    record_size: u64,
}

impl SegmentGeometry {
    /// A validated geometry with `capacity` slots of `record_size` useful
    /// bytes each, `slot_stride` bytes apart.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] unless all invariants hold:
    /// power-of-two `capacity` within [`MAX_SLOT_CAPACITY`], nonzero
    /// `record_size`, 8-byte-multiple `slot_stride` that covers the record,
    /// and a total length that fits in `usize`.
    pub fn new(capacity: u64, slot_stride: u64, record_size: u64) -> Result<Self, ShmError> {
        let geometry = SegmentGeometry {
            capacity,
            slot_stride,
            record_size,
        };
        geometry.validate()?;
        Ok(geometry)
    }

    /// The geometry used for [`BeatSample`] transport: `capacity` rounded
    /// up to a power of two, the default stride, and this build's record
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] when `capacity` is zero or rounds
    /// beyond [`MAX_SLOT_CAPACITY`].
    pub fn for_beat_samples(capacity: usize) -> Result<Self, ShmError> {
        if capacity == 0 {
            return Err(ShmError::BadGeometry {
                field: "capacity",
                found: 0,
            });
        }
        SegmentGeometry::new(
            capacity.next_power_of_two() as u64,
            DEFAULT_SLOT_STRIDE as u64,
            std::mem::size_of::<ShmBeatSample>() as u64,
        )
    }

    /// Re-checks every geometry invariant (used when the fields come from
    /// an untrusted segment header rather than [`SegmentGeometry::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadGeometry`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ShmError> {
        if self.capacity == 0 || !self.capacity.is_power_of_two() {
            return Err(ShmError::BadGeometry {
                field: "capacity",
                found: self.capacity,
            });
        }
        if self.capacity > MAX_SLOT_CAPACITY {
            return Err(ShmError::BadGeometry {
                field: "capacity",
                found: self.capacity,
            });
        }
        if self.record_size == 0 {
            return Err(ShmError::BadGeometry {
                field: "record_size",
                found: 0,
            });
        }
        if self.slot_stride < self.record_size || !self.slot_stride.is_multiple_of(8) {
            return Err(ShmError::BadGeometry {
                field: "slot_stride",
                found: self.slot_stride,
            });
        }
        let slots_len = self.capacity.checked_mul(self.slot_stride);
        let total = slots_len.and_then(|len| len.checked_add(SEGMENT_HEADER_LEN as u64));
        match total {
            Some(total) if usize::try_from(total).is_ok() => Ok(()),
            _ => Err(ShmError::BadGeometry {
                field: "total_len",
                found: u64::MAX,
            }),
        }
    }

    /// Number of slots (always a power of two).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Distance in bytes between consecutive slot starts.
    pub fn slot_stride(&self) -> u64 {
        self.slot_stride
    }

    /// Useful bytes at the start of each slot.
    pub fn record_size(&self) -> u64 {
        self.record_size
    }

    /// Bitmask turning a monotone position into a slot index.
    pub fn mask(&self) -> u64 {
        self.capacity - 1
    }

    /// Byte offset of slot `index` from the start of the segment.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `index` is out of range; callers mask first.
    pub fn slot_offset(&self, index: u64) -> usize {
        debug_assert!(index < self.capacity, "slot index out of range");
        SEGMENT_HEADER_LEN + (index * self.slot_stride) as usize
    }

    /// Total byte length of a segment with this geometry.
    pub fn total_len(&self) -> usize {
        SEGMENT_HEADER_LEN + (self.capacity * self.slot_stride) as usize
    }
}

/// The raw header at offset 0 of every segment.
///
/// All fields are atomics because the header lives in memory shared with
/// another *process*: loads from fields a hostile or crashed peer scribbled
/// on must still be well-defined. The fields are public so tests (and
/// diagnostic tools) can inspect and fault-inject a mapped header directly;
/// everything outside the test suite goes through the validated
/// [`crate::shm::ShmProducer`] / [`crate::shm::ShmConsumer`] handshake
/// instead of touching these.
#[repr(C)]
#[derive(Debug)]
pub struct SegmentHeader {
    /// [`SEGMENT_MAGIC`], written last during initialization.
    pub magic: AtomicU64,
    /// [`SEGMENT_ABI_VERSION`] of the creator.
    pub abi_version: AtomicU32,
    /// [`SEGMENT_READY`] once the creator finished writing the header.
    pub ready: AtomicU32,
    /// Slot count (power of two).
    pub capacity: AtomicU64,
    /// Bytes between consecutive slots.
    pub slot_stride: AtomicU64,
    /// Useful bytes per slot (`size_of::<ShmBeatSample>()` for beat
    /// segments).
    pub record_size: AtomicU64,
    /// PID of the attached producer (0 = unclaimed). Claimed by
    /// compare-and-swap; never cleared by process death, which is exactly
    /// how a dead peer is detected.
    pub producer_pid: AtomicU32,
    /// PID of the attached consumer (0 = unclaimed).
    pub consumer_pid: AtomicU32,
    _pad0: [u8; 80],
    /// Next position the consumer will read. Consumer-owned: written with
    /// `Release` after the freed slots were read, loaded by the producer
    /// with `Acquire` before overwriting them.
    pub head: AtomicU64,
    _pad1: [u8; 120],
    /// Next position the producer will write. Producer-owned: written with
    /// `Release` after the slot bytes are in place, loaded by the consumer
    /// with `Acquire` before reading them.
    pub tail: AtomicU64,
    _pad2: [u8; 120],
}

const _: () = assert!(std::mem::size_of::<SegmentHeader>() == SEGMENT_HEADER_LEN);
const _: () = assert!(std::mem::align_of::<SegmentHeader>() == 8);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, head) == 128);
const _: () = assert!(std::mem::offset_of!(SegmentHeader, tail) == 256);

impl SegmentHeader {
    /// Writes a fresh header for `geometry` into zeroed segment memory.
    /// The magic and ready flag are stored last (release), so a concurrent
    /// attacher either sees an unready header or a fully initialized one.
    pub(crate) fn initialize(&self, geometry: SegmentGeometry) {
        self.abi_version
            .store(SEGMENT_ABI_VERSION, Ordering::Relaxed);
        self.capacity.store(geometry.capacity(), Ordering::Relaxed);
        self.slot_stride
            .store(geometry.slot_stride(), Ordering::Relaxed);
        self.record_size
            .store(geometry.record_size(), Ordering::Relaxed);
        self.producer_pid.store(0, Ordering::Relaxed);
        self.consumer_pid.store(0, Ordering::Relaxed);
        self.head.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
        self.magic.store(SEGMENT_MAGIC, Ordering::Relaxed);
        self.ready.store(SEGMENT_READY, Ordering::Release);
    }

    /// Validates magic, version, readiness, and geometry against a mapping
    /// of `mapped_len` bytes, returning the (validated) geometry.
    ///
    /// # Errors
    ///
    /// Returns the [`ShmError`] naming the first check that failed; a
    /// header that passes is safe to run the transport protocol against
    /// (every slot access derived from it stays inside the mapping).
    pub fn validate(&self, mapped_len: usize) -> Result<SegmentGeometry, ShmError> {
        if self.ready.load(Ordering::Acquire) != SEGMENT_READY {
            return Err(ShmError::NotInitialized);
        }
        let magic = self.magic.load(Ordering::Relaxed);
        if magic != SEGMENT_MAGIC {
            return Err(ShmError::BadMagic { found: magic });
        }
        let version = self.abi_version.load(Ordering::Relaxed);
        if version != SEGMENT_ABI_VERSION {
            return Err(ShmError::AbiVersionMismatch {
                found: version,
                expected: SEGMENT_ABI_VERSION,
            });
        }
        let geometry = SegmentGeometry {
            capacity: self.capacity.load(Ordering::Relaxed),
            slot_stride: self.slot_stride.load(Ordering::Relaxed),
            record_size: self.record_size.load(Ordering::Relaxed),
        };
        geometry.validate()?;
        let required = geometry.total_len() as u64;
        if required > mapped_len as u64 {
            return Err(ShmError::TruncatedSegment {
                expected: required,
                found: mapped_len as u64,
            });
        }
        Ok(geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_sample_round_trips_bit_identically() {
        let sample = BeatSample {
            tag: HeartbeatTag(7),
            timestamp: Timestamp::from_nanos(123_456_789),
            latency: TimestampDelta::from_nanos(33_000_001),
        };
        let wire = ShmBeatSample::from_sample(sample);
        assert_eq!(wire.tag, 7);
        assert_eq!(wire.timestamp_nanos, 123_456_789);
        assert_eq!(wire.latency_nanos, 33_000_001);
        assert_eq!(wire.to_sample(), sample);
    }

    #[test]
    fn geometry_accepts_only_pow2_capacities() {
        assert!(SegmentGeometry::new(8, 32, 24).is_ok());
        assert!(matches!(
            SegmentGeometry::new(0, 32, 24),
            Err(ShmError::BadGeometry {
                field: "capacity",
                ..
            })
        ));
        assert!(matches!(
            SegmentGeometry::new(3, 32, 24),
            Err(ShmError::BadGeometry {
                field: "capacity",
                ..
            })
        ));
        assert!(matches!(
            SegmentGeometry::new(MAX_SLOT_CAPACITY * 2, 32, 24),
            Err(ShmError::BadGeometry {
                field: "capacity",
                ..
            })
        ));
    }

    #[test]
    fn geometry_rejects_bad_strides() {
        // Stride smaller than the record.
        assert!(matches!(
            SegmentGeometry::new(8, 16, 24),
            Err(ShmError::BadGeometry {
                field: "slot_stride",
                ..
            })
        ));
        // Misaligned stride.
        assert!(matches!(
            SegmentGeometry::new(8, 30, 24),
            Err(ShmError::BadGeometry {
                field: "slot_stride",
                ..
            })
        ));
        // Zero record.
        assert!(matches!(
            SegmentGeometry::new(8, 32, 0),
            Err(ShmError::BadGeometry {
                field: "record_size",
                ..
            })
        ));
    }

    #[test]
    fn for_beat_samples_rounds_to_pow2() {
        let geometry = SegmentGeometry::for_beat_samples(5).unwrap();
        assert_eq!(geometry.capacity(), 8);
        assert_eq!(geometry.slot_stride(), DEFAULT_SLOT_STRIDE as u64);
        assert_eq!(
            geometry.record_size(),
            std::mem::size_of::<ShmBeatSample>() as u64
        );
        assert_eq!(geometry.total_len(), SEGMENT_HEADER_LEN + 8 * 32);
        assert!(SegmentGeometry::for_beat_samples(0).is_err());
    }

    #[test]
    fn slot_offsets_do_not_overlap_header() {
        let geometry = SegmentGeometry::for_beat_samples(16).unwrap();
        assert!(geometry.slot_offset(0) >= SEGMENT_HEADER_LEN);
        for index in 1..geometry.capacity() {
            let previous = geometry.slot_offset(index - 1);
            let current = geometry.slot_offset(index);
            assert!(current >= previous + geometry.record_size() as usize);
        }
        let last = geometry.slot_offset(geometry.capacity() - 1);
        assert!(last + geometry.record_size() as usize <= geometry.total_len());
    }

    #[test]
    fn header_initialize_then_validate_round_trips() {
        let header: SegmentHeader = unsafe { std::mem::zeroed() };
        assert!(matches!(
            header.validate(1 << 20),
            Err(ShmError::NotInitialized)
        ));
        let geometry = SegmentGeometry::for_beat_samples(64).unwrap();
        header.initialize(geometry);
        assert_eq!(header.validate(geometry.total_len()).unwrap(), geometry);
        // A mapping one byte short is truncated.
        assert!(matches!(
            header.validate(geometry.total_len() - 1),
            Err(ShmError::TruncatedSegment { .. })
        ));
    }
}
