//! Typed errors for the shared-memory beat transport.
//!
//! Every failure mode of segment creation, attachment, and the ownership
//! handshake maps to a variant here. The contract the fault-injection tests
//! enforce is that a malformed, truncated, stale, or contested segment
//! produces one of these values — never undefined behaviour and never a
//! panic.

use std::fmt;

/// Which side of a segment a peer identifier refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRole {
    /// The application side: writes beat records, owns `tail`.
    Producer,
    /// The controller side: drains beat records, owns `head`.
    Consumer,
}

impl fmt::Display for PeerRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerRole::Producer => f.write_str("producer"),
            PeerRole::Consumer => f.write_str("consumer"),
        }
    }
}

/// Liveness of one side of a segment, as observed through its claimed PID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// No process has claimed the role yet.
    Absent,
    /// The role is claimed and the claiming process is alive.
    Alive(u32),
    /// The role is claimed but the claiming process no longer exists —
    /// the segment is abandoned on that side and eligible for reaping.
    Dead(u32),
}

impl PeerState {
    /// True when the role is claimed by a process that no longer exists.
    pub fn is_dead(self) -> bool {
        matches!(self, PeerState::Dead(_))
    }

    /// True when the role is claimed by a live process.
    pub fn is_alive(self) -> bool {
        matches!(self, PeerState::Alive(_))
    }
}

/// Errors produced while creating, attaching to, or probing a shared-memory
/// heartbeat segment.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShmError {
    /// An operating-system call failed while creating or mapping a segment.
    Io {
        /// The operation that failed (e.g. `"memfd_create"`, `"mmap"`).
        op: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The mapping is smaller than the header (plus slot array) requires.
    TruncatedSegment {
        /// Bytes the segment geometry requires.
        expected: u64,
        /// Bytes actually available in the mapping.
        found: u64,
    },
    /// The segment does not start with the beat-segment magic number.
    BadMagic {
        /// The first eight bytes of the mapping, little-endian.
        found: u64,
    },
    /// The segment was written by an incompatible ABI revision.
    AbiVersionMismatch {
        /// Version recorded in the segment header.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The segment header has not (yet) been marked initialized by its
    /// creator; attaching now would race segment construction.
    NotInitialized,
    /// A geometry field of the header violates the layout invariants
    /// (power-of-two capacity, stride covering the record, aligned stride).
    BadGeometry {
        /// The offending header field.
        field: &'static str,
        /// Its value.
        found: u64,
    },
    /// A geometry field disagrees with what this attacher requires (for
    /// example a record size from a different `BeatSample` revision).
    GeometryMismatch {
        /// The mismatching header field.
        field: &'static str,
        /// Value recorded in the segment header.
        found: u64,
        /// Value this attacher requires.
        expected: u64,
    },
    /// The requested role is already claimed by a live process; a segment
    /// supports exactly one producer and one consumer.
    RoleClaimed {
        /// The contested role.
        role: PeerRole,
        /// PID of the live claimant.
        pid: u32,
    },
    /// The counterpart (or the requested role itself) is claimed by a
    /// process that no longer exists; the segment is abandoned and should
    /// be reaped, not attached to.
    DeadPeer {
        /// The role whose claimant is dead.
        role: PeerRole,
        /// The stale PID.
        pid: u32,
    },
    /// No segment backing is available on this platform / feature set
    /// (non-Unix build without the `shm-fake` feature).
    NoBackingAvailable,
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::Io { op, source } => write!(f, "{op} failed: {source}"),
            ShmError::TruncatedSegment { expected, found } => write!(
                f,
                "segment truncated: geometry requires {expected} bytes, mapping has {found}"
            ),
            ShmError::BadMagic { found } => {
                write!(f, "bad segment magic {found:#018x}")
            }
            ShmError::AbiVersionMismatch { found, expected } => write!(
                f,
                "segment ABI version {found} is incompatible with expected version {expected}"
            ),
            ShmError::NotInitialized => write!(f, "segment header is not initialized"),
            ShmError::BadGeometry { field, found } => {
                write!(f, "invalid segment geometry: {field} = {found}")
            }
            ShmError::GeometryMismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "segment geometry mismatch: {field} is {found}, attacher requires {expected}"
            ),
            ShmError::RoleClaimed { role, pid } => {
                write!(f, "segment {role} is already claimed by live pid {pid}")
            }
            ShmError::DeadPeer { role, pid } => {
                write!(f, "segment {role} pid {pid} no longer exists")
            }
            ShmError::NoBackingAvailable => {
                write!(f, "no shared-memory backing available on this platform")
            }
        }
    }
}

impl std::error::Error for ShmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShmError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let errors = [
            ShmError::Io {
                op: "mmap",
                source: std::io::Error::from_raw_os_error(12),
            },
            ShmError::TruncatedSegment {
                expected: 384,
                found: 64,
            },
            ShmError::BadMagic { found: 0xdead },
            ShmError::AbiVersionMismatch {
                found: 2,
                expected: 1,
            },
            ShmError::NotInitialized,
            ShmError::BadGeometry {
                field: "capacity",
                found: 3,
            },
            ShmError::GeometryMismatch {
                field: "record_size",
                found: 16,
                expected: 24,
            },
            ShmError::RoleClaimed {
                role: PeerRole::Producer,
                pid: 42,
            },
            ShmError::DeadPeer {
                role: PeerRole::Consumer,
                pid: 43,
            },
            ShmError::NoBackingAvailable,
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
            assert!(!error.to_string().ends_with('.'));
        }
    }

    #[test]
    fn peer_state_predicates() {
        assert!(PeerState::Dead(9).is_dead());
        assert!(!PeerState::Dead(9).is_alive());
        assert!(PeerState::Alive(9).is_alive());
        assert!(!PeerState::Absent.is_alive());
        assert!(!PeerState::Absent.is_dead());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ShmError>();
    }
}
