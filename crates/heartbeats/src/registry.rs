//! A registry of heartbeat monitors.
//!
//! The original Application Heartbeats implementation exposes heartbeats
//! through a shared-memory registry so that external observers (such as the
//! PowerDial control daemon) can attach to a running application. This module
//! provides the equivalent within one process: monitors are registered by
//! name and observers look them up by [`MonitorId`] or name.
//!
//! Monitors can also be **shm-backed** ([`HeartbeatRegistry::register_shm`]):
//! the application lives in *another process* and emits beats through a
//! [`crate::shm`] segment; [`HeartbeatRegistry::pump_shm`] drains the
//! segment and replays the beats into the local monitor, so observers see
//! the same rates and statistics regardless of which side of the process
//! boundary the application runs on.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::channel::BeatSample;
use crate::error::HeartbeatError;
use crate::monitor::{HeartbeatMonitor, MonitorConfig};
use crate::shm::{PeerState, ShmConsumer};

/// Identifier of a monitor within a [`HeartbeatRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonitorId(u64);

impl MonitorId {
    /// Returns the raw identifier value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

/// A collection of named heartbeat monitors.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::{HeartbeatRegistry, MonitorConfig, Timestamp};
///
/// # fn main() -> Result<(), powerdial_heartbeats::HeartbeatError> {
/// let mut registry = HeartbeatRegistry::new();
/// let id = registry.register(MonitorConfig::new("x264"))?;
/// registry.monitor_mut(id)?.heartbeat(Timestamp::from_millis(0));
/// registry.monitor_mut(id)?.heartbeat(Timestamp::from_millis(40));
/// assert_eq!(registry.monitor(id)?.total_beats(), 2);
/// assert!(registry.find_by_name("x264").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct HeartbeatRegistry {
    next_id: u64,
    monitors: HashMap<u64, HeartbeatMonitor>,
    names: HashMap<String, u64>,
    /// Shared-memory consumers of shm-backed monitors, keyed like
    /// `monitors`. (This field is why the registry is no longer `Clone`:
    /// a segment has exactly one consumer.)
    shm: HashMap<u64, ShmBinding>,
}

/// A shm-backed monitor's segment consumer plus its reused drain scratch.
#[derive(Debug)]
struct ShmBinding {
    consumer: ShmConsumer,
    scratch: Vec<BeatSample>,
}

/// Drains a shm binding and replays the beats into its monitor, returning
/// how many the monitor accepted. Beats a misbehaving producer stamped
/// with non-monotone timestamps are skipped (never a panic — the segment
/// is untrusted input).
fn pump_binding(binding: &mut ShmBinding, monitor: &mut HeartbeatMonitor) -> usize {
    binding.consumer.drain_into(&mut binding.scratch);
    let mut accepted = 0;
    for sample in &binding.scratch {
        if monitor.try_heartbeat(sample.timestamp).is_ok() {
            accepted += 1;
        }
    }
    accepted
}

impl HeartbeatRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HeartbeatRegistry::default()
    }

    /// Registers a new monitor and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::DuplicateMonitorName`] if a monitor with the
    /// same name is already registered.
    pub fn register(&mut self, config: MonitorConfig) -> Result<MonitorId, HeartbeatError> {
        let name = config.name().to_string();
        if self.names.contains_key(&name) {
            return Err(HeartbeatError::DuplicateMonitorName { name });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.monitors.insert(id, HeartbeatMonitor::new(config));
        self.names.insert(name, id);
        Ok(MonitorId(id))
    }

    /// Registers a monitor whose beats arrive from another process through
    /// a shared-memory segment. Call [`HeartbeatRegistry::pump_shm`] (or
    /// [`HeartbeatRegistry::pump_all_shm`]) periodically to replay drained
    /// beats into the monitor.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::DuplicateMonitorName`] if a monitor with
    /// the same name is already registered.
    pub fn register_shm(
        &mut self,
        config: MonitorConfig,
        consumer: ShmConsumer,
    ) -> Result<MonitorId, HeartbeatError> {
        let id = self.register(config)?;
        self.shm.insert(
            id.0,
            ShmBinding {
                consumer,
                scratch: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Drains the segment of a shm-backed monitor and replays the beats
    /// into it, returning how many beats the monitor accepted. Beats a
    /// misbehaving producer stamped with non-monotone timestamps are
    /// skipped (never a panic — the segment is untrusted input).
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::UnknownMonitor`] if `id` is not a
    /// registered shm-backed monitor.
    pub fn pump_shm(&mut self, id: MonitorId) -> Result<usize, HeartbeatError> {
        let binding = self
            .shm
            .get_mut(&id.0)
            .ok_or(HeartbeatError::UnknownMonitor { id: id.0 })?;
        let monitor = self
            .monitors
            .get_mut(&id.0)
            .ok_or(HeartbeatError::UnknownMonitor { id: id.0 })?;
        Ok(pump_binding(binding, monitor))
    }

    /// Pumps every shm-backed monitor once, returning the total beats
    /// accepted.
    pub fn pump_all_shm(&mut self) -> usize {
        let mut accepted = 0;
        for (id, binding) in &mut self.shm {
            let Some(monitor) = self.monitors.get_mut(id) else {
                continue;
            };
            accepted += pump_binding(binding, monitor);
        }
        accepted
    }

    /// True when `id` is a shm-backed monitor.
    pub fn is_shm_backed(&self, id: MonitorId) -> bool {
        self.shm.contains_key(&id.0)
    }

    /// Liveness of the producing process behind a shm-backed monitor
    /// (`None` for unknown ids and in-heap monitors). A
    /// [`PeerState::Dead`] producer will never beat again: pump once more
    /// to collect the stragglers, then unregister.
    pub fn shm_producer_state(&self, id: MonitorId) -> Option<PeerState> {
        self.shm.get(&id.0).map(|b| b.consumer.producer_state())
    }

    /// Removes a monitor, returning it if it was registered. For
    /// shm-backed monitors the segment consumer is dropped with it (beats
    /// still in the segment are discarded).
    ///
    /// O(1): the name→id index entry is removed by the monitor's own name
    /// rather than by scanning every entry, so register/unregister churn
    /// (applications attaching to and detaching from a long-running daemon)
    /// stays constant-time regardless of how many monitors are registered.
    pub fn unregister(&mut self, id: MonitorId) -> Option<HeartbeatMonitor> {
        let monitor = self.monitors.remove(&id.0)?;
        self.shm.remove(&id.0);
        let removed = self.names.remove(monitor.config().name());
        debug_assert_eq!(
            removed,
            Some(id.0),
            "name index out of sync with monitor map"
        );
        Some(monitor)
    }

    /// Returns a shared reference to a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::UnknownMonitor`] if `id` is not registered.
    pub fn monitor(&self, id: MonitorId) -> Result<&HeartbeatMonitor, HeartbeatError> {
        self.monitors
            .get(&id.0)
            .ok_or(HeartbeatError::UnknownMonitor { id: id.0 })
    }

    /// Returns an exclusive reference to a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::UnknownMonitor`] if `id` is not registered.
    pub fn monitor_mut(&mut self, id: MonitorId) -> Result<&mut HeartbeatMonitor, HeartbeatError> {
        self.monitors
            .get_mut(&id.0)
            .ok_or(HeartbeatError::UnknownMonitor { id: id.0 })
    }

    /// Looks up a monitor id by application name.
    pub fn find_by_name(&self, name: &str) -> Option<MonitorId> {
        self.names.get(name).copied().map(MonitorId)
    }

    /// Number of registered monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Returns true when no monitors are registered.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Iterates over `(id, monitor)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (MonitorId, &HeartbeatMonitor)> {
        self.monitors.iter().map(|(id, m)| (MonitorId(*id), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    #[test]
    fn register_and_lookup_by_name() {
        let mut registry = HeartbeatRegistry::new();
        let a = registry.register(MonitorConfig::new("a")).unwrap();
        let b = registry.register(MonitorConfig::new("b")).unwrap();
        assert_ne!(a, b);
        assert_eq!(registry.find_by_name("a"), Some(a));
        assert_eq!(registry.find_by_name("b"), Some(b));
        assert_eq!(registry.find_by_name("missing"), None);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = HeartbeatRegistry::new();
        registry.register(MonitorConfig::new("dup")).unwrap();
        let err = registry.register(MonitorConfig::new("dup")).unwrap_err();
        assert!(matches!(err, HeartbeatError::DuplicateMonitorName { .. }));
    }

    #[test]
    fn unknown_monitor_errors() {
        let registry = HeartbeatRegistry::new();
        assert!(matches!(
            registry.monitor(MonitorId(99)),
            Err(HeartbeatError::UnknownMonitor { id: 99 })
        ));
    }

    #[test]
    fn unregister_removes_name_mapping() {
        let mut registry = HeartbeatRegistry::new();
        let id = registry.register(MonitorConfig::new("gone")).unwrap();
        assert!(registry.unregister(id).is_some());
        assert!(registry.find_by_name("gone").is_none());
        assert!(registry.unregister(id).is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn name_index_survives_register_unregister_churn() {
        // The name→id index must stay exactly in sync with the monitor map
        // through arbitrary register/unregister interleavings, including
        // re-registering a freed name (which must get a fresh id).
        let mut registry = HeartbeatRegistry::new();
        let mut live: Vec<(String, MonitorId)> = Vec::new();
        // 95 rounds: names 0–4 end registered (19 toggles), 5–9 end free.
        for round in 0..95u64 {
            let name = format!("app-{}", round % 10);
            if let Some(position) = live.iter().position(|(n, _)| *n == name) {
                let (_, id) = live.remove(position);
                assert!(registry.unregister(id).is_some());
                assert_eq!(registry.find_by_name(&name), None);
            } else {
                let id = registry.register(MonitorConfig::new(name.clone())).unwrap();
                assert_eq!(registry.find_by_name(&name), Some(id));
                live.push((name, id));
            }
            assert_eq!(registry.len(), live.len());
        }
        for (name, id) in &live {
            assert_eq!(registry.find_by_name(name), Some(*id));
        }
        // Re-registering a freed name yields a new id, still indexed.
        let (name, id) = live.pop().unwrap();
        registry.unregister(id).unwrap();
        let fresh = registry.register(MonitorConfig::new(name.clone())).unwrap();
        assert_ne!(fresh, id);
        assert_eq!(registry.find_by_name(&name), Some(fresh));
    }

    #[test]
    fn shm_backed_monitor_pumps_beats() {
        use crate::channel::BeatSample;
        use crate::record::HeartbeatTag;
        use crate::shm::{Segment, SegmentGeometry, ShmConsumer, ShmProducer};
        use crate::time::TimestampDelta;
        use std::sync::Arc;

        let segment =
            Arc::new(Segment::create(SegmentGeometry::for_beat_samples(32).unwrap()).unwrap());
        let mut producer = ShmProducer::attach(Arc::clone(&segment)).unwrap();
        let consumer = ShmConsumer::attach(Arc::clone(&segment)).unwrap();

        let mut registry = HeartbeatRegistry::new();
        let id = registry
            .register_shm(MonitorConfig::new("remote-app"), consumer)
            .unwrap();
        assert!(registry.is_shm_backed(id));
        assert!(!registry.is_shm_backed(MonitorId(99)));
        assert_eq!(registry.shm_producer_state(MonitorId(99)), None);
        assert!(registry.shm_producer_state(id).unwrap().is_alive());

        for tag in 0..10u64 {
            producer
                .try_push(BeatSample {
                    tag: HeartbeatTag(tag),
                    timestamp: Timestamp::from_millis(tag * 40),
                    latency: if tag == 0 {
                        TimestampDelta::ZERO
                    } else {
                        TimestampDelta::from_millis(40)
                    },
                })
                .unwrap();
        }
        assert_eq!(registry.pump_shm(id).unwrap(), 10);
        assert_eq!(registry.monitor(id).unwrap().total_beats(), 10);
        // A second pump with nothing pending accepts nothing.
        assert_eq!(registry.pump_all_shm(), 0);

        // Non-monotone timestamps from a buggy producer are skipped, not
        // panicked on.
        producer
            .try_push(BeatSample {
                tag: HeartbeatTag(10),
                timestamp: Timestamp::from_millis(1),
                latency: TimestampDelta::ZERO,
            })
            .unwrap();
        assert_eq!(registry.pump_shm(id).unwrap(), 0);
        assert_eq!(registry.monitor(id).unwrap().total_beats(), 10);

        // Unregistering drops the binding.
        assert!(registry.unregister(id).is_some());
        assert!(!registry.is_shm_backed(id));
        assert!(matches!(
            registry.pump_shm(id),
            Err(HeartbeatError::UnknownMonitor { .. })
        ));
    }

    #[test]
    fn heartbeats_flow_through_registry() {
        let mut registry = HeartbeatRegistry::new();
        let id = registry.register(MonitorConfig::new("app")).unwrap();
        for i in 0..5u64 {
            registry
                .monitor_mut(id)
                .unwrap()
                .heartbeat(Timestamp::from_millis(i * 100));
        }
        assert_eq!(registry.monitor(id).unwrap().total_beats(), 5);
        let names: Vec<_> = registry
            .iter()
            .map(|(_, m)| m.config().name().to_string())
            .collect();
        assert_eq!(names, vec!["app".to_string()]);
    }
}
