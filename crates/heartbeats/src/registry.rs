//! A registry of heartbeat monitors.
//!
//! The original Application Heartbeats implementation exposes heartbeats
//! through a shared-memory registry so that external observers (such as the
//! PowerDial control daemon) can attach to a running application. This module
//! provides the equivalent within one process: monitors are registered by
//! name and observers look them up by [`MonitorId`] or name.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::HeartbeatError;
use crate::monitor::{HeartbeatMonitor, MonitorConfig};

/// Identifier of a monitor within a [`HeartbeatRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonitorId(u64);

impl MonitorId {
    /// Returns the raw identifier value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

/// A collection of named heartbeat monitors.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::{HeartbeatRegistry, MonitorConfig, Timestamp};
///
/// # fn main() -> Result<(), powerdial_heartbeats::HeartbeatError> {
/// let mut registry = HeartbeatRegistry::new();
/// let id = registry.register(MonitorConfig::new("x264"))?;
/// registry.monitor_mut(id)?.heartbeat(Timestamp::from_millis(0));
/// registry.monitor_mut(id)?.heartbeat(Timestamp::from_millis(40));
/// assert_eq!(registry.monitor(id)?.total_beats(), 2);
/// assert!(registry.find_by_name("x264").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HeartbeatRegistry {
    next_id: u64,
    monitors: HashMap<u64, HeartbeatMonitor>,
    names: HashMap<String, u64>,
}

impl HeartbeatRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HeartbeatRegistry::default()
    }

    /// Registers a new monitor and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::DuplicateMonitorName`] if a monitor with the
    /// same name is already registered.
    pub fn register(&mut self, config: MonitorConfig) -> Result<MonitorId, HeartbeatError> {
        let name = config.name().to_string();
        if self.names.contains_key(&name) {
            return Err(HeartbeatError::DuplicateMonitorName { name });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.monitors.insert(id, HeartbeatMonitor::new(config));
        self.names.insert(name, id);
        Ok(MonitorId(id))
    }

    /// Removes a monitor, returning it if it was registered.
    ///
    /// O(1): the name→id index entry is removed by the monitor's own name
    /// rather than by scanning every entry, so register/unregister churn
    /// (applications attaching to and detaching from a long-running daemon)
    /// stays constant-time regardless of how many monitors are registered.
    pub fn unregister(&mut self, id: MonitorId) -> Option<HeartbeatMonitor> {
        let monitor = self.monitors.remove(&id.0)?;
        let removed = self.names.remove(monitor.config().name());
        debug_assert_eq!(
            removed,
            Some(id.0),
            "name index out of sync with monitor map"
        );
        Some(monitor)
    }

    /// Returns a shared reference to a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::UnknownMonitor`] if `id` is not registered.
    pub fn monitor(&self, id: MonitorId) -> Result<&HeartbeatMonitor, HeartbeatError> {
        self.monitors
            .get(&id.0)
            .ok_or(HeartbeatError::UnknownMonitor { id: id.0 })
    }

    /// Returns an exclusive reference to a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::UnknownMonitor`] if `id` is not registered.
    pub fn monitor_mut(&mut self, id: MonitorId) -> Result<&mut HeartbeatMonitor, HeartbeatError> {
        self.monitors
            .get_mut(&id.0)
            .ok_or(HeartbeatError::UnknownMonitor { id: id.0 })
    }

    /// Looks up a monitor id by application name.
    pub fn find_by_name(&self, name: &str) -> Option<MonitorId> {
        self.names.get(name).copied().map(MonitorId)
    }

    /// Number of registered monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Returns true when no monitors are registered.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Iterates over `(id, monitor)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (MonitorId, &HeartbeatMonitor)> {
        self.monitors.iter().map(|(id, m)| (MonitorId(*id), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    #[test]
    fn register_and_lookup_by_name() {
        let mut registry = HeartbeatRegistry::new();
        let a = registry.register(MonitorConfig::new("a")).unwrap();
        let b = registry.register(MonitorConfig::new("b")).unwrap();
        assert_ne!(a, b);
        assert_eq!(registry.find_by_name("a"), Some(a));
        assert_eq!(registry.find_by_name("b"), Some(b));
        assert_eq!(registry.find_by_name("missing"), None);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = HeartbeatRegistry::new();
        registry.register(MonitorConfig::new("dup")).unwrap();
        let err = registry.register(MonitorConfig::new("dup")).unwrap_err();
        assert!(matches!(err, HeartbeatError::DuplicateMonitorName { .. }));
    }

    #[test]
    fn unknown_monitor_errors() {
        let registry = HeartbeatRegistry::new();
        assert!(matches!(
            registry.monitor(MonitorId(99)),
            Err(HeartbeatError::UnknownMonitor { id: 99 })
        ));
    }

    #[test]
    fn unregister_removes_name_mapping() {
        let mut registry = HeartbeatRegistry::new();
        let id = registry.register(MonitorConfig::new("gone")).unwrap();
        assert!(registry.unregister(id).is_some());
        assert!(registry.find_by_name("gone").is_none());
        assert!(registry.unregister(id).is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn name_index_survives_register_unregister_churn() {
        // The name→id index must stay exactly in sync with the monitor map
        // through arbitrary register/unregister interleavings, including
        // re-registering a freed name (which must get a fresh id).
        let mut registry = HeartbeatRegistry::new();
        let mut live: Vec<(String, MonitorId)> = Vec::new();
        // 95 rounds: names 0–4 end registered (19 toggles), 5–9 end free.
        for round in 0..95u64 {
            let name = format!("app-{}", round % 10);
            if let Some(position) = live.iter().position(|(n, _)| *n == name) {
                let (_, id) = live.remove(position);
                assert!(registry.unregister(id).is_some());
                assert_eq!(registry.find_by_name(&name), None);
            } else {
                let id = registry.register(MonitorConfig::new(name.clone())).unwrap();
                assert_eq!(registry.find_by_name(&name), Some(id));
                live.push((name, id));
            }
            assert_eq!(registry.len(), live.len());
        }
        for (name, id) in &live {
            assert_eq!(registry.find_by_name(name), Some(*id));
        }
        // Re-registering a freed name yields a new id, still indexed.
        let (name, id) = live.pop().unwrap();
        registry.unregister(id).unwrap();
        let fresh = registry.register(MonitorConfig::new(name.clone())).unwrap();
        assert_ne!(fresh, id);
        assert_eq!(registry.find_by_name(&name), Some(fresh));
    }

    #[test]
    fn heartbeats_flow_through_registry() {
        let mut registry = HeartbeatRegistry::new();
        let id = registry.register(MonitorConfig::new("app")).unwrap();
        for i in 0..5u64 {
            registry
                .monitor_mut(id)
                .unwrap()
                .heartbeat(Timestamp::from_millis(i * 100));
        }
        assert_eq!(registry.monitor(id).unwrap().total_beats(), 5);
        let names: Vec<_> = registry
            .iter()
            .map(|(_, m)| m.config().name().to_string())
            .collect();
        assert_eq!(names, vec!["app".to_string()]);
    }
}
