//! Application Heartbeats: a generic interface for expressing program
//! performance and performance goals.
//!
//! This crate reproduces the *Application Heartbeats* framework used by the
//! PowerDial system (Hoffmann et al., ASPLOS 2011) as its feedback mechanism.
//! An application registers a [`HeartbeatMonitor`] with a target heart-rate
//! window, then emits a heartbeat at every iteration of its main control loop
//! (one heartbeat per unit of work: a frame encoded, a query answered, a
//! swaption priced). The monitor maintains instantaneous, windowed, and
//! global heart rates that external observers — such as the PowerDial control
//! system — read to decide whether the application is meeting its
//! responsiveness goal.
//!
//! Unlike the original C implementation, every API takes an explicit
//! [`Timestamp`] so the framework can be driven either by wall-clock time or
//! by a simulated clock (the PowerDial reproduction runs entirely on
//! simulated time for determinism).
//!
//! # Example
//!
//! ```
//! use powerdial_heartbeats::{HeartbeatMonitor, MonitorConfig, Timestamp};
//!
//! # fn main() -> Result<(), powerdial_heartbeats::HeartbeatError> {
//! let config = MonitorConfig::new("encoder")
//!     .with_window_size(20)
//!     .with_target_rate_range(25.0, 35.0)?;
//! let mut monitor = HeartbeatMonitor::new(config);
//!
//! // The application emits one heartbeat per frame; here one frame every
//! // 33 ms, i.e. a heart rate of ~30 beats per second.
//! for frame in 0..100u64 {
//!     monitor.heartbeat(Timestamp::from_millis(33 * frame));
//! }
//!
//! assert!(monitor.window_rate().unwrap().is_within_target(monitor.config().target()));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod channel;
mod error;
mod monitor;
pub mod naive;
mod record;
mod registry;
mod ring;
pub mod shm;
mod stats;
pub mod telemetry;
mod time;

pub use channel::{beat_channel, BeatConsumer, BeatProducer, BeatSample, BeatTransport};
pub use error::HeartbeatError;
pub use monitor::{HeartbeatMonitor, MonitorConfig, TargetRate, DEFAULT_HISTORY_CAPACITY};
pub use record::{HeartRate, HeartbeatRecord, HeartbeatTag};
pub use registry::{HeartbeatRegistry, MonitorId};
pub use ring::{HistoryIter, HistoryRing};
pub use stats::{RateStatistics, SlidingWindow, WindowOverflow};
pub use telemetry::{
    DecisionTraceRecord, DecisionTraceRing, HistogramSummary, LatencyHistogram, TraceReason,
};
pub use time::{Timestamp, TimestampDelta};
