//! The pre-optimization sliding window, kept as a reference baseline.
//!
//! [`NaiveSlidingWindow`] is the recompute-on-read implementation the O(1)
//! [`crate::SlidingWindow`] replaced: `total()` folds the whole window,
//! `statistics()` collects the latencies into a scratch `Vec` and scans it
//! four times. It exists for two reasons:
//!
//! * the equivalence property tests in `stats.rs` assert the incremental
//!   implementation matches this one (rate/total bit-identical, mean and
//!   variance to within 1e-9);
//! * the `powerdial-bench` hot-path benchmarks measure the speedup of the
//!   incremental implementation against it.
//!
//! Do not use it outside tests and benchmarks.

use std::collections::VecDeque;

use crate::record::HeartRate;
use crate::stats::RateStatistics;
use crate::time::TimestampDelta;

/// The O(n)-per-query sliding window (pre-optimization reference).
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveSlidingWindow {
    capacity: usize,
    latencies: VecDeque<TimestampDelta>,
}

impl NaiveSlidingWindow {
    /// Creates a window holding at most `capacity` latencies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be at least 1");
        NaiveSlidingWindow {
            capacity,
            latencies: VecDeque::with_capacity(capacity),
        }
    }

    /// Returns the number of latencies currently stored.
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Returns true when the window holds no latencies.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Pushes a new latency, evicting the oldest if the window is full.
    pub fn push(&mut self, latency: TimestampDelta) {
        if self.latencies.len() == self.capacity {
            self.latencies.pop_front();
        }
        self.latencies.push_back(latency);
    }

    /// Returns the total time spanned by the stored latencies (O(n) fold).
    pub fn total(&self) -> TimestampDelta {
        self.latencies
            .iter()
            .fold(TimestampDelta::ZERO, |acc, &l| acc + l)
    }

    /// Returns the windowed heart rate (O(n): folds the window).
    pub fn rate(&self) -> Option<HeartRate> {
        HeartRate::from_beats_over(self.latencies.len() as u64, self.total())
    }

    /// Returns summary statistics (O(n) with a scratch allocation per call).
    pub fn statistics(&self) -> Option<RateStatistics> {
        if self.latencies.is_empty() {
            return None;
        }
        let n = self.latencies.len() as f64;
        let secs: Vec<f64> = self.latencies.iter().map(|l| l.as_secs_f64()).collect();
        let mean = secs.iter().sum::<f64>() / n;
        let variance = secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let min = secs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = secs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(RateStatistics {
            count: self.latencies.len(),
            mean_latency_secs: mean,
            latency_variance: variance,
            min_latency_secs: min,
            max_latency_secs: max,
        })
    }
}
