//! The pre-optimization sliding window, kept as a reference baseline.
//!
//! [`NaiveSlidingWindow`] is the recompute-on-read implementation the O(1)
//! [`crate::SlidingWindow`] replaced: `total()` folds the whole window,
//! `statistics()` collects the latencies into a scratch `Vec` and scans it
//! four times. It exists for two reasons:
//!
//! * the equivalence property tests in `stats.rs` assert the incremental
//!   implementation matches this one (rate/total bit-identical, mean and
//!   variance to within 1e-9);
//! * the `powerdial-bench` hot-path benchmarks measure the speedup of the
//!   incremental implementation against it.
//!
//! Do not use it outside tests and benchmarks.

use std::collections::VecDeque;

use crate::record::HeartRate;
use crate::stats::{RateStatistics, WindowOverflow};
use crate::time::TimestampDelta;

/// The O(n)-per-query sliding window (pre-optimization reference).
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveSlidingWindow {
    capacity: usize,
    latencies: VecDeque<TimestampDelta>,
}

impl NaiveSlidingWindow {
    /// Creates a window holding at most `capacity` latencies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be at least 1");
        NaiveSlidingWindow {
            capacity,
            latencies: VecDeque::with_capacity(capacity),
        }
    }

    /// Returns the number of latencies currently stored.
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Returns true when the window holds no latencies.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Pushes a new latency, evicting the oldest if the window is full.
    pub fn push(&mut self, latency: TimestampDelta) {
        if self.latencies.len() == self.capacity {
            self.latencies.pop_front();
        }
        self.latencies.push_back(latency);
    }

    /// Returns the total time spanned by the stored latencies (O(n) fold).
    pub fn total(&self) -> TimestampDelta {
        self.latencies
            .iter()
            .fold(TimestampDelta::ZERO, |acc, &l| acc + l)
    }

    /// Returns the total time spanned by the stored latencies, or a typed
    /// [`WindowOverflow`] when the fold exceeds `u64::MAX` nanoseconds —
    /// the same contract as [`crate::SlidingWindow::try_total`], so the
    /// equivalence proptests can compare the overflow edge too.
    pub fn try_total(&self) -> Result<TimestampDelta, WindowOverflow> {
        let mut nanos: u64 = 0;
        for latency in &self.latencies {
            nanos = nanos
                .checked_add(latency.as_nanos())
                .ok_or(WindowOverflow)?;
        }
        Ok(TimestampDelta::from_nanos(nanos))
    }

    /// Returns the windowed heart rate (O(n): folds the window), mirroring
    /// [`crate::SlidingWindow::rate`]'s typed-overflow contract.
    pub fn rate(&self) -> Result<Option<HeartRate>, WindowOverflow> {
        Ok(HeartRate::from_beats_over(
            self.latencies.len() as u64,
            self.try_total()?,
        ))
    }

    /// Returns summary statistics (O(n) with a scratch allocation per call).
    pub fn statistics(&self) -> Option<RateStatistics> {
        if self.latencies.is_empty() {
            return None;
        }
        let n = self.latencies.len() as f64;
        let secs: Vec<f64> = self.latencies.iter().map(|l| l.as_secs_f64()).collect();
        let mean = secs.iter().sum::<f64>() / n;
        let variance = secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let min = secs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = secs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(RateStatistics {
            count: self.latencies.len(),
            mean_latency_secs: mean,
            latency_variance: variance,
            min_latency_secs: min,
            max_latency_secs: max,
        })
    }
}

/// The mutex-guarded channel baseline the lock-free
/// [`crate::channel`] SPSC ring is benchmarked and equivalence-tested
/// against: a `Mutex<VecDeque>` with the same capacity-bounded,
/// reject-newest backpressure contract. Every push and every drain takes
/// the lock; the drain additionally shifts out of the deque one record at
/// a time.
///
/// Both halves are the same cloneable handle (the mutex serializes all
/// access), which is exactly the generality the lock-free ring gives up to
/// get its wait-free producer.
#[derive(Debug, Clone)]
pub struct MutexChannel<T: Copy> {
    inner: std::sync::Arc<std::sync::Mutex<MutexChannelState<T>>>,
    capacity: usize,
}

#[derive(Debug)]
struct MutexChannelState<T> {
    queue: VecDeque<T>,
    rejected: u64,
    pushed: u64,
}

impl<T: Copy> MutexChannel<T> {
    /// Creates a channel holding at most `capacity` in-flight records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be at least 1");
        MutexChannel {
            inner: std::sync::Arc::new(std::sync::Mutex::new(MutexChannelState {
                queue: VecDeque::with_capacity(capacity),
                rejected: 0,
                pushed: 0,
            })),
            capacity,
        }
    }

    /// Pushes one record, rejecting it (backpressure) when the channel is
    /// full — the same contract as the lock-free producer's `try_push`.
    ///
    /// # Errors
    ///
    /// Returns the record back when the channel holds `capacity` records.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut state = self.inner.lock().expect("channel mutex poisoned");
        if state.queue.len() >= self.capacity {
            state.rejected += 1;
            return Err(value);
        }
        state.queue.push_back(value);
        state.pushed += 1;
        Ok(())
    }

    /// Drains every pending record into `out` (cleared first), oldest
    /// first, and returns how many were drained.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        out.clear();
        let mut state = self.inner.lock().expect("channel mutex poisoned");
        out.extend(state.queue.drain(..));
        out.len()
    }

    /// Drains at most `cap` pending records into `out` (cleared first),
    /// oldest first, and returns how many were drained; the rest stay
    /// queued for the next drain.
    pub fn drain_into_capped(&self, out: &mut Vec<T>, cap: usize) -> usize {
        out.clear();
        let mut state = self.inner.lock().expect("channel mutex poisoned");
        let take = state.queue.len().min(cap);
        out.extend(state.queue.drain(..take));
        take
    }

    /// Number of records currently pending.
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .expect("channel mutex poisoned")
            .queue
            .len()
    }

    /// Number of pushes rejected so far because the channel was full.
    pub fn rejected(&self) -> u64 {
        self.inner.lock().expect("channel mutex poisoned").rejected
    }

    /// Total records successfully pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.lock().expect("channel mutex poisoned").pushed
    }

    /// The channel's capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl crate::channel::BeatTransport for MutexChannel<crate::channel::BeatSample> {
    fn drain_into(&mut self, out: &mut Vec<crate::channel::BeatSample>) -> usize {
        MutexChannel::drain_into(self, out)
    }

    fn drain_into_capped(
        &mut self,
        out: &mut Vec<crate::channel::BeatSample>,
        cap: usize,
    ) -> usize {
        MutexChannel::drain_into_capped(self, out, cap)
    }

    fn pending(&self) -> usize {
        MutexChannel::pending(self)
    }

    fn capacity(&self) -> usize {
        MutexChannel::capacity(self)
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;

    #[test]
    fn mutex_channel_matches_lock_free_contract() {
        let channel = MutexChannel::new(3);
        assert_eq!(channel.capacity(), 3);
        for i in 0..3u32 {
            channel.try_push(i).unwrap();
        }
        assert_eq!(channel.try_push(9), Err(9));
        assert_eq!(channel.rejected(), 1);
        assert_eq!(channel.pushed(), 3);
        assert_eq!(channel.pending(), 3);

        let mut out = Vec::new();
        assert_eq!(channel.drain_into(&mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(channel.pending(), 0);
        channel.try_push(7).unwrap();
        assert_eq!(channel.pending(), 1);
    }
}
