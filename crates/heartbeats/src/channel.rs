//! Lock-free single-producer/single-consumer heartbeat channels.
//!
//! The original Application Heartbeats implementation decouples instrumented
//! applications from the external controller through a shared channel: the
//! application writes beat records, the PowerDial daemon reads them. This
//! module provides that channel as a wait-free SPSC ring buffer:
//!
//! * the **producer** side ([`Producer::try_push`]) is wait-free — a
//!   compare against a locally cached consumer position (refreshed with one
//!   acquire load only when the ring looks full), one slot write, one
//!   release store; on a full ring the beat is rejected (backpressure)
//!   rather than blocking the application;
//! * the **consumer** side ([`Consumer::drain_into`]) drains every pending
//!   record in one batch into a caller-owned scratch buffer, so the daemon
//!   pays the cross-core synchronization cost once per actuation quantum
//!   rather than once per beat;
//! * head and tail indices live on separate cache lines
//!   ([`CACHE_LINE_BYTES`]-aligned) so producer and consumer never false-share;
//! * records are `Copy`, the ring is fixed-capacity, and a warmed drain
//!   buffer is never reallocated: the steady state performs **zero heap
//!   allocation** on either side, matching the `no_alloc` discipline of the
//!   beat hot path.
//!
//! The mutex-guarded baseline the benchmarks and equivalence tests compare
//! against is [`crate::naive::MutexChannel`].
//!
//! # Example
//!
//! ```
//! use powerdial_heartbeats::channel::{beat_channel, BeatSample};
//! use powerdial_heartbeats::{HeartbeatTag, Timestamp, TimestampDelta};
//!
//! let (mut tx, mut rx) = beat_channel(8);
//! tx.try_push(BeatSample {
//!     tag: HeartbeatTag(0),
//!     timestamp: Timestamp::from_millis(0),
//!     latency: TimestampDelta::ZERO,
//! })
//! .unwrap();
//!
//! let mut scratch = Vec::new();
//! assert_eq!(rx.drain_into(&mut scratch), 1);
//! assert_eq!(scratch[0].tag, HeartbeatTag(0));
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::record::{HeartbeatRecord, HeartbeatTag};
use crate::time::{Timestamp, TimestampDelta};

/// Alignment used to keep the producer and consumer indices on distinct
/// cache lines. 128 bytes covers both the 64-byte lines of x86-64 and the
/// 128-byte destructive-interference granularity of recent ARM cores.
pub const CACHE_LINE_BYTES: usize = 128;

/// A value padded out to its own cache line.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// One heartbeat as carried over a channel: the compact, `Copy` subset of a
/// [`HeartbeatRecord`] the controller needs — sequence tag, emission time,
/// and the latency since the previous beat. Rates are *not* carried; the
/// daemon derives windowed rates on its side of the channel, so the producer
/// stays as thin as possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatSample {
    /// Sequence number of this heartbeat (0 for the first beat).
    pub tag: HeartbeatTag,
    /// Time at which the heartbeat was emitted.
    pub timestamp: Timestamp,
    /// Time since the previous heartbeat (zero for the first beat).
    pub latency: TimestampDelta,
}

impl BeatSample {
    /// Extracts the channel-carried subset of a monitor-produced record.
    pub fn from_record(record: &HeartbeatRecord) -> Self {
        BeatSample {
            tag: record.tag,
            timestamp: record.timestamp,
            latency: record.latency,
        }
    }
}

/// The ring storage shared by one producer/consumer pair.
///
/// Classic Lamport SPSC queue: `tail` is written only by the producer,
/// `head` only by the consumer; both are monotonically increasing u64
/// positions (never wrapped — at 10^9 beats/sec a u64 lasts ~585 years),
/// masked into the power-of-two slot array on access.
struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    capacity: u64,
    /// Next position the consumer will read. Written by the consumer with
    /// `Release` (after it has finished reading the freed slots), read by
    /// the producer with `Acquire` (before it overwrites them).
    head: CachePadded<AtomicU64>,
    /// Next position the producer will write. Written by the producer with
    /// `Release` (after the slot contents are in place), read by the
    /// consumer with `Acquire` (before it reads them).
    tail: CachePadded<AtomicU64>,
}

// SAFETY: the producer and consumer halves coordinate all slot access
// through the acquire/release pairs on `head` and `tail`; a slot is written
// only while it is exclusively owned by the producer and read only while it
// is exclusively owned by the consumer. `T: Copy` rules out drop hazards.
unsafe impl<T: Copy + Send> Sync for Shared<T> {}
unsafe impl<T: Copy + Send> Send for Shared<T> {}

/// Creates a lock-free SPSC channel holding at most `capacity` in-flight
/// records of any `Copy` type.
///
/// The backing slot array is rounded up to a power of two, but the channel
/// rejects pushes beyond exactly `capacity` pending records, so backpressure
/// semantics are independent of the rounding.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_channel<T: Copy + Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "channel capacity must be at least 1");
    let slot_count = capacity.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..slot_count)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        slots,
        mask: slot_count as u64 - 1,
        capacity: capacity as u64,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            cached_head: 0,
            rejected: 0,
        },
        Consumer { shared, head: 0 },
    )
}

/// Creates a [`BeatSample`] channel (the concrete instantiation the
/// heartbeat framework uses).
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn beat_channel(capacity: usize) -> (BeatProducer, BeatConsumer) {
    spsc_channel(capacity)
}

/// The producer (application) half of a [`BeatSample`] channel.
pub type BeatProducer = Producer<BeatSample>;
/// The consumer (daemon) half of a [`BeatSample`] channel.
pub type BeatConsumer = Consumer<BeatSample>;

/// The seam between beat sources and the control side: anything that can
/// batch-drain pending [`BeatSample`]s into a reused scratch buffer.
///
/// Implemented by the in-heap SPSC [`Consumer`], the cross-process
/// [`crate::shm::ShmConsumer`], and the mutex-guarded baseline
/// [`crate::naive::MutexChannel`], so registries, daemons, and benchmarks
/// can treat all transports identically. Implementations must drain oldest
/// first and must not allocate once `out` has grown to the transport's
/// capacity.
pub trait BeatTransport {
    /// Drains every pending beat into `out` (cleared first), oldest first,
    /// returning how many were drained.
    fn drain_into(&mut self, out: &mut Vec<BeatSample>) -> usize;

    /// Drains at most `cap` pending beats into `out` (cleared first),
    /// oldest first, returning how many were drained. Beats beyond the cap
    /// stay queued for the next drain; callers wanting everything pass
    /// `usize::MAX` (or use [`drain_into`](BeatTransport::drain_into)).
    fn drain_into_capped(&mut self, out: &mut Vec<BeatSample>, cap: usize) -> usize;

    /// Beats currently pending.
    fn pending(&self) -> usize;

    /// The transport's capacity in records (pushes beyond it see
    /// backpressure).
    fn capacity(&self) -> usize;
}

impl BeatTransport for Consumer<BeatSample> {
    fn drain_into(&mut self, out: &mut Vec<BeatSample>) -> usize {
        Consumer::drain_into(self, out)
    }

    fn drain_into_capped(&mut self, out: &mut Vec<BeatSample>, cap: usize) -> usize {
        Consumer::drain_into_capped(self, out, cap)
    }

    fn pending(&self) -> usize {
        Consumer::pending(self)
    }

    fn capacity(&self) -> usize {
        Consumer::capacity(self)
    }
}

impl<T: Copy> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("pushed", &self.tail)
            .field("rejected", &self.rejected)
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl<T: Copy> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("drained", &self.head)
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

/// The producer half of an SPSC channel. Not cloneable: exactly one thread
/// may push at a time (move the producer to hand it off).
pub struct Producer<T: Copy> {
    shared: Arc<Shared<T>>,
    /// Local copy of the producer position (the producer is its only
    /// writer, so it never needs to load the atomic).
    tail: u64,
    /// Last observed consumer position; refreshed from the shared atomic
    /// only when the ring looks full, so steady-state pushes touch a single
    /// shared cache line (the slot) plus the producer-owned tail.
    cached_head: u64,
    rejected: u64,
}

impl<T: Copy + Send> Producer<T> {
    /// Attempts to push one record. Wait-free: never blocks, never spins,
    /// never allocates.
    ///
    /// # Errors
    ///
    /// Returns the record back when the ring is full (the consumer has not
    /// drained recently enough); the rejected-push count is tracked and
    /// available via [`Producer::rejected`].
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        if self.tail - self.cached_head >= self.shared.capacity {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.tail - self.cached_head >= self.shared.capacity {
                self.rejected += 1;
                return Err(value);
            }
        }
        let slot = &self.shared.slots[(self.tail & self.shared.mask) as usize];
        // SAFETY: slots in [head, head+capacity) ∋ tail are owned by the
        // producer until the matching release store below publishes them.
        unsafe { (*slot.get()).write(value) };
        self.tail += 1;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of records currently in flight (pushed but not yet drained).
    /// Producer-side view; exact, because only the consumer can shrink it
    /// and shrinking is observed on the next full-ring check.
    pub fn in_flight(&self) -> u64 {
        self.tail - self.shared.head.0.load(Ordering::Acquire)
    }

    /// Number of pushes rejected so far because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total records successfully pushed.
    pub fn pushed(&self) -> u64 {
        self.tail
    }

    /// The channel's capacity in records.
    pub fn capacity(&self) -> usize {
        self.shared.capacity as usize
    }
}

/// The consumer half of an SPSC channel. Not cloneable: exactly one thread
/// may drain at a time.
pub struct Consumer<T: Copy> {
    shared: Arc<Shared<T>>,
    /// Local copy of the consumer position (the consumer is its only
    /// writer).
    head: u64,
}

impl<T: Copy + Send> Consumer<T> {
    /// Drains every pending record into `out` (cleared first), oldest
    /// first, and returns how many were drained.
    ///
    /// `out` is a reusable scratch buffer: it grows to at most the channel
    /// capacity on early calls and is never reallocated after that, so the
    /// steady-state drain performs no heap allocation.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        self.drain_into_capped(out, usize::MAX)
    }

    /// Drains at most `cap` pending records into `out` (cleared first),
    /// oldest first, and returns how many were drained. Records beyond the
    /// cap stay in the ring for the next drain — the daemon's fairness
    /// valve: one flooded ring cannot monopolize a shard's quantum.
    ///
    /// Same allocation contract as [`drain_into`](Consumer::drain_into).
    pub fn drain_into_capped(&mut self, out: &mut Vec<T>, cap: usize) -> usize {
        out.clear();
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        let take = ((tail - self.head) as usize).min(cap);
        if take == 0 {
            return 0;
        }
        out.reserve(take);
        let end = self.head + take as u64;
        for position in self.head..end {
            let slot = &self.shared.slots[(position & self.shared.mask) as usize];
            // SAFETY: positions in [head, tail) ⊇ [head, end) were published
            // by the producer's release store, which the acquire load above
            // synchronized with; the producer will not overwrite them until
            // the release store of `head` below frees them.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        self.head = end;
        self.shared.head.0.store(end, Ordering::Release);
        take
    }

    /// Pops a single pending record, oldest first.
    pub fn try_pop(&mut self) -> Option<T> {
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        if tail == self.head {
            return None;
        }
        let slot = &self.shared.slots[(self.head & self.shared.mask) as usize];
        // SAFETY: as in `drain_into`.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Number of records currently pending. Consumer-side view.
    pub fn pending(&self) -> usize {
        (self.shared.tail.0.load(Ordering::Acquire) - self.head) as usize
    }

    /// True when no records are pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total records drained so far.
    pub fn drained(&self) -> u64 {
        self.head
    }

    /// The channel's capacity in records.
    pub fn capacity(&self) -> usize {
        self.shared.capacity as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tag: u64, millis: u64) -> BeatSample {
        BeatSample {
            tag: HeartbeatTag(tag),
            timestamp: Timestamp::from_millis(millis),
            latency: TimestampDelta::from_millis(if tag == 0 { 0 } else { 10 }),
        }
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let (mut tx, mut rx) = beat_channel(16);
        for i in 0..10u64 {
            tx.try_push(sample(i, i * 10)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 10);
        let tags: Vec<u64> = out.iter().map(|s| s.tag.value()).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.drain_into(&mut out), 0);
        assert!(rx.is_empty());
    }

    #[test]
    fn capped_drain_leaves_the_rest_queued() {
        let (mut tx, mut rx) = spsc_channel::<u64>(16);
        for i in 0..10 {
            tx.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into_capped(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.pending(), 6);
        // The freed slots are immediately reusable by the producer.
        for i in 10..14 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(rx.drain_into_capped(&mut out, usize::MAX), 10);
        assert_eq!(out, (4..14).collect::<Vec<_>>());
        assert_eq!(rx.drain_into_capped(&mut out, 0), 0);
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let (mut tx, mut rx) = spsc_channel::<u64>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99));
        assert_eq!(tx.try_push(100), Err(100));
        assert_eq!(tx.rejected(), 2);
        assert_eq!(tx.pushed(), 4);
        assert_eq!(tx.in_flight(), 4);

        // Draining frees the whole ring.
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        tx.try_push(5).unwrap();
        assert_eq!(tx.in_flight(), 1);
    }

    #[test]
    fn capacity_is_exact_even_when_rounded() {
        // Requested capacity 5 rounds the slot array to 8, but the sixth
        // in-flight record must still be rejected.
        let (mut tx, mut rx) = spsc_channel::<u32>(5);
        assert_eq!(tx.capacity(), 5);
        assert_eq!(rx.capacity(), 5);
        for i in 0..5 {
            tx.try_push(i).unwrap();
        }
        assert!(tx.try_push(5).is_err());
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_pop_interleaves_with_drain() {
        let (mut tx, mut rx) = spsc_channel::<u64>(8);
        for i in 0..6 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(rx.try_pop(), Some(0));
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.pending(), 4);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 4);
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(rx.try_pop(), None);
        assert_eq!(rx.drained(), 6);
    }

    #[test]
    fn wraparound_keeps_fifo_order() {
        let (mut tx, mut rx) = spsc_channel::<u64>(4);
        let mut out = Vec::new();
        let mut expected = 0u64;
        for round in 0..100u64 {
            let burst = 1 + (round % 4);
            for _ in 0..burst {
                tx.try_push(tx.pushed()).unwrap();
            }
            rx.drain_into(&mut out);
            for value in &out {
                assert_eq!(*value, expected);
                expected += 1;
            }
        }
        assert_eq!(tx.rejected(), 0);
    }

    #[test]
    fn beat_sample_from_record_round_trips() {
        let record = HeartbeatRecord {
            tag: HeartbeatTag(7),
            timestamp: Timestamp::from_millis(70),
            latency: TimestampDelta::from_millis(10),
            instant_rate: None,
            window_rate: None,
            global_rate: None,
        };
        let sample = BeatSample::from_record(&record);
        assert_eq!(sample.tag, HeartbeatTag(7));
        assert_eq!(sample.timestamp, Timestamp::from_millis(70));
        assert_eq!(sample.latency, TimestampDelta::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = spsc_channel::<u8>(0);
    }
}
