//! Traced values: numbers that carry the set of parameters that influenced
//! them.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::influence_set::InfluenceSet;

/// A floating-point value tagged with the configuration parameters that
/// influenced it.
///
/// Arithmetic between traced values unions their influence sets, mirroring
/// the data-flow instrumentation the paper's LLVM pass inserts. Constants
/// (created with [`Traced::constant`] or via `From<f64>`) carry an empty
/// influence set.
///
/// # Example
///
/// ```
/// use powerdial_influence::Tracer;
///
/// let mut tracer = Tracer::new("example");
/// let p = tracer.register_parameter("n_sims");
/// let n = tracer.parameter_value(p, 1000.0);
/// let per_item = n / 4.0;            // still influenced by `n_sims`
/// let unrelated = powerdial_influence::Traced::constant(7.0);
/// assert!(per_item.influence().contains(p));
/// assert!(unrelated.influence().is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Traced {
    value: f64,
    influence: InfluenceSet,
}

impl Traced {
    /// Creates a constant value with no parameter influence.
    pub const fn constant(value: f64) -> Self {
        Traced {
            value,
            influence: InfluenceSet::empty(),
        }
    }

    /// Creates a value with an explicit influence set. Used by the tracer
    /// when materializing parameter values and variable reads.
    pub const fn with_influence(value: f64, influence: InfluenceSet) -> Self {
        Traced { value, influence }
    }

    /// The numeric value.
    pub const fn value(self) -> f64 {
        self.value
    }

    /// The parameters that influenced this value.
    pub const fn influence(self) -> InfluenceSet {
        self.influence
    }

    /// Applies a unary function to the value, preserving the influence set
    /// (the traced analogue of calling a math function).
    pub fn map(self, f: impl FnOnce(f64) -> f64) -> Traced {
        Traced {
            value: f(self.value),
            influence: self.influence,
        }
    }

    /// Combines two traced values with a binary function, unioning their
    /// influence sets.
    pub fn combine(self, other: Traced, f: impl FnOnce(f64, f64) -> f64) -> Traced {
        Traced {
            value: f(self.value, other.value),
            influence: self.influence | other.influence,
        }
    }

    /// Rounds to the nearest integer, preserving influence. Mirrors the
    /// integer control variables (e.g. loop trip counts) in the paper's
    /// applications.
    pub fn round(self) -> Traced {
        self.map(f64::round)
    }
}

impl From<f64> for Traced {
    fn from(value: f64) -> Self {
        Traced::constant(value)
    }
}

impl fmt::Display for Traced {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.value, self.influence)
    }
}

macro_rules! impl_traced_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Traced {
            type Output = Traced;

            fn $method(self, rhs: Traced) -> Traced {
                Traced {
                    value: self.value $op rhs.value,
                    influence: self.influence | rhs.influence,
                }
            }
        }

        impl $trait<f64> for Traced {
            type Output = Traced;

            fn $method(self, rhs: f64) -> Traced {
                Traced {
                    value: self.value $op rhs,
                    influence: self.influence,
                }
            }
        }

        impl $trait<Traced> for f64 {
            type Output = Traced;

            fn $method(self, rhs: Traced) -> Traced {
                Traced {
                    value: self $op rhs.value,
                    influence: rhs.influence,
                }
            }
        }
    };
}

impl_traced_binop!(Add, add, +);
impl_traced_binop!(Sub, sub, -);
impl_traced_binop!(Mul, mul, *);
impl_traced_binop!(Div, div, /);

impl Neg for Traced {
    type Output = Traced;

    fn neg(self) -> Traced {
        Traced {
            value: -self.value,
            influence: self.influence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence_set::ParamId;

    fn traced(value: f64, param: usize) -> Traced {
        Traced::with_influence(value, InfluenceSet::singleton(ParamId(param)))
    }

    #[test]
    fn constants_have_no_influence() {
        let c = Traced::constant(3.5);
        assert_eq!(c.value(), 3.5);
        assert!(c.influence().is_empty());
        let from: Traced = 2.0.into();
        assert!(from.influence().is_empty());
    }

    #[test]
    fn arithmetic_propagates_influence() {
        let a = traced(2.0, 0);
        let b = traced(3.0, 1);
        let sum = a + b;
        assert_eq!(sum.value(), 5.0);
        assert!(sum.influence().contains(ParamId(0)));
        assert!(sum.influence().contains(ParamId(1)));

        let product = a * 4.0;
        assert_eq!(product.value(), 8.0);
        assert_eq!(product.influence(), a.influence());

        let quotient = 10.0 / b;
        assert!((quotient.value() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(quotient.influence(), b.influence());

        let negated = -a;
        assert_eq!(negated.value(), -2.0);
        assert_eq!(negated.influence(), a.influence());

        let difference = a - b;
        assert_eq!(difference.value(), -1.0);
        assert_eq!(difference.influence().len(), 2);
    }

    #[test]
    fn map_and_combine_preserve_influence() {
        let a = traced(4.0, 2);
        let sqrt = a.map(f64::sqrt);
        assert_eq!(sqrt.value(), 2.0);
        assert_eq!(sqrt.influence(), a.influence());

        let b = traced(5.0, 3);
        let max = a.combine(b, f64::max);
        assert_eq!(max.value(), 5.0);
        assert_eq!(max.influence().len(), 2);
    }

    #[test]
    fn round_produces_integer_value() {
        let a = traced(2.7, 0);
        assert_eq!(a.round().value(), 3.0);
        assert_eq!(a.round().influence(), a.influence());
    }

    #[test]
    fn display_shows_value_and_influence() {
        let a = traced(1.5, 4);
        assert_eq!(a.to_string(), "1.5 {param#4}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::influence_set::ParamId;
    use proptest::prelude::*;

    proptest! {
        /// The influence of any arithmetic combination is exactly the union
        /// of the operand influences, regardless of the values involved.
        #[test]
        fn influence_is_union_of_operands(
            a in -1e6f64..1e6,
            b in -1e6f64..1e6,
            pa in 0usize..64,
            pb in 0usize..64,
        ) {
            let ta = Traced::with_influence(a, InfluenceSet::singleton(ParamId(pa)));
            let tb = Traced::with_influence(b, InfluenceSet::singleton(ParamId(pb)));
            let expected = ta.influence() | tb.influence();
            prop_assert_eq!((ta + tb).influence(), expected);
            prop_assert_eq!((ta - tb).influence(), expected);
            prop_assert_eq!((ta * tb).influence(), expected);
            prop_assert_eq!((ta / tb).influence(), expected);
        }

        /// Scalar operations never add influence.
        #[test]
        fn scalars_add_no_influence(a in -1e6f64..1e6, s in -1e3f64..1e3, p in 0usize..64) {
            let ta = Traced::with_influence(a, InfluenceSet::singleton(ParamId(p)));
            prop_assert_eq!((ta + s).influence(), ta.influence());
            prop_assert_eq!((s * ta).influence(), ta.influence());
        }
    }
}
