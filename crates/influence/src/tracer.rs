//! The tracing session: parameters, variables, accesses, and phases.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::InfluenceError;
use crate::influence_set::{InfluenceSet, ParamId, MAX_PARAMS};
use crate::traced::Traced;

/// Handle to a named variable declared with a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(usize);

impl VarId {
    /// Returns the raw index of the variable.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a raw index. Only used by the analysis,
    /// which walks `TraceLog::variables` in declaration order.
    pub(crate) const fn from_index(index: usize) -> VarId {
        VarId(index)
    }
}

/// Execution phase relative to the first heartbeat.
///
/// PowerDial's checks are phrased in terms of this boundary: control
/// variables are written during [`Phase::Initialization`] and only read
/// during [`Phase::MainLoop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Before the application's first heartbeat (startup / configuration
    /// parsing).
    Initialization,
    /// After the first heartbeat (the main control loop).
    MainLoop,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Initialization => write!(f, "initialization"),
            Phase::MainLoop => write!(f, "main loop"),
        }
    }
}

/// Whether an access read or wrote a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The variable's value was read.
    Read,
    /// The variable's value was written.
    Write,
}

/// One recorded access to a traced variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// The accessed variable.
    pub variable: VarId,
    /// Read or write.
    pub kind: AccessKind,
    /// The phase in which the access happened.
    pub phase: Phase,
    /// A label identifying the program site of the access (the analogue of
    /// the source statement in the paper's control-variable report).
    pub site: String,
}

/// The value of a traced variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VariableValue {
    /// A scalar value (`int`, `long`, `float`, `double` in the paper).
    Scalar(f64),
    /// A vector value (`STL vector` in the paper).
    Vector(Vec<f64>),
}

impl VariableValue {
    /// Returns the scalar value, or the first element of a vector.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            VariableValue::Scalar(v) => Some(*v),
            VariableValue::Vector(v) => v.first().copied(),
        }
    }

    /// Returns the value as a vector (a scalar becomes a one-element vector).
    pub fn to_vector(&self) -> Vec<f64> {
        match self {
            VariableValue::Scalar(v) => vec![*v],
            VariableValue::Vector(v) => v.clone(),
        }
    }
}

impl fmt::Display for VariableValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariableValue::Scalar(v) => write!(f, "{v}"),
            VariableValue::Vector(v) => write!(f, "{v:?}"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VariableState {
    name: String,
    value: Option<VariableValue>,
    influence: InfluenceSet,
    value_at_first_heartbeat: Option<VariableValue>,
    influence_at_first_heartbeat: InfluenceSet,
}

/// A dynamic influence-tracing session over one run of an application.
///
/// The tracer plays the role of the paper's LLVM instrumentation: it tracks
/// which configuration parameters influence which named variables and records
/// every variable access together with the phase (before or after the first
/// heartbeat) in which it occurred. See the crate-level documentation for a
/// complete example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tracer {
    application: String,
    parameters: Vec<String>,
    variables: Vec<VariableState>,
    accesses: Vec<AccessRecord>,
    phase: Phase,
    heartbeats: u64,
}

impl Tracer {
    /// Starts a tracing session for the named application.
    pub fn new(application: impl Into<String>) -> Self {
        Tracer {
            application: application.into(),
            parameters: Vec::new(),
            variables: Vec::new(),
            accesses: Vec::new(),
            phase: Phase::Initialization,
            heartbeats: 0,
        }
    }

    /// Registers a configuration parameter as an influence source.
    ///
    /// # Panics
    ///
    /// Panics if more than 128 parameters are registered.
    pub fn register_parameter(&mut self, name: impl Into<String>) -> ParamId {
        assert!(
            self.parameters.len() < MAX_PARAMS,
            "a tracer supports at most {MAX_PARAMS} parameters"
        );
        let id = ParamId(self.parameters.len());
        self.parameters.push(name.into());
        id
    }

    /// Materializes the runtime value of a parameter as a traced value
    /// influenced by that parameter.
    pub fn parameter_value(&self, param: ParamId, value: f64) -> Traced {
        Traced::with_influence(value, InfluenceSet::singleton(param))
    }

    /// Declares a named variable whose accesses will be traced.
    pub fn declare_variable(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(VariableState {
            name: name.into(),
            value: None,
            influence: InfluenceSet::empty(),
            value_at_first_heartbeat: None,
            influence_at_first_heartbeat: InfluenceSet::empty(),
        });
        id
    }

    /// Writes a scalar value to a variable, recording the access.
    ///
    /// # Errors
    ///
    /// Returns [`InfluenceError::UnknownVariable`] for a foreign handle.
    pub fn write_variable(
        &mut self,
        var: VarId,
        value: Traced,
        site: impl Into<String>,
    ) -> Result<(), InfluenceError> {
        let phase = self.phase;
        let state = self.variable_mut(var)?;
        state.value = Some(VariableValue::Scalar(value.value()));
        state.influence = value.influence();
        self.accesses.push(AccessRecord {
            variable: var,
            kind: AccessKind::Write,
            phase,
            site: site.into(),
        });
        Ok(())
    }

    /// Writes a vector value to a variable; the variable's influence is the
    /// union of the elements' influences.
    ///
    /// # Errors
    ///
    /// Returns [`InfluenceError::UnknownVariable`] for a foreign handle.
    pub fn write_vector_variable(
        &mut self,
        var: VarId,
        values: &[Traced],
        site: impl Into<String>,
    ) -> Result<(), InfluenceError> {
        let phase = self.phase;
        let influence = values
            .iter()
            .fold(InfluenceSet::empty(), |acc, v| acc | v.influence());
        let state = self.variable_mut(var)?;
        state.value = Some(VariableValue::Vector(
            values.iter().map(|v| v.value()).collect(),
        ));
        state.influence = influence;
        self.accesses.push(AccessRecord {
            variable: var,
            kind: AccessKind::Write,
            phase,
            site: site.into(),
        });
        Ok(())
    }

    /// Reads a variable's scalar value (the first element for vector
    /// variables), recording the access.
    ///
    /// # Errors
    ///
    /// Returns [`InfluenceError::UnknownVariable`] for a foreign handle or
    /// [`InfluenceError::ReadBeforeWrite`] if the variable was never written.
    pub fn read_variable(
        &mut self,
        var: VarId,
        site: impl Into<String>,
    ) -> Result<Traced, InfluenceError> {
        let phase = self.phase;
        let state = self.variable(var)?;
        let value = state
            .value
            .as_ref()
            .and_then(VariableValue::as_scalar)
            .ok_or_else(|| InfluenceError::ReadBeforeWrite {
                name: state.name.clone(),
            })?;
        let influence = state.influence;
        self.accesses.push(AccessRecord {
            variable: var,
            kind: AccessKind::Read,
            phase,
            site: site.into(),
        });
        Ok(Traced::with_influence(value, influence))
    }

    /// Reads a variable's value as a vector of traced values, recording the
    /// access.
    ///
    /// # Errors
    ///
    /// Returns [`InfluenceError::UnknownVariable`] for a foreign handle or
    /// [`InfluenceError::ReadBeforeWrite`] if the variable was never written.
    pub fn read_vector_variable(
        &mut self,
        var: VarId,
        site: impl Into<String>,
    ) -> Result<Vec<Traced>, InfluenceError> {
        let phase = self.phase;
        let state = self.variable(var)?;
        let value = state
            .value
            .as_ref()
            .ok_or_else(|| InfluenceError::ReadBeforeWrite {
                name: state.name.clone(),
            })?
            .to_vector();
        let influence = state.influence;
        self.accesses.push(AccessRecord {
            variable: var,
            kind: AccessKind::Read,
            phase,
            site: site.into(),
        });
        Ok(value
            .into_iter()
            .map(|v| Traced::with_influence(v, influence))
            .collect())
    }

    /// Marks the application's first heartbeat, switching the phase from
    /// initialization to the main control loop. Subsequent calls count as
    /// ordinary heartbeats.
    pub fn first_heartbeat(&mut self) {
        if self.phase == Phase::Initialization {
            // Snapshot every variable: the paper identifies control variables
            // by the values they hold when the first heartbeat is emitted.
            for variable in &mut self.variables {
                variable.value_at_first_heartbeat = variable.value.clone();
                variable.influence_at_first_heartbeat = variable.influence;
            }
        }
        self.phase = Phase::MainLoop;
        self.heartbeats += 1;
    }

    /// Records a heartbeat in the main loop. The first call behaves like
    /// [`Tracer::first_heartbeat`].
    pub fn heartbeat(&mut self) {
        if self.heartbeats == 0 {
            self.first_heartbeat();
        } else {
            self.heartbeats += 1;
        }
    }

    /// The current execution phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Number of heartbeats recorded so far.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// The registered parameter names, in registration order.
    pub fn parameter_names(&self) -> Vec<&str> {
        self.parameters.iter().map(String::as_str).collect()
    }

    /// Finishes the session and produces the trace log.
    pub fn finish(self) -> TraceLog {
        TraceLog {
            application: self.application,
            parameters: self.parameters,
            variables: self
                .variables
                .into_iter()
                .map(|v| TracedVariable {
                    name: v.name,
                    value_at_first_heartbeat: v.value_at_first_heartbeat,
                    influence: v.influence_at_first_heartbeat,
                    final_value: v.value,
                    final_influence: v.influence,
                })
                .collect(),
            accesses: self.accesses,
            heartbeats: self.heartbeats,
        }
    }

    fn variable(&self, var: VarId) -> Result<&VariableState, InfluenceError> {
        self.variables
            .get(var.0)
            .ok_or(InfluenceError::UnknownVariable { index: var.0 })
    }

    fn variable_mut(&mut self, var: VarId) -> Result<&mut VariableState, InfluenceError> {
        self.variables
            .get_mut(var.0)
            .ok_or(InfluenceError::UnknownVariable { index: var.0 })
    }
}

/// A variable as it appears in a finished [`TraceLog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedVariable {
    /// The variable's declared name.
    pub name: String,
    /// The value the variable held when the first heartbeat was emitted —
    /// the value PowerDial records for each dynamic-knob setting.
    pub value_at_first_heartbeat: Option<VariableValue>,
    /// The parameters that influenced the value held at the first heartbeat.
    pub influence: InfluenceSet,
    /// Its last written value, if any write occurred.
    pub final_value: Option<VariableValue>,
    /// The parameters that influenced its last written value.
    pub final_influence: InfluenceSet,
}

/// The complete record of one traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Name of the traced application.
    pub application: String,
    /// Registered parameter names, indexed by [`ParamId`].
    pub parameters: Vec<String>,
    /// Declared variables, indexed by [`VarId`].
    pub variables: Vec<TracedVariable>,
    /// Every recorded variable access in program order.
    pub accesses: Vec<AccessRecord>,
    /// Number of heartbeats the run emitted.
    pub heartbeats: u64,
}

impl TraceLog {
    /// The name of the parameter with the given id, if registered.
    pub fn parameter_name(&self, param: ParamId) -> Option<&str> {
        self.parameters.get(param.index()).map(String::as_str)
    }

    /// The variable with the given id, if declared.
    pub fn variable(&self, var: VarId) -> Option<&TracedVariable> {
        self.variables.get(var.index())
    }

    /// Iterates over accesses of a given variable.
    pub fn accesses_of(&self, var: VarId) -> impl Iterator<Item = &AccessRecord> {
        self.accesses.iter().filter(move |a| a.variable == var)
    }

    /// Returns true when the variable was read in the main loop.
    pub fn read_in_main_loop(&self, var: VarId) -> bool {
        self.accesses_of(var)
            .any(|a| a.kind == AccessKind::Read && a.phase == Phase::MainLoop)
    }

    /// Returns the first main-loop write to the variable, if any.
    pub fn main_loop_write(&self, var: VarId) -> Option<&AccessRecord> {
        self.accesses_of(var)
            .find(|a| a.kind == AccessKind::Write && a.phase == Phase::MainLoop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_values_carry_their_parameter() {
        let mut tracer = Tracer::new("app");
        let p = tracer.register_parameter("p");
        let value = tracer.parameter_value(p, 5.0);
        assert_eq!(value.value(), 5.0);
        assert!(value.influence().contains(p));
        assert_eq!(tracer.parameter_names(), vec!["p"]);
    }

    #[test]
    fn variable_round_trip_preserves_value_and_influence() {
        let mut tracer = Tracer::new("app");
        let p = tracer.register_parameter("quality");
        let v = tracer.declare_variable("trip_count");
        let derived = tracer.parameter_value(p, 3.0) * 10.0 + 1.0;
        tracer.write_variable(v, derived, "init").unwrap();
        let read = tracer.read_variable(v, "loop").unwrap();
        assert_eq!(read.value(), 31.0);
        assert!(read.influence().contains(p));
    }

    #[test]
    fn read_before_write_is_an_error() {
        let mut tracer = Tracer::new("app");
        let v = tracer.declare_variable("uninitialized");
        let err = tracer.read_variable(v, "loop").unwrap_err();
        assert!(matches!(err, InfluenceError::ReadBeforeWrite { .. }));
    }

    #[test]
    fn foreign_variable_handles_are_rejected() {
        let mut tracer = Tracer::new("app");
        let mut other = Tracer::new("other");
        let foreign = other.declare_variable("foreign");
        let _local = tracer.declare_variable("local");
        // `foreign` has index 0 which exists here, so create one more to get
        // an out-of-range handle.
        let out_of_range = VarId(99);
        assert!(matches!(
            tracer.read_variable(out_of_range, "x"),
            Err(InfluenceError::UnknownVariable { index: 99 })
        ));
        // An in-range foreign handle is indistinguishable by design (the
        // tracer is per-run); it resolves to the local variable.
        assert!(tracer
            .write_variable(foreign, Traced::constant(1.0), "x")
            .is_ok());
    }

    #[test]
    fn phases_switch_at_first_heartbeat() {
        let mut tracer = Tracer::new("app");
        assert_eq!(tracer.phase(), Phase::Initialization);
        tracer.heartbeat();
        assert_eq!(tracer.phase(), Phase::MainLoop);
        assert_eq!(tracer.heartbeats(), 1);
        tracer.heartbeat();
        assert_eq!(tracer.heartbeats(), 2);
    }

    #[test]
    fn accesses_record_phase_and_site() {
        let mut tracer = Tracer::new("app");
        let p = tracer.register_parameter("n");
        let v = tracer.declare_variable("n_var");
        let value = tracer.parameter_value(p, 2.0);
        tracer.write_variable(v, value, "startup").unwrap();
        tracer.first_heartbeat();
        tracer.read_variable(v, "iteration").unwrap();
        let log = tracer.finish();

        assert_eq!(log.accesses.len(), 2);
        assert_eq!(log.accesses[0].kind, AccessKind::Write);
        assert_eq!(log.accesses[0].phase, Phase::Initialization);
        assert_eq!(log.accesses[0].site, "startup");
        assert_eq!(log.accesses[1].kind, AccessKind::Read);
        assert_eq!(log.accesses[1].phase, Phase::MainLoop);
        assert!(log.read_in_main_loop(v));
        assert!(log.main_loop_write(v).is_none());
        assert_eq!(log.parameter_name(p), Some("n"));
        assert_eq!(log.variable(v).unwrap().name, "n_var");
    }

    #[test]
    fn vector_variables_union_element_influence() {
        let mut tracer = Tracer::new("app");
        let p0 = tracer.register_parameter("a");
        let p1 = tracer.register_parameter("b");
        let v = tracer.declare_variable("weights");
        let elements = vec![
            tracer.parameter_value(p0, 1.0),
            tracer.parameter_value(p1, 2.0),
        ];
        tracer.write_vector_variable(v, &elements, "init").unwrap();
        let read = tracer.read_vector_variable(v, "loop").unwrap();
        assert_eq!(read.len(), 2);
        assert!(read[0].influence().contains(p0));
        assert!(read[0].influence().contains(p1));
        assert_eq!(read[1].value(), 2.0);
        // Scalar read of a vector variable returns its first element.
        let scalar = tracer.read_variable(v, "loop2").unwrap();
        assert_eq!(scalar.value(), 1.0);
    }

    #[test]
    fn main_loop_writes_are_visible_in_the_log() {
        let mut tracer = Tracer::new("app");
        let v = tracer.declare_variable("counter");
        tracer
            .write_variable(v, Traced::constant(0.0), "init")
            .unwrap();
        tracer.first_heartbeat();
        tracer
            .write_variable(v, Traced::constant(1.0), "loop_body")
            .unwrap();
        let log = tracer.finish();
        let write = log.main_loop_write(v).unwrap();
        assert_eq!(write.site, "loop_body");
    }

    #[test]
    fn variable_value_conversions() {
        assert_eq!(VariableValue::Scalar(2.0).as_scalar(), Some(2.0));
        assert_eq!(VariableValue::Vector(vec![3.0, 4.0]).as_scalar(), Some(3.0));
        assert_eq!(VariableValue::Vector(vec![]).as_scalar(), None);
        assert_eq!(VariableValue::Scalar(5.0).to_vector(), vec![5.0]);
        assert_eq!(VariableValue::Scalar(5.0).to_string(), "5");
        assert_eq!(VariableValue::Vector(vec![1.0]).to_string(), "[1.0]");
    }
}
