//! Error type for influence tracing and control-variable analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by the influence tracer and the control-variable checks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InfluenceError {
    /// A variable handle does not belong to this tracer.
    UnknownVariable {
        /// The raw variable index that failed to resolve.
        index: usize,
    },
    /// A variable was read before it was ever written.
    ReadBeforeWrite {
        /// Name of the offending variable.
        name: String,
    },
    /// The analysis was given no traces.
    NoTraces,
    /// A candidate control variable is influenced by parameters outside the
    /// specified set, violating the *pure* condition.
    ImpureVariable {
        /// Name of the offending variable.
        name: String,
    },
    /// A candidate control variable is written after the first heartbeat,
    /// violating the *constant* condition.
    NonConstantVariable {
        /// Name of the offending variable.
        name: String,
        /// Label of the program site that performed the write.
        site: String,
    },
    /// Different knob settings produced different control-variable sets,
    /// violating the *consistent* condition.
    InconsistentVariableSets {
        /// Control variables found in the first trace.
        expected: Vec<String>,
        /// Control variables found in the offending trace.
        found: Vec<String>,
        /// Index of the offending trace.
        trace_index: usize,
    },
    /// No control variables survived the checks; the specified parameters do
    /// not influence the main control loop.
    NoControlVariables,
    /// A specified parameter never influenced any value in the trace.
    UnusedParameter {
        /// Name of the parameter that had no influence.
        name: String,
    },
}

impl fmt::Display for InfluenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfluenceError::UnknownVariable { index } => {
                write!(f, "variable handle {index} is not registered with this tracer")
            }
            InfluenceError::ReadBeforeWrite { name } => {
                write!(f, "variable `{name}` was read before any write")
            }
            InfluenceError::NoTraces => write!(f, "control-variable analysis requires at least one trace"),
            InfluenceError::ImpureVariable { name } => write!(
                f,
                "variable `{name}` is influenced by parameters outside the specified set"
            ),
            InfluenceError::NonConstantVariable { name, site } => write!(
                f,
                "variable `{name}` is written after the first heartbeat at `{site}`"
            ),
            InfluenceError::InconsistentVariableSets {
                expected,
                found,
                trace_index,
            } => write!(
                f,
                "trace {trace_index} produced control variables {found:?} but earlier traces produced {expected:?}"
            ),
            InfluenceError::NoControlVariables => write!(
                f,
                "no control variables found: the specified parameters do not influence the main loop"
            ),
            InfluenceError::UnusedParameter { name } => {
                write!(f, "parameter `{name}` influenced no traced value")
            }
        }
    }
}

impl Error for InfluenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty_and_unterminated() {
        let errors = [
            InfluenceError::UnknownVariable { index: 3 },
            InfluenceError::ReadBeforeWrite { name: "x".into() },
            InfluenceError::NoTraces,
            InfluenceError::ImpureVariable { name: "x".into() },
            InfluenceError::NonConstantVariable {
                name: "x".into(),
                site: "loop".into(),
            },
            InfluenceError::InconsistentVariableSets {
                expected: vec!["a".into()],
                found: vec!["b".into()],
                trace_index: 1,
            },
            InfluenceError::NoControlVariables,
            InfluenceError::UnusedParameter { name: "p".into() },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<InfluenceError>();
    }
}
