//! Dynamic influence tracing for identifying control variables.
//!
//! PowerDial finds the *control variables* backing a set of configuration
//! parameters by running an instrumented version of the application and
//! tracing how the parameters influence the values it computes (Section 2.1
//! of the paper). The original implementation instruments C/C++ with LLVM;
//! this crate provides the equivalent runtime for applications written
//! against its API:
//!
//! * [`Tracer`] — the per-run tracing session. Configuration parameters are
//!   registered as influence sources; program values are [`Traced`] values
//!   that propagate influence through arithmetic; named variables record
//!   every read and write along with the execution phase (before or after the
//!   first heartbeat).
//! * [`TraceLog`] — the result of one traced run.
//! * [`ControlVariableAnalysis`] — applies the paper's checks to one trace
//!   per knob setting: **complete and pure** (values derived only from the
//!   specified parameters), **relevant** (read after the first heartbeat),
//!   **constant** (never written after the first heartbeat), and
//!   **consistent** (all settings produce the same variable set). The result
//!   is a [`ControlVariableSet`] with the recorded value of every control
//!   variable for every setting, plus a human-readable
//!   [`ControlVariableReport`].
//!
//! # Example
//!
//! ```
//! use powerdial_influence::{ControlVariableAnalysis, Tracer};
//!
//! # fn main() -> Result<(), powerdial_influence::InfluenceError> {
//! // Trace one run of a tiny "application" whose `iterations` variable is
//! // derived from the `quality` parameter during initialization.
//! let mut tracer = Tracer::new("toy");
//! let quality = tracer.register_parameter("quality");
//! let q = tracer.parameter_value(quality, 8.0);
//! let iterations = tracer.declare_variable("iterations");
//! tracer.write_variable(iterations, q * 100.0, "init")?;
//! tracer.first_heartbeat();
//! for _ in 0..3 {
//!     let _n = tracer.read_variable(iterations, "main_loop")?;
//!     tracer.heartbeat();
//! }
//! let log = tracer.finish();
//!
//! let analysis = ControlVariableAnalysis::new([quality]);
//! let control_variables = analysis.analyze(&[log])?;
//! assert_eq!(control_variables.variable_names(), vec!["iterations"]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod analysis;
mod error;
mod influence_set;
mod traced;
mod tracer;

pub use analysis::{
    ControlVariableAnalysis, ControlVariableReport, ControlVariableSet, ReportEntry,
};
pub use error::InfluenceError;
pub use influence_set::{InfluenceSet, ParamId};
pub use traced::Traced;
pub use tracer::{AccessKind, AccessRecord, Phase, TraceLog, Tracer, VarId, VariableValue};
