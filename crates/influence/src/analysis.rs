//! Control-variable analysis: the complete/pure, relevance, constant, and
//! consistency checks of Section 2.1.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::InfluenceError;
use crate::influence_set::{InfluenceSet, ParamId};
use crate::tracer::{AccessKind, Phase, TraceLog, VarId, VariableValue};

/// The control-variable analysis over a set of traces (one trace per
/// combination of configuration-parameter settings).
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlVariableAnalysis {
    specified: InfluenceSet,
    specified_params: Vec<ParamId>,
    require_all_parameters_used: bool,
}

impl ControlVariableAnalysis {
    /// Creates an analysis for the specified configuration parameters.
    pub fn new(specified: impl IntoIterator<Item = ParamId>) -> Self {
        let specified_params: Vec<ParamId> = specified.into_iter().collect();
        let specified = specified_params.iter().copied().collect();
        ControlVariableAnalysis {
            specified,
            specified_params,
            require_all_parameters_used: false,
        }
    }

    /// Requires every specified parameter to influence at least one control
    /// variable; otherwise the analysis fails with
    /// [`InfluenceError::UnusedParameter`].
    pub fn require_all_parameters_used(mut self, required: bool) -> Self {
        self.require_all_parameters_used = required;
        self
    }

    /// The specified parameters, in the order given.
    pub fn specified_parameters(&self) -> &[ParamId] {
        &self.specified_params
    }

    /// Runs the checks over one trace per knob setting and produces the
    /// control-variable set.
    ///
    /// # Errors
    ///
    /// * [`InfluenceError::NoTraces`] — the slice is empty.
    /// * [`InfluenceError::ImpureVariable`] — a candidate variable is
    ///   influenced by a parameter outside the specified set.
    /// * [`InfluenceError::NonConstantVariable`] — a candidate variable is
    ///   written after the first heartbeat.
    /// * [`InfluenceError::InconsistentVariableSets`] — different settings
    ///   produce different control-variable sets.
    /// * [`InfluenceError::NoControlVariables`] — no variable passes every
    ///   check.
    /// * [`InfluenceError::UnusedParameter`] — (only when enabled) a
    ///   specified parameter influences nothing.
    pub fn analyze(&self, traces: &[TraceLog]) -> Result<ControlVariableSet, InfluenceError> {
        if traces.is_empty() {
            return Err(InfluenceError::NoTraces);
        }

        let mut per_trace_names: Vec<Vec<String>> = Vec::with_capacity(traces.len());
        let mut per_trace_values: Vec<BTreeMap<String, VariableValue>> =
            Vec::with_capacity(traces.len());
        let mut report_entries: BTreeMap<String, ReportEntry> = BTreeMap::new();

        for trace in traces {
            let mut names = Vec::new();
            let mut values = BTreeMap::new();

            for (index, variable) in trace.variables.iter().enumerate() {
                let var_id = VarId::from_index(index);
                // Candidate: influenced by at least one specified parameter.
                if !variable.influence.intersects(self.specified) {
                    continue;
                }
                // Pure check: influenced *only* by specified parameters.
                if !variable.influence.is_subset_of(self.specified) {
                    return Err(InfluenceError::ImpureVariable {
                        name: variable.name.clone(),
                    });
                }
                // Relevance check: read after the first heartbeat.
                if !trace.read_in_main_loop(var_id) {
                    continue;
                }
                // Constant check: never written after the first heartbeat.
                if let Some(write) = trace.main_loop_write(var_id) {
                    return Err(InfluenceError::NonConstantVariable {
                        name: variable.name.clone(),
                        site: write.site.clone(),
                    });
                }

                let value = variable
                    .value_at_first_heartbeat
                    .clone()
                    .unwrap_or(VariableValue::Scalar(0.0));
                names.push(variable.name.clone());
                values.insert(variable.name.clone(), value);

                let entry = report_entries
                    .entry(variable.name.clone())
                    .or_insert_with(|| ReportEntry {
                        variable: variable.name.clone(),
                        parameters: Vec::new(),
                        read_sites: Vec::new(),
                        write_sites: Vec::new(),
                    });
                for param in variable.influence.iter() {
                    let name = trace
                        .parameter_name(param)
                        .unwrap_or("<unknown>")
                        .to_string();
                    if !entry.parameters.contains(&name) {
                        entry.parameters.push(name);
                    }
                }
                for access in trace.accesses_of(var_id) {
                    let sites = match access.kind {
                        AccessKind::Read => &mut entry.read_sites,
                        AccessKind::Write => &mut entry.write_sites,
                    };
                    if !sites.contains(&access.site) {
                        sites.push(access.site.clone());
                    }
                }
            }

            names.sort();
            per_trace_names.push(names);
            per_trace_values.push(values);
        }

        // Consistency check: every trace produces the same variable set.
        let expected = &per_trace_names[0];
        for (trace_index, names) in per_trace_names.iter().enumerate().skip(1) {
            if names != expected {
                return Err(InfluenceError::InconsistentVariableSets {
                    expected: expected.clone(),
                    found: names.clone(),
                    trace_index,
                });
            }
        }

        if expected.is_empty() {
            return Err(InfluenceError::NoControlVariables);
        }

        if self.require_all_parameters_used {
            for &param in &self.specified_params {
                let used = traces.iter().any(|trace| {
                    trace
                        .variables
                        .iter()
                        .any(|v| v.influence.contains(param) && expected.contains(&v.name))
                });
                if !used {
                    let name = traces[0]
                        .parameter_name(param)
                        .unwrap_or("<unknown>")
                        .to_string();
                    return Err(InfluenceError::UnusedParameter { name });
                }
            }
        }

        Ok(ControlVariableSet {
            variable_names: expected.clone(),
            recorded_values: per_trace_values,
            report: ControlVariableReport {
                application: traces[0].application.clone(),
                entries: report_entries.into_values().collect(),
            },
        })
    }
}

/// The outcome of a successful control-variable analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlVariableSet {
    variable_names: Vec<String>,
    recorded_values: Vec<BTreeMap<String, VariableValue>>,
    report: ControlVariableReport,
}

impl ControlVariableSet {
    /// The names of the identified control variables, sorted.
    pub fn variable_names(&self) -> Vec<&str> {
        self.variable_names.iter().map(String::as_str).collect()
    }

    /// Number of traces (knob settings) the values were recorded for.
    pub fn setting_count(&self) -> usize {
        self.recorded_values.len()
    }

    /// The recorded value of `variable` under the setting that produced
    /// trace `setting_index`.
    pub fn value(&self, setting_index: usize, variable: &str) -> Option<&VariableValue> {
        self.recorded_values.get(setting_index)?.get(variable)
    }

    /// All recorded values for one setting, keyed by variable name.
    pub fn values_for_setting(
        &self,
        setting_index: usize,
    ) -> Option<&BTreeMap<String, VariableValue>> {
        self.recorded_values.get(setting_index)
    }

    /// The human-readable control-variable report.
    pub fn report(&self) -> &ControlVariableReport {
        &self.report
    }
}

/// One entry of the control-variable report: a variable, the parameters that
/// influence it, and the program sites that access it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// The control variable's name.
    pub variable: String,
    /// Names of the configuration parameters that influence it.
    pub parameters: Vec<String>,
    /// Program sites that read the variable.
    pub read_sites: Vec<String>,
    /// Program sites that write the variable.
    pub write_sites: Vec<String>,
}

/// The control-variable report the paper produces for developer review.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlVariableReport {
    /// Name of the analyzed application.
    pub application: String,
    /// One entry per control variable.
    pub entries: Vec<ReportEntry>,
}

impl fmt::Display for ControlVariableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "control variable report for `{}`", self.application)?;
        for entry in &self.entries {
            writeln!(
                f,
                "  {} <- parameters {:?}; reads at {:?}; writes at {:?}",
                entry.variable, entry.parameters, entry.read_sites, entry.write_sites
            )?;
        }
        Ok(())
    }
}

/// Returns true when the access is a main-loop read (exposed for tests and
/// downstream diagnostics).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn is_main_loop_read(kind: AccessKind, phase: Phase) -> bool {
    kind == AccessKind::Read && phase == Phase::MainLoop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use crate::Traced;

    /// Builds a trace of a small application with `quality` and `extra`
    /// parameters. `quality` influences `trip_count` (a valid control
    /// variable); `unrelated` is not influenced by any parameter.
    fn trace_for(quality: f64, mutate_in_loop: bool, impure: bool) -> (TraceLog, ParamId, ParamId) {
        let mut tracer = Tracer::new("toy");
        let quality_param = tracer.register_parameter("quality");
        let extra_param = tracer.register_parameter("extra");

        let q = tracer.parameter_value(quality_param, quality);
        let e = tracer.parameter_value(extra_param, 1.0);

        let trip_count = tracer.declare_variable("trip_count");
        let derived = if impure { q * 10.0 + e } else { q * 10.0 };
        tracer
            .write_variable(trip_count, derived, "parse_args")
            .unwrap();

        let unrelated = tracer.declare_variable("unrelated");
        tracer
            .write_variable(unrelated, Traced::constant(42.0), "parse_args")
            .unwrap();

        tracer.first_heartbeat();
        for i in 0..3 {
            tracer.read_variable(trip_count, "main_loop").unwrap();
            tracer.read_variable(unrelated, "main_loop").unwrap();
            if mutate_in_loop && i == 1 {
                tracer
                    .write_variable(trip_count, Traced::constant(5.0), "main_loop_mutation")
                    .unwrap();
            }
            tracer.heartbeat();
        }
        (tracer.finish(), quality_param, extra_param)
    }

    #[test]
    fn identifies_control_variables_and_records_values() {
        let (t1, quality, _) = trace_for(1.0, false, false);
        let (t2, _, _) = trace_for(2.0, false, false);
        let analysis = ControlVariableAnalysis::new([quality]);
        let set = analysis.analyze(&[t1, t2]).unwrap();
        assert_eq!(set.variable_names(), vec!["trip_count"]);
        assert_eq!(set.setting_count(), 2);
        assert_eq!(
            set.value(0, "trip_count"),
            Some(&VariableValue::Scalar(10.0))
        );
        assert_eq!(
            set.value(1, "trip_count"),
            Some(&VariableValue::Scalar(20.0))
        );
        assert!(set.value(0, "unrelated").is_none());
    }

    #[test]
    fn report_lists_parameters_and_sites() {
        let (trace, quality, _) = trace_for(3.0, false, false);
        let analysis = ControlVariableAnalysis::new([quality]);
        let set = analysis.analyze(&[trace]).unwrap();
        let report = set.report();
        assert_eq!(report.application, "toy");
        assert_eq!(report.entries.len(), 1);
        let entry = &report.entries[0];
        assert_eq!(entry.variable, "trip_count");
        assert_eq!(entry.parameters, vec!["quality"]);
        assert_eq!(entry.write_sites, vec!["parse_args"]);
        assert_eq!(entry.read_sites, vec!["main_loop"]);
        assert!(report.to_string().contains("trip_count"));
    }

    #[test]
    fn impure_variables_are_rejected() {
        let (trace, quality, _) = trace_for(1.0, false, true);
        let analysis = ControlVariableAnalysis::new([quality]);
        assert!(matches!(
            analysis.analyze(&[trace]),
            Err(InfluenceError::ImpureVariable { .. })
        ));
    }

    #[test]
    fn impure_variables_accepted_when_all_parameters_specified() {
        let (trace, quality, extra) = trace_for(1.0, false, true);
        let analysis = ControlVariableAnalysis::new([quality, extra]);
        let set = analysis.analyze(&[trace]).unwrap();
        assert_eq!(set.variable_names(), vec!["trip_count"]);
    }

    #[test]
    fn main_loop_writes_are_rejected() {
        let (trace, quality, _) = trace_for(1.0, true, false);
        let analysis = ControlVariableAnalysis::new([quality]);
        let err = analysis.analyze(&[trace]).unwrap_err();
        assert!(
            matches!(err, InfluenceError::NonConstantVariable { ref site, .. } if site == "main_loop_mutation")
        );
    }

    #[test]
    fn unread_variables_are_filtered_out() {
        let mut tracer = Tracer::new("toy");
        let p = tracer.register_parameter("p");
        let v = tracer.declare_variable("configured_but_ignored");
        let value = tracer.parameter_value(p, 1.0);
        tracer.write_variable(v, value, "init").unwrap();
        tracer.first_heartbeat();
        tracer.heartbeat();
        let trace = tracer.finish();
        let analysis = ControlVariableAnalysis::new([p]);
        assert_eq!(
            analysis.analyze(&[trace]),
            Err(InfluenceError::NoControlVariables)
        );
    }

    #[test]
    fn inconsistent_traces_are_rejected() {
        let (t1, quality, _) = trace_for(1.0, false, false);
        // Second trace where trip_count is never read in the main loop.
        let mut tracer = Tracer::new("toy");
        let q = tracer.register_parameter("quality");
        let _extra = tracer.register_parameter("extra");
        let v = tracer.declare_variable("trip_count");
        let value = tracer.parameter_value(q, 9.0);
        tracer.write_variable(v, value, "parse_args").unwrap();
        tracer.first_heartbeat();
        tracer.heartbeat();
        let t2 = tracer.finish();

        let analysis = ControlVariableAnalysis::new([quality]);
        let err = analysis.analyze(&[t1, t2]).unwrap_err();
        assert!(matches!(
            err,
            InfluenceError::InconsistentVariableSets { trace_index: 1, .. }
        ));
    }

    #[test]
    fn empty_trace_list_is_rejected() {
        let analysis = ControlVariableAnalysis::new([ParamId(0)]);
        assert_eq!(analysis.analyze(&[]), Err(InfluenceError::NoTraces));
    }

    #[test]
    fn unused_parameters_detected_when_required() {
        let (trace, quality, _) = trace_for(1.0, false, false);
        // `extra` does not influence any control variable.
        let extra = ParamId(1);
        let strict =
            ControlVariableAnalysis::new([quality, extra]).require_all_parameters_used(true);
        assert!(matches!(
            strict.analyze(std::slice::from_ref(&trace)),
            Err(InfluenceError::UnusedParameter { .. })
        ));
        let lenient = ControlVariableAnalysis::new([quality, extra]);
        assert!(lenient.analyze(&[trace]).is_ok());
        assert_eq!(lenient.specified_parameters().len(), 2);
    }

    #[test]
    fn main_loop_read_helper() {
        assert!(is_main_loop_read(AccessKind::Read, Phase::MainLoop));
        assert!(!is_main_loop_read(AccessKind::Write, Phase::MainLoop));
        assert!(!is_main_loop_read(AccessKind::Read, Phase::Initialization));
    }
}
