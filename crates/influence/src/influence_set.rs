//! Influence sets: which configuration parameters influenced a value.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use serde::{Deserialize, Serialize};

/// Identifier of a configuration parameter registered with a
/// [`Tracer`](crate::Tracer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Creates a parameter id from its registration index (parameters are
    /// numbered in the order they are registered with a
    /// [`Tracer`](crate::Tracer), starting from zero).
    pub const fn new(index: usize) -> Self {
        ParamId(index)
    }

    /// Returns the raw index of the parameter.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ParamId {
    fn from(index: usize) -> Self {
        ParamId(index)
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "param#{}", self.0)
    }
}

/// The set of configuration parameters that influenced a value.
///
/// Influence sets propagate through arithmetic on [`Traced`](crate::Traced)
/// values: the result of combining two values is influenced by the union of
/// their influence sets. The implementation is a bitset supporting up to 128
/// parameters, far more than any application in the paper needs (x264, the
/// richest, has three).
///
/// # Example
///
/// ```
/// use powerdial_influence::{InfluenceSet, ParamId};
///
/// let mut set = InfluenceSet::empty();
/// assert!(set.is_empty());
/// // Influence sets are normally produced by a `Tracer`; unions compose.
/// let combined = set | InfluenceSet::empty();
/// assert!(combined.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InfluenceSet {
    bits: u128,
}

/// Maximum number of distinct parameters an influence set can track.
pub(crate) const MAX_PARAMS: usize = 128;

impl InfluenceSet {
    /// The empty influence set (a constant value influenced by nothing).
    pub const fn empty() -> Self {
        InfluenceSet { bits: 0 }
    }

    /// Creates a set containing a single parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter index is 128 or larger.
    pub fn singleton(param: ParamId) -> Self {
        assert!(
            param.0 < MAX_PARAMS,
            "influence sets support at most {MAX_PARAMS} parameters"
        );
        InfluenceSet {
            bits: 1u128 << param.0,
        }
    }

    /// Returns true when no parameter influences the value.
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Returns true when `param` is in the set.
    pub fn contains(self, param: ParamId) -> bool {
        param.0 < MAX_PARAMS && (self.bits >> param.0) & 1 == 1
    }

    /// Returns true when every parameter in this set is also in `other`.
    pub const fn is_subset_of(self, other: InfluenceSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Returns true when the two sets share at least one parameter.
    pub const fn intersects(self, other: InfluenceSet) -> bool {
        self.bits & other.bits != 0
    }

    /// Number of parameters in the set.
    pub const fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the parameters in the set in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = ParamId> {
        (0..MAX_PARAMS).filter_map(move |i| {
            if (self.bits >> i) & 1 == 1 {
                Some(ParamId(i))
            } else {
                None
            }
        })
    }

    /// Union with another set.
    pub const fn union(self, other: InfluenceSet) -> InfluenceSet {
        InfluenceSet {
            bits: self.bits | other.bits,
        }
    }
}

impl BitOr for InfluenceSet {
    type Output = InfluenceSet;

    fn bitor(self, rhs: InfluenceSet) -> InfluenceSet {
        self.union(rhs)
    }
}

impl BitOrAssign for InfluenceSet {
    fn bitor_assign(&mut self, rhs: InfluenceSet) {
        self.bits |= rhs.bits;
    }
}

impl FromIterator<ParamId> for InfluenceSet {
    fn from_iter<T: IntoIterator<Item = ParamId>>(iter: T) -> Self {
        let mut set = InfluenceSet::empty();
        for param in iter {
            set |= InfluenceSet::singleton(param);
        }
        set
    }
}

impl fmt::Display for InfluenceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, param) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{param}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_contains_nothing() {
        let set = InfluenceSet::empty();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(ParamId(0)));
    }

    #[test]
    fn singleton_contains_only_its_parameter() {
        let set = InfluenceSet::singleton(ParamId(3));
        assert!(set.contains(ParamId(3)));
        assert!(!set.contains(ParamId(2)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn union_combines_parameters() {
        let a = InfluenceSet::singleton(ParamId(0));
        let b = InfluenceSet::singleton(ParamId(5));
        let both = a | b;
        assert!(both.contains(ParamId(0)));
        assert!(both.contains(ParamId(5)));
        assert_eq!(both.len(), 2);
        assert!(a.is_subset_of(both));
        assert!(b.is_subset_of(both));
        assert!(!both.is_subset_of(a));
        assert!(a.intersects(both));
        assert!(!a.intersects(b));
    }

    #[test]
    fn collect_from_param_ids() {
        let set: InfluenceSet = [ParamId(1), ParamId(2), ParamId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
        let params: Vec<_> = set.iter().collect();
        assert_eq!(params, vec![ParamId(1), ParamId(2)]);
    }

    #[test]
    fn display_lists_parameters() {
        let set: InfluenceSet = [ParamId(0), ParamId(7)].into_iter().collect();
        assert_eq!(set.to_string(), "{param#0, param#7}");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn singleton_rejects_out_of_range_parameters() {
        InfluenceSet::singleton(ParamId(128));
    }

    #[test]
    fn high_index_parameters_are_supported() {
        let set = InfluenceSet::singleton(ParamId(127));
        assert!(set.contains(ParamId(127)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Union is commutative, associative, and idempotent.
        #[test]
        fn union_is_a_semilattice(
            a in proptest::collection::vec(0usize..128, 0..20),
            b in proptest::collection::vec(0usize..128, 0..20),
            c in proptest::collection::vec(0usize..128, 0..20),
        ) {
            let sa: InfluenceSet = a.iter().map(|&i| ParamId(i)).collect();
            let sb: InfluenceSet = b.iter().map(|&i| ParamId(i)).collect();
            let sc: InfluenceSet = c.iter().map(|&i| ParamId(i)).collect();
            prop_assert_eq!(sa | sb, sb | sa);
            prop_assert_eq!((sa | sb) | sc, sa | (sb | sc));
            prop_assert_eq!(sa | sa, sa);
            prop_assert!(sa.is_subset_of(sa | sb));
        }

        /// Membership after collect matches the input list.
        #[test]
        fn membership_matches_inputs(indices in proptest::collection::vec(0usize..128, 0..64)) {
            let set: InfluenceSet = indices.iter().map(|&i| ParamId(i)).collect();
            for i in 0..128 {
                prop_assert_eq!(set.contains(ParamId(i)), indices.contains(&i));
            }
        }
    }
}
