//! The PowerDial system façade: identify, trace, calibrate, control.

use std::fmt;

use powerdial_apps::{InputSet, KnobbedApplication};
use powerdial_control::{
    ActuationPolicy, ControllerConfig, PowerDialRuntime, RuntimeConfig, DEFAULT_QUANTUM_HEARTBEATS,
};
use powerdial_influence::{ControlVariableAnalysis, ControlVariableSet, ParamId};
use powerdial_knobs::{
    CalibrationTable, Calibrator, ControlVariableStore, KnobTable, Measurement, ParameterSpace,
};
use powerdial_qos::QosLossBound;

use crate::error::PowerDialError;

/// Options controlling how a [`PowerDialSystem`] is built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDialConfig {
    /// Knob settings whose QoS loss exceeds this bound are excluded from the
    /// runtime knob table (the baseline setting is always retained).
    pub qos_bound: QosLossBound,
    /// The actuation policy used by runtimes created from the system.
    pub policy: ActuationPolicy,
    /// The actuation time quantum in heartbeats.
    pub quantum_heartbeats: u32,
    /// Whether to run the dynamic influence trace and control-variable checks
    /// (disable only for micro-benchmarks of calibration alone).
    pub verify_control_variables: bool,
}

impl Default for PowerDialConfig {
    fn default() -> Self {
        PowerDialConfig {
            qos_bound: QosLossBound::UNBOUNDED,
            policy: ActuationPolicy::MinimalSpeedup,
            quantum_heartbeats: DEFAULT_QUANTUM_HEARTBEATS,
            verify_control_variables: true,
        }
    }
}

impl PowerDialConfig {
    /// Sets the QoS-loss bound used to filter knob settings.
    pub fn with_qos_bound(mut self, bound: QosLossBound) -> Self {
        self.qos_bound = bound;
        self
    }

    /// Sets the actuation policy.
    pub fn with_policy(mut self, policy: ActuationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the actuation quantum in heartbeats.
    pub fn with_quantum_heartbeats(mut self, heartbeats: u32) -> Self {
        self.quantum_heartbeats = heartbeats;
        self
    }

    /// Enables or disables the influence-tracing verification step.
    pub fn with_control_variable_verification(mut self, enabled: bool) -> Self {
        self.verify_control_variables = enabled;
        self
    }
}

/// A fully built PowerDial system for one application: the identified control
/// variables, the calibrated trade-off space, and the runtime knob table.
pub struct PowerDialSystem {
    application: String,
    space: ParameterSpace,
    control_variables: Option<ControlVariableSet>,
    calibration: CalibrationTable,
    knob_table: KnobTable,
    store: ControlVariableStore,
    config: PowerDialConfig,
}

impl fmt::Debug for PowerDialSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PowerDialSystem")
            .field("application", &self.application)
            .field("settings", &self.space.setting_count())
            .field("knob_table_len", &self.knob_table.len())
            .field("max_speedup", &self.knob_table.max_speedup())
            .finish()
    }
}

impl PowerDialSystem {
    /// Runs the full PowerDial workflow for an application: influence-trace
    /// every knob setting, verify the control variables, calibrate every
    /// setting on every training input, and build the Pareto-filtered knob
    /// table.
    ///
    /// # Errors
    ///
    /// Returns an error when the application has no training inputs, when the
    /// control-variable checks fail, or when calibration fails.
    pub fn build(
        app: &dyn KnobbedApplication,
        config: PowerDialConfig,
    ) -> Result<Self, PowerDialError> {
        let space = app.parameter_space();
        if app.input_count(InputSet::Training) == 0 {
            return Err(PowerDialError::NoTrainingInputs {
                application: app.name().to_string(),
            });
        }

        // Dynamic knob identification: trace one run per setting and apply
        // the complete/pure, relevance, constant, and consistency checks.
        let control_variables = if config.verify_control_variables {
            let traces: Vec<_> = space
                .settings()
                .map(|setting| app.trace_run(&setting))
                .collect();
            let params: Vec<ParamId> = (0..space.parameter_count()).map(ParamId::new).collect();
            let analysis = ControlVariableAnalysis::new(params);
            Some(analysis.analyze(&traces)?)
        } else {
            None
        };

        // Dynamic knob calibration: every setting on every training input.
        let mut calibrator = Calibrator::new(&space).with_comparator(app.qos_comparator());
        for (setting_index, setting) in space.settings().enumerate() {
            for input_index in 0..app.input_count(InputSet::Training) {
                let result = app.run_input(InputSet::Training, input_index, &setting);
                calibrator.record(Measurement {
                    setting_index,
                    input_index,
                    work: result.work,
                    output: result.output,
                })?;
            }
        }
        let calibration = calibrator.build()?;
        let knob_table = calibration.knob_table(config.qos_bound)?;

        // The runtime control-variable store starts at the baseline setting.
        let mut store = ControlVariableStore::new();
        store.apply_setting(knob_table.baseline_setting());

        Ok(PowerDialSystem {
            application: app.name().to_string(),
            space,
            control_variables,
            calibration,
            knob_table,
            store,
            config,
        })
    }

    /// The application's name.
    pub fn application(&self) -> &str {
        &self.application
    }

    /// The explored parameter space.
    pub fn parameter_space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The identified control variables, when verification was enabled.
    pub fn control_variables(&self) -> Option<&ControlVariableSet> {
        self.control_variables.as_ref()
    }

    /// The full calibration table (all measured settings).
    pub fn calibration(&self) -> &CalibrationTable {
        &self.calibration
    }

    /// The Pareto-filtered runtime knob table.
    pub fn knob_table(&self) -> &KnobTable {
        &self.knob_table
    }

    /// The runtime control-variable store (current knob values).
    pub fn store(&self) -> &ControlVariableStore {
        &self.store
    }

    /// Exclusive access to the control-variable store for applying runtime
    /// decisions.
    pub fn store_mut(&mut self) -> &mut ControlVariableStore {
        &mut self.store
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &PowerDialConfig {
        &self.config
    }

    /// Creates a runtime that holds the application at `target_rate`
    /// heartbeats per second, given its measured baseline speed (the heart
    /// rate at the default setting on an unloaded machine).
    ///
    /// # Errors
    ///
    /// Returns an error when the rates are invalid or the quantum is zero.
    pub fn runtime(
        &self,
        target_rate: f64,
        base_speed: f64,
    ) -> Result<PowerDialRuntime, PowerDialError> {
        let controller = ControllerConfig::new(target_rate, base_speed)?
            .with_speedup_range(1.0, self.knob_table.max_speedup().max(1.0))?;
        let runtime_config = RuntimeConfig::new(controller)
            .with_policy(self.config.policy)
            .with_quantum_heartbeats(self.config.quantum_heartbeats)?;
        Ok(PowerDialRuntime::new(
            runtime_config,
            self.knob_table.clone(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_apps::{SearchApp, SwaptionsApp};

    #[test]
    fn build_runs_the_full_workflow() {
        let app = SwaptionsApp::test_scale(1);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        assert_eq!(system.application(), "swaptions");
        assert_eq!(system.parameter_space().parameter_count(), 1);
        // Control variables were identified for the single knob.
        let variables = system.control_variables().unwrap();
        assert_eq!(variables.variable_names(), vec!["sm_control"]);
        // Calibration covered every setting.
        assert_eq!(system.calibration().len(), 6);
        // The knob table offers real speedups.
        assert!(system.knob_table().max_speedup() > 5.0);
        // The store starts at the baseline setting.
        assert_eq!(system.store().get("sm").unwrap(), 20_000.0);
        assert!(format!("{system:?}").contains("swaptions"));
    }

    #[test]
    fn qos_bound_filters_the_knob_table() {
        let app = SearchApp::test_scale(3);
        let unbounded = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let bounded = PowerDialSystem::build(
            &app,
            PowerDialConfig::default().with_qos_bound(QosLossBound::from_percent(30.0).unwrap()),
        )
        .unwrap();
        assert!(bounded.knob_table().len() <= unbounded.knob_table().len());
        // The baseline always survives.
        assert!(!bounded.knob_table().is_empty());
    }

    #[test]
    fn verification_can_be_disabled() {
        let app = SwaptionsApp::test_scale(2);
        let config = PowerDialConfig::default().with_control_variable_verification(false);
        let system = PowerDialSystem::build(&app, config).unwrap();
        assert!(system.control_variables().is_none());
    }

    #[test]
    fn runtime_uses_the_configured_policy_and_quantum() {
        let app = SwaptionsApp::test_scale(4);
        let config = PowerDialConfig::default()
            .with_policy(ActuationPolicy::RaceToIdle)
            .with_quantum_heartbeats(5);
        let system = PowerDialSystem::build(&app, config).unwrap();
        let runtime = system.runtime(10.0, 10.0).unwrap();
        assert_eq!(runtime.quantum_heartbeats(), 5);
        assert!(system.runtime(-1.0, 10.0).is_err());
        assert_eq!(system.config().quantum_heartbeats, 5);
    }

    #[test]
    fn store_can_apply_runtime_decisions() {
        let app = SwaptionsApp::test_scale(6);
        let mut system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let mut runtime = system.runtime(100.0, 100.0).unwrap();
        // Report a very slow rate: the runtime picks a faster setting.
        let decision = runtime.on_heartbeat(Some(10.0));
        system.store_mut().apply_setting(decision.setting());
        assert_eq!(
            system.store().get("sm").unwrap(),
            decision.setting().value("sm").unwrap()
        );
    }
}
