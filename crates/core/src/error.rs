//! The top-level error type.

use std::error::Error;
use std::fmt;

use powerdial_analytic::AnalyticError;
use powerdial_control::ControlError;
use powerdial_heartbeats::HeartbeatError;
use powerdial_influence::InfluenceError;
use powerdial_knobs::KnobError;
use powerdial_platform::PlatformError;
use powerdial_qos::QosError;

/// Errors produced while building or driving a PowerDial system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerDialError {
    /// Dynamic knob identification (influence tracing / control-variable
    /// checks) failed.
    Influence(InfluenceError),
    /// Dynamic knob calibration failed.
    Knobs(KnobError),
    /// A QoS computation failed.
    Qos(QosError),
    /// The control system rejected its configuration.
    Control(ControlError),
    /// The heartbeat framework rejected its configuration.
    Heartbeats(HeartbeatError),
    /// The platform simulator rejected its configuration.
    Platform(PlatformError),
    /// An analytical model rejected its parameters.
    Analytic(AnalyticError),
    /// The application exposes no training inputs, so calibration cannot run.
    NoTrainingInputs {
        /// Name of the offending application.
        application: String,
    },
    /// A simulated application's heartbeat channel rejected a beat. The
    /// experiment drivers size channels for a full quantum, so overflow
    /// indicates a pacing bug, not expected backpressure.
    HeartbeatChannelFull,
}

impl fmt::Display for PowerDialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerDialError::Influence(e) => write!(f, "dynamic knob identification failed: {e}"),
            PowerDialError::Knobs(e) => write!(f, "dynamic knob calibration failed: {e}"),
            PowerDialError::Qos(e) => write!(f, "qos computation failed: {e}"),
            PowerDialError::Control(e) => write!(f, "control system configuration failed: {e}"),
            PowerDialError::Heartbeats(e) => write!(f, "heartbeat configuration failed: {e}"),
            PowerDialError::Platform(e) => write!(f, "platform configuration failed: {e}"),
            PowerDialError::Analytic(e) => {
                write!(f, "analytical model rejected its parameters: {e}")
            }
            PowerDialError::NoTrainingInputs { application } => {
                write!(f, "application `{application}` exposes no training inputs")
            }
            PowerDialError::HeartbeatChannelFull => {
                write!(f, "heartbeat channel overflowed mid-experiment")
            }
        }
    }
}

impl Error for PowerDialError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PowerDialError::Influence(e) => Some(e),
            PowerDialError::Knobs(e) => Some(e),
            PowerDialError::Qos(e) => Some(e),
            PowerDialError::Control(e) => Some(e),
            PowerDialError::Heartbeats(e) => Some(e),
            PowerDialError::Platform(e) => Some(e),
            PowerDialError::Analytic(e) => Some(e),
            PowerDialError::NoTrainingInputs { .. } => None,
            PowerDialError::HeartbeatChannelFull => None,
        }
    }
}

macro_rules! impl_from_error {
    ($source:ty, $variant:ident) => {
        impl From<$source> for PowerDialError {
            fn from(e: $source) -> Self {
                PowerDialError::$variant(e)
            }
        }
    };
}

impl_from_error!(InfluenceError, Influence);
impl_from_error!(KnobError, Knobs);
impl_from_error!(QosError, Qos);
impl_from_error!(ControlError, Control);
impl_from_error!(HeartbeatError, Heartbeats);
impl_from_error!(PlatformError, Platform);
impl_from_error!(AnalyticError, Analytic);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let err: PowerDialError = InfluenceError::NoTraces.into();
        assert!(matches!(err, PowerDialError::Influence(_)));
        assert!(err.source().is_some());

        let err: PowerDialError = KnobError::NoMeasurements.into();
        assert!(err.to_string().contains("calibration"));

        let err: PowerDialError = QosError::EmptyAbstraction.into();
        assert!(err.source().is_some());

        let err: PowerDialError = ControlError::ZeroQuantum.into();
        assert!(err.to_string().contains("control"));

        let err: PowerDialError = HeartbeatError::ZeroWindowSize.into();
        assert!(err.source().is_some());

        let err: PowerDialError = PlatformError::EmptyCluster.into();
        assert!(err.source().is_some());

        let err = PowerDialError::NoTrainingInputs {
            application: "x264".into(),
        };
        assert!(err.source().is_none());
        assert!(err.to_string().contains("x264"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PowerDialError>();
    }
}
