//! PowerDial: dynamic knobs for responsive power-aware computing.
//!
//! This crate is the top of the PowerDial reproduction stack. It wires the
//! individual subsystems together into the workflow of the paper's Figure 1
//! and provides the experiment drivers that regenerate its evaluation:
//!
//! 1. **Parameter identification** — the application (anything implementing
//!    [`powerdial_apps::KnobbedApplication`]) names its configuration
//!    parameters and value ranges.
//! 2. **Dynamic knob identification** — [`PowerDialSystem::build`] runs the
//!    dynamic influence trace for every knob setting and applies the
//!    control-variable checks.
//! 3. **Dynamic knob calibration** — every setting is run on every training
//!    input; speedups and QoS losses are measured against the default
//!    (highest-QoS) setting and the Pareto-optimal settings are kept.
//! 4. **Runtime control** — [`PowerDialSystem::runtime`] instantiates the
//!    heart-rate controller and actuator over the calibrated knob table.
//!
//! The [`experiments`] module reproduces each figure and table of the paper's
//! evaluation on the simulated platform; the `powerdial-bench` crate prints
//! them in the paper's format.
//!
//! # Quickstart
//!
//! ```
//! use powerdial::{PowerDialConfig, PowerDialSystem};
//! use powerdial_apps::SwaptionsApp;
//! use powerdial_qos::QosLossBound;
//!
//! # fn main() -> Result<(), powerdial::PowerDialError> {
//! let app = SwaptionsApp::test_scale(42);
//! let system = PowerDialSystem::build(&app, PowerDialConfig::default())?;
//!
//! // The calibrated trade-off space: speedups available per QoS loss.
//! assert!(system.knob_table().max_speedup() > 1.0);
//!
//! // A runtime that will keep the application at 10 heartbeats per second.
//! let runtime = system.runtime(10.0, 10.0)?;
//! assert_eq!(runtime.quantum_heartbeats(), 20);
//! # let _ = QosLossBound::UNBOUNDED;
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
pub mod experiments;
mod system;

pub use error::PowerDialError;
pub use system::{PowerDialConfig, PowerDialSystem};

pub use powerdial_analytic as analytic;
pub use powerdial_apps as apps;
pub use powerdial_control as control;
pub use powerdial_heartbeats as heartbeats;
pub use powerdial_influence as influence;
pub use powerdial_knobs as knobs;
pub use powerdial_platform as platform;
pub use powerdial_qos as qos;
