//! Training and production input summary (Table 1).

use serde::{Deserialize, Serialize};

use powerdial_apps::{InputSet, KnobbedApplication};

/// One row of Table 1: the inputs used for a benchmark, both in this
/// reproduction and in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSummaryRow {
    /// The benchmark's name.
    pub benchmark: String,
    /// Training inputs in this reproduction.
    pub training_inputs: usize,
    /// Production inputs in this reproduction.
    pub production_inputs: usize,
    /// The paper's training inputs, verbatim.
    pub paper_training: &'static str,
    /// The paper's production inputs, verbatim.
    pub paper_production: &'static str,
    /// The paper's input source, verbatim.
    pub paper_source: &'static str,
    /// The synthetic substitute used here.
    pub reproduction_source: &'static str,
}

/// The paper's Table 1 rows, keyed by benchmark name.
fn paper_row(benchmark: &str) -> (&'static str, &'static str, &'static str, &'static str) {
    match benchmark {
        "swaptions" => (
            "64 swaptions",
            "512 swaptions",
            "PARSEC & randomly generated swaptions",
            "seeded randomly generated swaption parameters",
        ),
        "x264" => (
            "4 HD videos of 200+ frames",
            "12 HD videos of 200+ frames",
            "PARSEC & xiph.org",
            "seeded synthetic video sequences (moving objects over a gradient)",
        ),
        "bodytrack" => (
            "sequence of 100 frames",
            "sequence of 261 frames",
            "PARSEC & additional input from PARSEC authors",
            "seeded synthetic multi-camera pose sequences",
        ),
        "swish++" => (
            "2000 books",
            "2000 books",
            "Project Gutenberg",
            "seeded Zipf-distributed synthetic corpus with power-law queries",
        ),
        _ => ("-", "-", "-", "synthetic"),
    }
}

/// Builds the Table 1 summary for the given applications.
pub fn input_summary(apps: &[&dyn KnobbedApplication]) -> Vec<InputSummaryRow> {
    apps.iter()
        .map(|app| {
            let (paper_training, paper_production, paper_source, reproduction_source) =
                paper_row(app.name());
            InputSummaryRow {
                benchmark: app.name().to_string(),
                training_inputs: app.input_count(InputSet::Training),
                production_inputs: app.input_count(InputSet::Production),
                paper_training,
                paper_production,
                paper_source,
                reproduction_source,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_apps::{BodytrackApp, SearchApp, SwaptionsApp, VideoEncoderApp};

    #[test]
    fn summary_covers_all_four_benchmarks() {
        let swaptions = SwaptionsApp::test_scale(0);
        let video = VideoEncoderApp::test_scale(0);
        let bodytrack = BodytrackApp::test_scale(0);
        let search = SearchApp::test_scale(0);
        let apps: Vec<&dyn KnobbedApplication> = vec![&swaptions, &video, &bodytrack, &search];
        let rows = input_summary(&apps);
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
        assert_eq!(names, vec!["swaptions", "x264", "bodytrack", "swish++"]);
        for row in &rows {
            assert!(row.training_inputs > 0);
            assert!(row.production_inputs > 0);
            assert!(!row.paper_source.is_empty());
            assert_ne!(
                row.paper_training, "-",
                "paper row must be known for {}",
                row.benchmark
            );
        }
    }

    #[test]
    fn unknown_benchmarks_get_placeholder_rows() {
        let (a, b, c, d) = paper_row("unknown");
        assert_eq!(a, "-");
        assert_eq!(b, "-");
        assert_eq!(c, "-");
        assert_eq!(d, "synthetic");
    }
}
