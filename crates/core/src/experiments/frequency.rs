//! Power versus QoS across processor frequencies (Figure 6).

use serde::{Deserialize, Serialize};

use powerdial_apps::KnobbedApplication;
use powerdial_platform::{FrequencyTable, PowerCapSchedule};

use crate::error::PowerDialError;
use crate::experiments::sim::{self, SimulationOptions};
use crate::system::PowerDialSystem;

/// One point of the Figure 6 sweep: the mean power and QoS loss observed when
/// PowerDial holds the baseline performance at a given clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencySweepPoint {
    /// The processor frequency in GHz.
    pub frequency_ghz: f64,
    /// Mean full-system power over the run, in watts.
    pub mean_power_watts: f64,
    /// Mean QoS loss over the run, as a percentage.
    pub mean_qos_loss_percent: f64,
    /// Mean normalized performance over the tail of the run (1.0 = the
    /// baseline target; the paper verifies this stays within 5 %).
    pub tail_normalized_performance: f64,
}

/// Runs the Figure 6 experiment: for every DVFS state, run the application
/// under PowerDial with the target heart rate measured at the highest state,
/// and record the resulting power and QoS loss.
///
/// # Errors
///
/// Returns an error when a simulation cannot be configured.
pub fn frequency_sweep(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    options: SimulationOptions,
) -> Result<Vec<FrequencySweepPoint>, PowerDialError> {
    frequency_sweep_over(app, system, &FrequencyTable::paper(), options)
}

/// [`frequency_sweep`] over an arbitrary backend table: one closed-loop run
/// per table state, highest frequency first. The paper sweep is this
/// function applied to [`FrequencyTable::paper`].
///
/// # Errors
///
/// Returns an error when a simulation cannot be configured.
pub fn frequency_sweep_over(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    table: &FrequencyTable,
    options: SimulationOptions,
) -> Result<Vec<FrequencySweepPoint>, PowerDialError> {
    let mut points = Vec::new();
    for state in table.states() {
        let schedule = PowerCapSchedule::constant(state);
        let outcome = sim::simulate_closed_loop_on(app, system, &schedule, table, options)?;
        points.push(FrequencySweepPoint {
            frequency_ghz: state.ghz(),
            mean_power_watts: outcome.mean_power_watts,
            mean_qos_loss_percent: outcome.mean_qos_loss_percent(),
            tail_normalized_performance: outcome
                .tail_normalized_performance(options.work_units / 2)
                .unwrap_or(0.0),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PowerDialConfig;
    use powerdial_apps::SwaptionsApp;

    #[test]
    fn sweep_reproduces_figure_6_shape() {
        let app = SwaptionsApp::test_scale(21);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let options = SimulationOptions {
            work_units: 60,
            window_size: 10,
            use_dynamic_knobs: true,
        };
        let points = frequency_sweep(&app, &system, options).unwrap();
        assert_eq!(points.len(), 7);

        // Power decreases monotonically as the frequency drops.
        for pair in points.windows(2) {
            assert!(pair[0].frequency_ghz > pair[1].frequency_ghz);
            assert!(
                pair[0].mean_power_watts >= pair[1].mean_power_watts - 1e-6,
                "power should not increase as frequency drops"
            );
        }

        // QoS loss grows (or stays flat) as the frequency drops, and the
        // lowest state needs a real QoS sacrifice.
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(last.mean_qos_loss_percent >= first.mean_qos_loss_percent);
        assert!(last.mean_power_watts < first.mean_power_watts);

        // Performance is maintained within ~10 % at every state (the paper
        // verifies 5 % on real hardware; the simulated loop is noisier over a
        // short run).
        for point in &points {
            assert!(
                point.tail_normalized_performance > 0.85,
                "performance {:.3} at {} GHz",
                point.tail_normalized_performance,
                point.frequency_ghz
            );
        }
    }
}
