//! Dynamic response to a power cap imposed and lifted mid-run (Figure 7).

use serde::{Deserialize, Serialize};

use powerdial_apps::KnobbedApplication;
use powerdial_heartbeats::Timestamp;
use powerdial_platform::{FrequencyTable, PowerCapSchedule};

use crate::error::PowerDialError;
use crate::experiments::sim::{simulate_closed_loop_on, ClosedLoopStep, SimulationOptions};
use crate::system::PowerDialSystem;

/// The Figure 7 time series: the same power-capped run executed with and
/// without dynamic knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCapSeries {
    /// The application's name.
    pub application: String,
    /// The target heart rate both runs aim for, in beats per second.
    pub target_rate: f64,
    /// Per-heartbeat records of the PowerDial-controlled run.
    pub with_knobs: Vec<ClosedLoopStep>,
    /// Per-heartbeat records of the uncontrolled run.
    pub without_knobs: Vec<ClosedLoopStep>,
    /// The time at which the power cap is imposed, in seconds.
    pub cap_imposed_at_secs: f64,
    /// The time at which the power cap is lifted, in seconds.
    pub cap_lifted_at_secs: f64,
}

impl PowerCapSeries {
    /// Mean normalized performance of the controlled run during the capped
    /// interval.
    pub fn capped_performance_with_knobs(&self) -> Option<f64> {
        mean_performance_between(
            &self.with_knobs,
            self.cap_imposed_at_secs,
            self.cap_lifted_at_secs,
        )
    }

    /// Mean normalized performance of the uncontrolled run during the capped
    /// interval.
    pub fn capped_performance_without_knobs(&self) -> Option<f64> {
        mean_performance_between(
            &self.without_knobs,
            self.cap_imposed_at_secs,
            self.cap_lifted_at_secs,
        )
    }

    /// The largest knob gain the runtime applied during the capped interval.
    pub fn peak_knob_gain(&self) -> f64 {
        self.with_knobs
            .iter()
            .map(|s| s.knob_gain)
            .fold(1.0, f64::max)
    }
}

fn mean_performance_between(steps: &[ClosedLoopStep], from_secs: f64, to_secs: f64) -> Option<f64> {
    let values: Vec<f64> = steps
        .iter()
        .filter(|s| s.time_secs >= from_secs && s.time_secs <= to_secs)
        .filter_map(|s| s.normalized_performance)
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Runs the Figure 7 experiment: the machine starts uncapped at 2.4 GHz, is
/// capped to 1.6 GHz a quarter of the way through the run, and the cap is
/// lifted at three quarters. The same schedule is replayed once with the
/// PowerDial runtime active and once without.
///
/// # Errors
///
/// Returns an error when a simulation cannot be configured.
pub fn power_cap_response(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    options: SimulationOptions,
) -> Result<PowerCapSeries, PowerDialError> {
    power_cap_response_on(app, system, &FrequencyTable::paper(), options)
}

/// [`power_cap_response`] on an arbitrary backend table: the cap drops the
/// machine from the table's highest state to its lowest for the middle half
/// of the run, whatever those frequencies are. The paper experiment is this
/// function applied to [`FrequencyTable::paper`].
///
/// # Errors
///
/// Returns an error when a simulation cannot be configured.
pub fn power_cap_response_on(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    table: &FrequencyTable,
    options: SimulationOptions,
) -> Result<PowerCapSeries, PowerDialError> {
    // At the baseline, one work unit takes one simulated second, so the
    // nominal run length in seconds equals the number of work units.
    let nominal_duration = Timestamp::from_secs(options.work_units as u64);
    let schedule = PowerCapSchedule::mid_run_cap(table, nominal_duration);
    let cap_imposed_at_secs = nominal_duration.as_secs_f64() * 0.25;
    let cap_lifted_at_secs = nominal_duration.as_secs_f64() * 0.75;

    let with_knobs = simulate_closed_loop_on(app, system, &schedule, table, options)?;
    let without_knobs = simulate_closed_loop_on(
        app,
        system,
        &schedule,
        table,
        SimulationOptions {
            use_dynamic_knobs: false,
            ..options
        },
    )?;

    Ok(PowerCapSeries {
        application: app.name().to_string(),
        target_rate: with_knobs.target_rate,
        with_knobs: with_knobs.steps,
        without_knobs: without_knobs.steps,
        cap_imposed_at_secs,
        cap_lifted_at_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PowerDialConfig;
    use powerdial_apps::SwaptionsApp;

    #[test]
    fn knobs_preserve_performance_under_the_cap() {
        let app = SwaptionsApp::test_scale(29);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let options = SimulationOptions {
            work_units: 120,
            window_size: 10,
            use_dynamic_knobs: true,
        };
        let series = power_cap_response(&app, &system, options).unwrap();

        assert_eq!(series.application, "swaptions");
        assert_eq!(series.with_knobs.len(), 120);
        assert_eq!(series.without_knobs.len(), 120);
        assert!(series.cap_imposed_at_secs < series.cap_lifted_at_secs);

        // During the cap, the controlled run recovers toward the target
        // (after the initial dip the paper's figures also show) while the
        // uncontrolled run stays near the frequency ratio (2/3).
        let with = series.capped_performance_with_knobs().unwrap();
        let without = series.capped_performance_without_knobs().unwrap();
        assert!(with > 0.85, "controlled capped performance {with}");
        assert!(without < 0.8, "uncontrolled capped performance {without}");
        assert!(
            with > without + 0.1,
            "knobs should clearly improve capped performance"
        );

        // The runtime raised the knob gain above 1 to compensate.
        assert!(series.peak_knob_gain() > 1.2);

        // After the cap lifts, the controlled run returns to baseline-quality
        // settings (gain back to ~1 at the end).
        let final_gain = series.with_knobs.last().unwrap().knob_gain;
        assert!(final_gain <= 1.5, "final knob gain {final_gain}");
    }
}
