//! The closed-loop simulator shared by the dynamic experiments.
//!
//! One simulation step corresponds to one main-loop iteration of the
//! application: the PowerDial runtime picks a knob setting, the application
//! processes one production input under that setting, the simulated machine
//! advances its clock by the time the work takes at its current frequency,
//! and the application emits a heartbeat. The heartbeat stream closes the
//! loop: its windowed rate is what the controller sees at the next step.

use serde::{Deserialize, Serialize};

use powerdial_apps::{InputSet, KnobbedApplication};
use powerdial_control::DvfsActuator;
use powerdial_heartbeats::{HeartbeatMonitor, MonitorConfig};
use powerdial_platform::{FrequencyTable, PowerCapSchedule, PowerModel, SimMachine};
use powerdial_qos::QosLoss;

use crate::error::PowerDialError;
use crate::system::PowerDialSystem;

/// Options controlling a closed-loop simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// Number of work units (heartbeats) to simulate.
    pub work_units: usize,
    /// Sliding-window size used for the observed heart rate.
    pub window_size: usize,
    /// Whether the PowerDial runtime adjusts the knobs (false reproduces the
    /// paper's "without dynamic knobs" baseline).
    pub use_dynamic_knobs: bool,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            work_units: 200,
            window_size: 20,
            use_dynamic_knobs: true,
        }
    }
}

/// One step (heartbeat) of a closed-loop simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopStep {
    /// Simulated time at the heartbeat, in seconds.
    pub time_secs: f64,
    /// Time this work unit took, in seconds.
    pub latency_secs: f64,
    /// Sliding-window heart rate normalized to the target (1.0 = on target),
    /// when enough beats exist.
    pub normalized_performance: Option<f64>,
    /// The instantaneous speedup of the knob setting used for this unit (the
    /// paper's "knob gain").
    pub knob_gain: f64,
    /// QoS loss of this unit's output relative to the baseline setting.
    pub qos_loss: f64,
    /// The machine's clock frequency during this unit, in GHz.
    pub frequency_ghz: f64,
}

/// The result of a closed-loop simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopOutcome {
    /// Per-heartbeat records.
    pub steps: Vec<ClosedLoopStep>,
    /// The target heart rate the controller drove toward, in beats per
    /// second.
    pub target_rate: f64,
    /// Mean full-system power over the run, in watts.
    pub mean_power_watts: f64,
    /// Mean QoS loss over the run's work units.
    pub mean_qos_loss: f64,
    /// Total energy of the run, in joules.
    pub total_energy_joules: f64,
    /// Total simulated duration, in seconds.
    pub duration_secs: f64,
}

impl ClosedLoopOutcome {
    /// Mean normalized performance over the last `tail` steps (used to check
    /// that the controller recovered the target after a disturbance).
    pub fn tail_normalized_performance(&self, tail: usize) -> Option<f64> {
        let values: Vec<f64> = self
            .steps
            .iter()
            .rev()
            .take(tail)
            .filter_map(|s| s.normalized_performance)
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Mean QoS loss as a percentage.
    pub fn mean_qos_loss_percent(&self) -> f64 {
        self.mean_qos_loss * 100.0
    }
}

/// Runs one closed-loop simulation of `app` under `system`'s knob table with
/// the machine following the given power-cap schedule.
///
/// # Errors
///
/// Returns an error when the application has no production inputs, when the
/// runtime cannot be configured, or when a QoS comparison fails.
pub fn simulate_closed_loop(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    schedule: &PowerCapSchedule,
    options: SimulationOptions,
) -> Result<ClosedLoopOutcome, PowerDialError> {
    simulate_closed_loop_on(app, system, schedule, &FrequencyTable::paper(), options)
}

/// [`simulate_closed_loop`] on a machine whose DVFS backend runs `table`
/// instead of the paper's seven states. The schedule's states must come
/// from `table`; a foreign state surfaces as a typed
/// [`powerdial_platform::PlatformError::StateNotInTable`] through the
/// backend seam.
///
/// # Errors
///
/// As for [`simulate_closed_loop`], plus the foreign-state rejection above.
pub fn simulate_closed_loop_on(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    schedule: &PowerCapSchedule,
    table: &FrequencyTable,
    options: SimulationOptions,
) -> Result<ClosedLoopOutcome, PowerDialError> {
    let production_inputs = app.input_count(InputSet::Production);
    if production_inputs == 0 {
        return Err(PowerDialError::NoTrainingInputs {
            application: app.name().to_string(),
        });
    }

    // Baseline outputs and work for every production input at the default
    // setting: the reference both for QoS and for the target heart rate.
    let baseline_setting = system.knob_table().baseline_setting().clone();
    let baseline: Vec<_> = (0..production_inputs)
        .map(|index| app.run_input(InputSet::Production, index, &baseline_setting))
        .collect();
    let mean_baseline_work =
        baseline.iter().map(|r| r.work).sum::<f64>() / production_inputs as f64;

    // The machine processes exactly one baseline work unit per second at its
    // highest frequency, so the baseline heart rate (and the target) is
    // 1 beat per second.
    let mut machine = SimMachine::with_table(
        app.name(),
        PowerModel::poweredge_r410(),
        mean_baseline_work,
        table.clone(),
    );
    let target_rate = machine.base_work_rate() / mean_baseline_work;

    let monitor_config = MonitorConfig::new(app.name())
        .with_window_size(options.window_size)
        .with_target_rate_range(target_rate, target_rate)?;
    let mut monitor = HeartbeatMonitor::new(monitor_config);

    let mut runtime = if options.use_dynamic_knobs {
        Some(system.runtime(target_rate, target_rate)?)
    } else {
        None
    };

    let comparator = app.qos_comparator();
    let baseline_point = system.knob_table().baseline().clone();

    let mut steps = Vec::with_capacity(options.work_units);
    let mut total_qos_loss = 0.0;

    // The power-cap schedule actuates through the machine's DvfsBackend —
    // the same seam a sysfs/cpufreq backend plugs into on hardware.
    let mut dvfs = DvfsActuator::new();

    for unit in 0..options.work_units {
        let now = machine.now();
        dvfs.follow_schedule(machine.dvfs_backend_mut(), schedule, now)?;

        let observed_rate = monitor.window_rate().map(|r| r.beats_per_second());
        let (point, gain) = match runtime.as_mut() {
            Some(runtime) => {
                let decision = runtime.on_heartbeat(observed_rate);
                (decision.point, decision.gain)
            }
            None => (baseline_point.clone(), 1.0),
        };

        let input_index = unit % production_inputs;
        let result = app.run_input(InputSet::Production, input_index, &point.setting);
        let latency = machine.execute_work(result.work);
        let record = monitor.heartbeat(machine.now());

        let qos_loss = comparator
            .qos_loss(&baseline[input_index].output, &result.output)
            .unwrap_or(QosLoss::ZERO)
            .value();
        total_qos_loss += qos_loss;

        steps.push(ClosedLoopStep {
            time_secs: machine.now().as_secs_f64(),
            latency_secs: latency.as_secs_f64(),
            normalized_performance: record
                .window_rate
                .map(|rate| rate.beats_per_second() / target_rate),
            knob_gain: gain,
            qos_loss,
            frequency_ghz: machine.frequency().ghz(),
        });
    }

    let duration_secs = machine.now().as_secs_f64();
    Ok(ClosedLoopOutcome {
        target_rate,
        mean_power_watts: machine
            .energy()
            .mean_watts()
            .unwrap_or_else(|| machine.power_model().idle_watts()),
        mean_qos_loss: total_qos_loss / options.work_units.max(1) as f64,
        total_energy_joules: machine.energy().total_joules(),
        duration_secs,
        steps,
    })
}

/// The pre-backend closed loop, frozen for equivalence testing: drives the
/// preserved [`powerdial_platform::naive`] machine and schedule by calling
/// `set_frequency` directly, exactly as the loop did before the
/// [`powerdial_platform::backend::DvfsBackend`] seam existed.
///
/// The `backend_equivalence` integration test runs this against
/// [`simulate_closed_loop`] and asserts bit-identical trajectories. New code
/// should never call it.
///
/// # Errors
///
/// As for [`simulate_closed_loop`].
pub fn simulate_closed_loop_naive(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
    schedule: &powerdial_platform::naive::PowerCapSchedule,
    options: SimulationOptions,
) -> Result<ClosedLoopOutcome, PowerDialError> {
    use powerdial_platform::naive::SimMachine as NaiveSimMachine;

    let production_inputs = app.input_count(InputSet::Production);
    if production_inputs == 0 {
        return Err(PowerDialError::NoTrainingInputs {
            application: app.name().to_string(),
        });
    }

    let baseline_setting = system.knob_table().baseline_setting().clone();
    let baseline: Vec<_> = (0..production_inputs)
        .map(|index| app.run_input(InputSet::Production, index, &baseline_setting))
        .collect();
    let mean_baseline_work =
        baseline.iter().map(|r| r.work).sum::<f64>() / production_inputs as f64;

    let mut machine =
        NaiveSimMachine::new(app.name(), PowerModel::poweredge_r410(), mean_baseline_work);
    let target_rate = machine.base_work_rate() / mean_baseline_work;

    let monitor_config = MonitorConfig::new(app.name())
        .with_window_size(options.window_size)
        .with_target_rate_range(target_rate, target_rate)?;
    let mut monitor = HeartbeatMonitor::new(monitor_config);

    let mut runtime = if options.use_dynamic_knobs {
        Some(system.runtime(target_rate, target_rate)?)
    } else {
        None
    };

    let comparator = app.qos_comparator();
    let baseline_point = system.knob_table().baseline().clone();

    let mut steps = Vec::with_capacity(options.work_units);
    let mut total_qos_loss = 0.0;

    for unit in 0..options.work_units {
        machine.set_frequency(schedule.state_at(machine.now()));

        let observed_rate = monitor.window_rate().map(|r| r.beats_per_second());
        let (point, gain) = match runtime.as_mut() {
            Some(runtime) => {
                let decision = runtime.on_heartbeat(observed_rate);
                (decision.point, decision.gain)
            }
            None => (baseline_point.clone(), 1.0),
        };

        let input_index = unit % production_inputs;
        let result = app.run_input(InputSet::Production, input_index, &point.setting);
        let latency = machine.execute_work(result.work);
        let record = monitor.heartbeat(machine.now());

        let qos_loss = comparator
            .qos_loss(&baseline[input_index].output, &result.output)
            .unwrap_or(QosLoss::ZERO)
            .value();
        total_qos_loss += qos_loss;

        steps.push(ClosedLoopStep {
            time_secs: machine.now().as_secs_f64(),
            latency_secs: latency.as_secs_f64(),
            normalized_performance: record
                .window_rate
                .map(|rate| rate.beats_per_second() / target_rate),
            knob_gain: gain,
            qos_loss,
            frequency_ghz: machine.frequency().ghz(),
        });
    }

    let duration_secs = machine.now().as_secs_f64();
    Ok(ClosedLoopOutcome {
        target_rate,
        mean_power_watts: machine
            .energy()
            .mean_watts()
            .unwrap_or_else(|| machine.power_model().idle_watts()),
        mean_qos_loss: total_qos_loss / options.work_units.max(1) as f64,
        total_energy_joules: machine.energy().total_joules(),
        duration_secs,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{PowerDialConfig, PowerDialSystem};
    use powerdial_apps::SwaptionsApp;
    use powerdial_platform::FrequencyState;

    fn small_options(units: usize) -> SimulationOptions {
        SimulationOptions {
            work_units: units,
            window_size: 10,
            use_dynamic_knobs: true,
        }
    }

    #[test]
    fn uncapped_run_stays_at_baseline_quality() {
        let app = SwaptionsApp::test_scale(8);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let schedule = PowerCapSchedule::constant(FrequencyState::highest());
        let outcome = simulate_closed_loop(&app, &system, &schedule, small_options(40)).unwrap();
        assert_eq!(outcome.steps.len(), 40);
        // On an uncapped machine the controller never needs extra speedup, so
        // QoS loss stays at (essentially) zero and performance sits at the
        // target.
        assert!(
            outcome.mean_qos_loss < 1e-6,
            "loss {}",
            outcome.mean_qos_loss
        );
        let tail = outcome.tail_normalized_performance(10).unwrap();
        assert!((tail - 1.0).abs() < 0.2, "tail performance {tail}");
        assert!(outcome.mean_power_watts > 100.0);
        assert!(outcome.total_energy_joules > 0.0);
        assert!(outcome.duration_secs > 0.0);
    }

    #[test]
    fn capped_run_trades_qos_for_performance() {
        let app = SwaptionsApp::test_scale(8);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let schedule = PowerCapSchedule::constant(FrequencyState::lowest());

        let with_knobs = simulate_closed_loop(&app, &system, &schedule, small_options(60)).unwrap();
        let without_knobs = simulate_closed_loop(
            &app,
            &system,
            &schedule,
            SimulationOptions {
                use_dynamic_knobs: false,
                ..small_options(60)
            },
        )
        .unwrap();

        // With knobs, the controller recovers most of the lost performance at
        // the cost of some QoS; without knobs performance stays ~2/3.
        let with_tail = with_knobs.tail_normalized_performance(20).unwrap();
        let without_tail = without_knobs.tail_normalized_performance(20).unwrap();
        assert!(with_tail > 0.9, "with knobs tail performance {with_tail}");
        assert!(
            without_tail < 0.75,
            "without knobs tail performance {without_tail}"
        );
        assert!(with_knobs.mean_qos_loss > without_knobs.mean_qos_loss);
        assert!(with_knobs.mean_qos_loss_percent() < 20.0);
    }
}
