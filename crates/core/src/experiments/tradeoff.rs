//! The speedup-versus-QoS trade-off space (Figure 5) and the
//! training/production correlation (Table 2).

use serde::{Deserialize, Serialize};

use powerdial_apps::{InputSet, KnobbedApplication};
use powerdial_qos::QosLoss;

use crate::error::PowerDialError;
use crate::experiments::pearson_correlation;
use crate::system::PowerDialSystem;

/// One point of the trade-off space: a knob setting's mean speedup and QoS
/// loss over an input set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Index of the setting in the parameter space.
    pub setting_index: usize,
    /// Human-readable description of the setting.
    pub setting: String,
    /// Mean speedup relative to the baseline setting.
    pub speedup: f64,
    /// Mean QoS loss as a percentage.
    pub qos_loss_percent: f64,
}

/// The complete trade-off analysis for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffAnalysis {
    /// The application's name.
    pub application: String,
    /// Every calibrated setting, measured on the training inputs (the gray
    /// dots of Figure 5).
    pub training_points: Vec<TradeoffPoint>,
    /// The Pareto-optimal settings on the training inputs (the black squares
    /// of Figure 5).
    pub pareto_training: Vec<TradeoffPoint>,
    /// The same Pareto-optimal settings evaluated on the production inputs
    /// (the white squares of Figure 5).
    pub pareto_production: Vec<TradeoffPoint>,
    /// Pearson correlation between training and production speedups across
    /// the Pareto-optimal settings (Table 2).
    pub speedup_correlation: Option<f64>,
    /// Pearson correlation between training and production QoS losses across
    /// the Pareto-optimal settings (Table 2).
    pub qos_correlation: Option<f64>,
}

impl TradeoffAnalysis {
    /// The largest speedup observed on the training inputs.
    pub fn max_training_speedup(&self) -> f64 {
        self.pareto_training
            .iter()
            .map(|p| p.speedup)
            .fold(1.0, f64::max)
    }

    /// The largest QoS loss (in percent) among Pareto-optimal training
    /// points.
    pub fn max_pareto_qos_loss_percent(&self) -> f64 {
        self.pareto_training
            .iter()
            .map(|p| p.qos_loss_percent)
            .fold(0.0, f64::max)
    }
}

/// Runs the Figure 5 / Table 2 analysis: the training-side numbers come from
/// the system's calibration, and the Pareto-optimal settings are re-measured
/// on the production inputs.
///
/// # Errors
///
/// Returns an error when a QoS comparison fails.
pub fn tradeoff_analysis(
    app: &dyn KnobbedApplication,
    system: &PowerDialSystem,
) -> Result<TradeoffAnalysis, PowerDialError> {
    let calibration = system.calibration();
    let comparator = app.qos_comparator();
    let production_inputs = app.input_count(InputSet::Production);

    let to_point = |p: &powerdial_knobs::CalibrationPoint| TradeoffPoint {
        setting_index: p.setting_index,
        setting: p.setting.to_string(),
        speedup: p.speedup,
        qos_loss_percent: p.qos_loss.percent(),
    };

    let training_points: Vec<TradeoffPoint> = calibration.points().iter().map(to_point).collect();
    let pareto: Vec<_> = calibration.pareto_points();
    let pareto_training: Vec<TradeoffPoint> = pareto.iter().map(|p| to_point(p)).collect();

    // Re-measure the Pareto settings on the production inputs.
    let baseline_setting = calibration.baseline().setting.clone();
    let production_baseline: Vec<_> = (0..production_inputs)
        .map(|index| app.run_input(InputSet::Production, index, &baseline_setting))
        .collect();

    let mut pareto_production = Vec::with_capacity(pareto.len());
    for point in &pareto {
        let mut speedups = Vec::with_capacity(production_inputs);
        let mut losses = Vec::with_capacity(production_inputs);
        for (index, baseline) in production_baseline.iter().enumerate() {
            let result = app.run_input(InputSet::Production, index, &point.setting);
            speedups.push(baseline.work / result.work);
            losses.push(comparator.qos_loss(&baseline.output, &result.output)?);
        }
        let speedup = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        let qos_loss = QosLoss::mean(losses).unwrap_or(QosLoss::ZERO);
        pareto_production.push(TradeoffPoint {
            setting_index: point.setting_index,
            setting: point.setting.to_string(),
            speedup,
            qos_loss_percent: qos_loss.percent(),
        });
    }

    let training_speedups: Vec<f64> = pareto_training.iter().map(|p| p.speedup).collect();
    let production_speedups: Vec<f64> = pareto_production.iter().map(|p| p.speedup).collect();
    let training_losses: Vec<f64> = pareto_training.iter().map(|p| p.qos_loss_percent).collect();
    let production_losses: Vec<f64> = pareto_production
        .iter()
        .map(|p| p.qos_loss_percent)
        .collect();

    Ok(TradeoffAnalysis {
        application: app.name().to_string(),
        training_points,
        pareto_training,
        pareto_production,
        speedup_correlation: pearson_correlation(&training_speedups, &production_speedups),
        qos_correlation: pearson_correlation(&training_losses, &production_losses),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PowerDialConfig;
    use powerdial_apps::{SearchApp, SwaptionsApp};

    #[test]
    fn swaptions_tradeoff_space_has_the_paper_shape() {
        let app = SwaptionsApp::test_scale(13);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let analysis = tradeoff_analysis(&app, &system).unwrap();

        assert_eq!(analysis.application, "swaptions");
        assert_eq!(analysis.training_points.len(), 6);
        assert!(!analysis.pareto_training.is_empty());
        assert_eq!(
            analysis.pareto_training.len(),
            analysis.pareto_production.len()
        );

        // Large speedups at small QoS loss, as in Figure 5a.
        assert!(analysis.max_training_speedup() > 10.0);
        assert!(analysis.max_pareto_qos_loss_percent() < 20.0);

        // Training predicts production (Table 2): correlations near 1.
        let speedup_corr = analysis.speedup_correlation.unwrap();
        assert!(speedup_corr > 0.95, "speedup correlation {speedup_corr}");
    }

    #[test]
    fn search_tradeoff_is_modest_and_monotone() {
        let app = SearchApp::test_scale(19);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let analysis = tradeoff_analysis(&app, &system).unwrap();

        // swish++ tops out around 1.5x, with QoS loss rising as results are
        // dropped (Figure 5d).
        let max_speedup = analysis.max_training_speedup();
        assert!(
            max_speedup > 1.2 && max_speedup < 2.0,
            "speedup {max_speedup}"
        );

        // Along the Pareto frontier, more speedup costs more QoS.
        let frontier = &analysis.pareto_training;
        for pair in frontier.windows(2) {
            assert!(pair[0].speedup <= pair[1].speedup + 1e-12);
            assert!(pair[0].qos_loss_percent <= pair[1].qos_loss_percent + 1e-9);
        }
    }
}
