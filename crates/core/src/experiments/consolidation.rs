//! Server consolidation across utilization levels (Figure 8).
//!
//! Two drivers produce the study:
//!
//! * [`consolidation_study`] — the analytic sweep: at each utilization the
//!   actuator is planned directly for the required speedup (closed form,
//!   exact);
//! * [`consolidation_study_live`] — the same sweep run through the real
//!   multi-application machinery: every consolidated machine is an
//!   application registered in a [`powerdial_heartbeats::HeartbeatRegistry`],
//!   emitting heartbeats over a lock-free SPSC channel into a sharded
//!   [`PowerDialDaemon`], whose per-quantum batched controller converges on
//!   the required speedup. The equivalence test asserts the two agree.

use serde::{Deserialize, Serialize};

use powerdial_analytic::consolidation::{required_speedup, ConsolidationModel};
use powerdial_control::daemon::{DaemonConfig, PowerDialDaemon};
use powerdial_control::{ActuationPolicy, Actuator, ControllerConfig, RuntimeConfig};
use powerdial_heartbeats::channel::BeatSample;
use powerdial_heartbeats::{HeartbeatRegistry, MonitorConfig, Timestamp, TimestampDelta};
use powerdial_platform::{Cluster, FrequencyState, PowerModel};
use powerdial_qos::QosLossBound;

use crate::error::PowerDialError;
use crate::system::PowerDialSystem;

/// One utilization point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationPoint {
    /// System utilization relative to the original, fully provisioned system
    /// (1.0 = the peak load it was provisioned for).
    pub utilization: f64,
    /// Mean power of the original system at this utilization, in watts.
    pub original_power_watts: f64,
    /// Mean power of the consolidated system at this utilization, in watts.
    pub consolidated_power_watts: f64,
    /// Mean QoS loss the consolidated system incurs to keep up, as a
    /// percentage.
    pub qos_loss_percent: f64,
}

/// The complete Figure 8 study for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationStudy {
    /// The application's name.
    pub application: String,
    /// Machines in the original system.
    pub original_machines: usize,
    /// Machines in the consolidated system.
    pub consolidated_machines: usize,
    /// The QoS-loss bound used to provision the consolidated system.
    pub qos_bound_percent: f64,
    /// The speedup available within the bound (used for provisioning).
    pub provisioning_speedup: f64,
    /// The sweep over utilization.
    pub points: Vec<ConsolidationPoint>,
}

impl ConsolidationStudy {
    /// The largest QoS loss incurred anywhere in the sweep.
    pub fn max_qos_loss_percent(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.qos_loss_percent)
            .fold(0.0, f64::max)
    }

    /// The power saved at full utilization, as a fraction of the original
    /// system's power.
    pub fn peak_load_power_savings(&self) -> f64 {
        match self.points.last() {
            Some(point) if point.original_power_watts > 0.0 => {
                (point.original_power_watts - point.consolidated_power_watts)
                    / point.original_power_watts
            }
            _ => 0.0,
        }
    }

    /// The power saved at the given utilization (interpolating between sweep
    /// points is not needed: the sweep is dense).
    pub fn savings_at(&self, utilization: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.utilization - utilization)
                    .abs()
                    .partial_cmp(&(b.utilization - utilization).abs())
                    .expect("utilizations are finite")
            })
            .map(|p| p.original_power_watts - p.consolidated_power_watts)
    }
}

/// Runs the Figure 8 experiment.
///
/// The original system has `original_machines` machines serving the peak load
/// with the baseline configuration. The consolidated system is provisioned
/// with Equation 21 using the largest speedup available within `qos_bound`,
/// then the offered load is swept from 0 to the original system's peak; at
/// each level the consolidated system uses the PowerDial actuator to pick the
/// cheapest knob setting that keeps up.
///
/// # Errors
///
/// Returns an error when no knob setting satisfies the QoS bound or the
/// cluster parameters are invalid.
pub fn consolidation_study(
    system: &PowerDialSystem,
    original_machines: usize,
    qos_bound: QosLossBound,
    utilization_steps: usize,
) -> Result<ConsolidationStudy, PowerDialError> {
    let Provisioning {
        bounded_table,
        provisioning_speedup,
        consolidated_machines,
        original,
        consolidated,
    } = provision(system, original_machines, qos_bound)?;
    let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);

    let steps = utilization_steps.max(2);
    let mut points = Vec::with_capacity(steps);
    for step in 0..steps {
        let utilization = step as f64 / (steps - 1) as f64;
        let offered_load = utilization * original_machines as f64;

        let original_power = original
            .power_at_load(offered_load, FrequencyState::highest())?
            .total_watts;

        // The consolidated system must absorb the same offered load with
        // fewer machines: the required speedup is the ratio of offered load
        // to available capacity (at least 1).
        let required = required_speedup(offered_load, consolidated_machines);
        let schedule = actuator.plan(&bounded_table, required);
        let achieved = schedule.achieved_speedup.max(1.0);
        let qos_loss_percent = schedule.expected_qos_loss() * 100.0;

        let consolidated_load = offered_load / achieved;
        let consolidated_power = consolidated
            .power_at_load(consolidated_load, FrequencyState::highest())?
            .total_watts;

        points.push(ConsolidationPoint {
            utilization,
            original_power_watts: original_power,
            consolidated_power_watts: consolidated_power,
            qos_loss_percent,
        });
    }

    Ok(ConsolidationStudy {
        application: system.application().to_string(),
        original_machines,
        consolidated_machines,
        qos_bound_percent: qos_bound.percent(),
        provisioning_speedup,
        points,
    })
}

/// Provisioning shared by the analytic and live sweeps: the QoS-bounded
/// knob table, the Equation 21 machine count, and both clusters. Keeping
/// this in one place is what makes [`consolidation_study`] and
/// [`consolidation_study_live`] comparable point for point.
struct Provisioning {
    bounded_table: powerdial_knobs::KnobTable,
    provisioning_speedup: f64,
    consolidated_machines: usize,
    original: Cluster,
    consolidated: Cluster,
}

fn provision(
    system: &PowerDialSystem,
    original_machines: usize,
    qos_bound: QosLossBound,
) -> Result<Provisioning, PowerDialError> {
    let bounded_table = system.calibration().knob_table(qos_bound)?;
    let provisioning_speedup = bounded_table.max_speedup();

    // Equation 21: machines needed after consolidation. The average
    // utilization parameter only affects the power bookkeeping of the
    // analytic model, not the provisioning, so the data-center typical 25 %
    // is used.
    let model = ConsolidationModel::new(
        original_machines,
        1.0,
        0.25,
        PowerModel::poweredge_r410().max_watts(),
        PowerModel::poweredge_r410().idle_watts(),
    )?;
    let consolidated_machines = model.machines_needed(provisioning_speedup)?;

    let original = Cluster::new("original", original_machines, PowerModel::poweredge_r410())?;
    let consolidated = Cluster::new(
        "consolidated",
        consolidated_machines,
        PowerModel::poweredge_r410(),
    )?;
    Ok(Provisioning {
        bounded_table,
        provisioning_speedup,
        consolidated_machines,
        original,
        consolidated,
    })
}

/// Options for the daemon-driven consolidation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveConsolidationOptions {
    /// Worker threads the daemon shards machines across (0 = inline, fully
    /// deterministic).
    pub workers: usize,
    /// Actuation quanta simulated per utilization step; the integral
    /// controller is near-deadbeat, so a handful suffice for convergence.
    pub quanta_per_step: usize,
    /// Nominal heart-rate target each machine's application runs at, in
    /// beats per second. Only sets the simulation's time scale.
    pub target_rate_bps: f64,
}

impl Default for LiveConsolidationOptions {
    fn default() -> Self {
        LiveConsolidationOptions {
            workers: 0,
            quanta_per_step: 15,
            target_rate_bps: 30.0,
        }
    }
}

/// Runs the Figure 8 experiment through the live multi-application stack.
///
/// Provisioning is identical to [`consolidation_study`]. The sweep itself
/// is not analytic: every consolidated machine runs an instrumented
/// application — a [`powerdial_heartbeats::HeartbeatMonitor`] registered in
/// a [`HeartbeatRegistry`] — whose beat records flow over a lock-free SPSC
/// channel into a [`PowerDialDaemon`]. At each utilization step the
/// machines' effective capacity drops to `1 / required_speedup`; the
/// daemon's per-quantum batched controllers observe the slowdown through
/// the windowed heart rate and drive each machine's knobs until the target
/// rate is restored. Power and QoS are then read from the daemon's
/// converged decisions, exactly as an operator would read them off the
/// running system.
///
/// # Errors
///
/// Returns an error when no knob setting satisfies the QoS bound, the
/// cluster parameters are invalid, or a heartbeat stream overflows its
/// channel (the channel is sized for the quantum, so this indicates a bug).
pub fn consolidation_study_live(
    system: &PowerDialSystem,
    original_machines: usize,
    qos_bound: QosLossBound,
    utilization_steps: usize,
    options: LiveConsolidationOptions,
) -> Result<ConsolidationStudy, PowerDialError> {
    let Provisioning {
        bounded_table,
        provisioning_speedup,
        consolidated_machines,
        original,
        consolidated,
    } = provision(system, original_machines, qos_bound)?;

    // One application per consolidated machine: a monitor in the registry
    // (the paper's shared heartbeat namespace) plus a daemon registration.
    let target = options.target_rate_bps;
    let runtime_config = RuntimeConfig::new(ControllerConfig::new(target, target)?);
    let quantum = runtime_config.quantum_heartbeats as usize;
    let mut daemon = PowerDialDaemon::new(DaemonConfig {
        workers: options.workers,
        channel_capacity: (quantum * 2).max(DaemonConfig::DEFAULT_CHANNEL_CAPACITY),
        window_size: quantum,
        inline_apps: DaemonConfig::DEFAULT_INLINE_APPS,
        idle_skip_limit: 0,
        drain_cap: 0,
        telemetry: true,
        trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
        safe_point: 0,
    })?;
    let mut registry = HeartbeatRegistry::new();
    let mut machines = Vec::with_capacity(consolidated_machines);
    for machine in 0..consolidated_machines {
        let monitor_id = registry.register(
            MonitorConfig::new(format!("{}-machine-{machine}", system.application()))
                .with_target_rate_range(target, target)?,
        )?;
        let handle = daemon.register(runtime_config, bounded_table.clone())?;
        machines.push((monitor_id, handle, Timestamp::ZERO));
    }

    let steps = utilization_steps.max(2);
    let mut points = Vec::with_capacity(steps);
    for step in 0..steps {
        let utilization = step as f64 / (steps - 1) as f64;
        let offered_load = utilization * original_machines as f64;

        let original_power = original
            .power_at_load(offered_load, FrequencyState::highest())?
            .total_watts;

        // Consolidation slows each machine's application by the required
        // speedup; the daemon has to win it back through the knobs.
        let required = required_speedup(offered_load, consolidated_machines);
        let capacity = 1.0 / required;

        for _ in 0..options.quanta_per_step {
            for (monitor_id, handle, now) in &mut machines {
                // The application processes `quantum` units at the gain the
                // daemon last decided (1.0 before any decision).
                let gain = handle.achieved_speedup().unwrap_or(1.0).max(1.0);
                let latency_secs = 1.0 / (target * capacity * gain);
                for _ in 0..quantum {
                    *now += TimestampDelta::from_secs_f64(latency_secs);
                    let record = registry.monitor_mut(*monitor_id)?.heartbeat(*now);
                    handle
                        .push_sample(BeatSample::from_record(&record))
                        .map_err(|_| PowerDialError::HeartbeatChannelFull)?;
                }
            }
            daemon.tick();
        }

        // Read the converged state off the daemon, averaged over machines.
        let machine_count = machines.len() as f64;
        let mean_achieved = machines
            .iter()
            .map(|(_, handle, _)| handle.achieved_speedup().unwrap_or(1.0).max(1.0))
            .sum::<f64>()
            / machine_count;
        let qos_loss_percent = machines
            .iter()
            .map(|(_, handle, _)| handle.expected_qos_loss().unwrap_or(0.0))
            .sum::<f64>()
            / machine_count
            * 100.0;

        let consolidated_load = offered_load / mean_achieved;
        let consolidated_power = consolidated
            .power_at_load(consolidated_load, FrequencyState::highest())?
            .total_watts;

        points.push(ConsolidationPoint {
            utilization,
            original_power_watts: original_power,
            consolidated_power_watts: consolidated_power,
            qos_loss_percent,
        });
    }

    Ok(ConsolidationStudy {
        application: system.application().to_string(),
        original_machines,
        consolidated_machines,
        qos_bound_percent: qos_bound.percent(),
        provisioning_speedup,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{PowerDialConfig, PowerDialSystem};
    use powerdial_apps::{SearchApp, SwaptionsApp};

    #[test]
    fn parsec_style_consolidation_reproduces_figure_8() {
        let app = SwaptionsApp::test_scale(37);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let study =
            consolidation_study(&system, 4, QosLossBound::from_percent(5.0).unwrap(), 21).unwrap();

        // The paper consolidates the PARSEC benchmarks from 4 machines to 1.
        assert_eq!(study.original_machines, 4);
        assert_eq!(study.consolidated_machines, 1);
        assert!(study.provisioning_speedup >= 4.0);

        // At 25 % utilization the consolidated system saves roughly 400 W
        // (about two thirds of the original power).
        let savings_at_quarter = study.savings_at(0.25).unwrap();
        assert!(
            savings_at_quarter > 250.0,
            "savings at 25% utilization {savings_at_quarter:.0} W"
        );

        // At peak load the consolidated system consumes ~75 % less power.
        let peak_savings = study.peak_load_power_savings();
        assert!(
            (peak_savings - 0.75).abs() < 0.05,
            "peak-load savings fraction {peak_savings}"
        );

        // QoS loss stays within the provisioning bound and is zero at low
        // utilization.
        assert!(study.points[0].qos_loss_percent < 1e-9);
        assert!(study.max_qos_loss_percent() <= 5.0 + 1e-6);

        // QoS loss rises monotonically with utilization.
        for pair in study.points.windows(2) {
            assert!(pair[1].qos_loss_percent + 1e-9 >= pair[0].qos_loss_percent);
        }
    }

    #[test]
    fn live_daemon_study_matches_analytic_study() {
        // The daemon-driven sweep must converge to the analytic sweep at
        // every utilization point: same provisioning, near-identical QoS
        // loss and power. The controller is near-deadbeat, so 15 quanta per
        // step leave only windowing wobble.
        let app = SwaptionsApp::test_scale(37);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let bound = QosLossBound::from_percent(5.0).unwrap();
        let analytic = consolidation_study(&system, 4, bound, 11).unwrap();
        let live =
            consolidation_study_live(&system, 4, bound, 11, LiveConsolidationOptions::default())
                .unwrap();

        assert_eq!(live.original_machines, analytic.original_machines);
        assert_eq!(live.consolidated_machines, analytic.consolidated_machines);
        assert_eq!(live.provisioning_speedup, analytic.provisioning_speedup);
        assert_eq!(live.points.len(), analytic.points.len());

        for (live_point, analytic_point) in live.points.iter().zip(&analytic.points) {
            assert_eq!(live_point.utilization, analytic_point.utilization);
            assert_eq!(
                live_point.original_power_watts,
                analytic_point.original_power_watts
            );
            assert!(
                (live_point.qos_loss_percent - analytic_point.qos_loss_percent).abs() < 0.5,
                "qos diverged at utilization {}: live {} vs analytic {}",
                live_point.utilization,
                live_point.qos_loss_percent,
                analytic_point.qos_loss_percent
            );
            assert!(
                (live_point.consolidated_power_watts - analytic_point.consolidated_power_watts)
                    .abs()
                    < 0.02 * analytic_point.consolidated_power_watts.max(1.0),
                "power diverged at utilization {}: live {} vs analytic {}",
                live_point.utilization,
                live_point.consolidated_power_watts,
                analytic_point.consolidated_power_watts
            );
        }

        // The live study must stay within the provisioning bound too.
        assert!(live.max_qos_loss_percent() <= 5.0 + 0.5);
        assert!((live.peak_load_power_savings() - analytic.peak_load_power_savings()).abs() < 0.03);
    }

    #[test]
    fn live_study_through_threaded_daemon_stays_within_bound() {
        // Same experiment through real worker threads: convergence and the
        // QoS bound hold regardless of where the shards run.
        let app = SearchApp::test_scale(41);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let bound = QosLossBound::from_percent(30.0).unwrap();
        let live = consolidation_study_live(
            &system,
            3,
            bound,
            7,
            LiveConsolidationOptions {
                workers: 2,
                ..LiveConsolidationOptions::default()
            },
        )
        .unwrap();
        assert_eq!(live.original_machines, 3);
        assert_eq!(live.consolidated_machines, 2);
        assert!(live.peak_load_power_savings() > 0.2);
        assert!(live.max_qos_loss_percent() <= 30.0 + 0.5);
    }

    #[test]
    fn search_consolidation_drops_one_of_three_machines() {
        let app = SearchApp::test_scale(41);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let study =
            consolidation_study(&system, 3, QosLossBound::from_percent(30.0).unwrap(), 11).unwrap();
        // swish++'s ~1.5x speedup lets the paper drop one of three machines.
        assert_eq!(study.original_machines, 3);
        assert_eq!(study.consolidated_machines, 2);
        assert!(study.peak_load_power_savings() > 0.2);
        assert!(study.max_qos_loss_percent() <= 30.0 + 1e-6);
    }
}
