//! Server consolidation across utilization levels (Figure 8).

use serde::{Deserialize, Serialize};

use powerdial_analytic::consolidation::ConsolidationModel;
use powerdial_control::{ActuationPolicy, Actuator};
use powerdial_platform::{Cluster, FrequencyState, PowerModel};
use powerdial_qos::QosLossBound;

use crate::error::PowerDialError;
use crate::system::PowerDialSystem;

/// One utilization point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationPoint {
    /// System utilization relative to the original, fully provisioned system
    /// (1.0 = the peak load it was provisioned for).
    pub utilization: f64,
    /// Mean power of the original system at this utilization, in watts.
    pub original_power_watts: f64,
    /// Mean power of the consolidated system at this utilization, in watts.
    pub consolidated_power_watts: f64,
    /// Mean QoS loss the consolidated system incurs to keep up, as a
    /// percentage.
    pub qos_loss_percent: f64,
}

/// The complete Figure 8 study for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationStudy {
    /// The application's name.
    pub application: String,
    /// Machines in the original system.
    pub original_machines: usize,
    /// Machines in the consolidated system.
    pub consolidated_machines: usize,
    /// The QoS-loss bound used to provision the consolidated system.
    pub qos_bound_percent: f64,
    /// The speedup available within the bound (used for provisioning).
    pub provisioning_speedup: f64,
    /// The sweep over utilization.
    pub points: Vec<ConsolidationPoint>,
}

impl ConsolidationStudy {
    /// The largest QoS loss incurred anywhere in the sweep.
    pub fn max_qos_loss_percent(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.qos_loss_percent)
            .fold(0.0, f64::max)
    }

    /// The power saved at full utilization, as a fraction of the original
    /// system's power.
    pub fn peak_load_power_savings(&self) -> f64 {
        match self.points.last() {
            Some(point) if point.original_power_watts > 0.0 => {
                (point.original_power_watts - point.consolidated_power_watts)
                    / point.original_power_watts
            }
            _ => 0.0,
        }
    }

    /// The power saved at the given utilization (interpolating between sweep
    /// points is not needed: the sweep is dense).
    pub fn savings_at(&self, utilization: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.utilization - utilization)
                    .abs()
                    .partial_cmp(&(b.utilization - utilization).abs())
                    .expect("utilizations are finite")
            })
            .map(|p| p.original_power_watts - p.consolidated_power_watts)
    }
}

/// Runs the Figure 8 experiment.
///
/// The original system has `original_machines` machines serving the peak load
/// with the baseline configuration. The consolidated system is provisioned
/// with Equation 21 using the largest speedup available within `qos_bound`,
/// then the offered load is swept from 0 to the original system's peak; at
/// each level the consolidated system uses the PowerDial actuator to pick the
/// cheapest knob setting that keeps up.
///
/// # Errors
///
/// Returns an error when no knob setting satisfies the QoS bound or the
/// cluster parameters are invalid.
pub fn consolidation_study(
    system: &PowerDialSystem,
    original_machines: usize,
    qos_bound: QosLossBound,
    utilization_steps: usize,
) -> Result<ConsolidationStudy, PowerDialError> {
    let bounded_table = system.calibration().knob_table(qos_bound)?;
    let provisioning_speedup = bounded_table.max_speedup();

    // Equation 21: machines needed after consolidation. The average
    // utilization parameter only affects the power bookkeeping of the
    // analytic model, not the provisioning, so the data-center typical 25 %
    // is used.
    let model = ConsolidationModel::new(
        original_machines,
        1.0,
        0.25,
        PowerModel::poweredge_r410().max_watts(),
        PowerModel::poweredge_r410().idle_watts(),
    )?;
    let consolidated_machines = model.machines_needed(provisioning_speedup)?;

    let original = Cluster::new("original", original_machines, PowerModel::poweredge_r410())?;
    let consolidated = Cluster::new(
        "consolidated",
        consolidated_machines,
        PowerModel::poweredge_r410(),
    )?;
    let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);

    let steps = utilization_steps.max(2);
    let mut points = Vec::with_capacity(steps);
    for step in 0..steps {
        let utilization = step as f64 / (steps - 1) as f64;
        let offered_load = utilization * original_machines as f64;

        let original_power = original
            .power_at_load(offered_load, FrequencyState::highest())?
            .total_watts;

        // The consolidated system must absorb the same offered load with
        // fewer machines: the required speedup is the ratio of offered load
        // to available capacity (at least 1).
        let required_speedup = (offered_load / consolidated_machines as f64).max(1.0);
        let schedule = actuator.plan(&bounded_table, required_speedup);
        let achieved = schedule.achieved_speedup.max(1.0);
        let qos_loss_percent = schedule.expected_qos_loss() * 100.0;

        let consolidated_load = offered_load / achieved;
        let consolidated_power = consolidated
            .power_at_load(consolidated_load, FrequencyState::highest())?
            .total_watts;

        points.push(ConsolidationPoint {
            utilization,
            original_power_watts: original_power,
            consolidated_power_watts: consolidated_power,
            qos_loss_percent,
        });
    }

    Ok(ConsolidationStudy {
        application: system.application().to_string(),
        original_machines,
        consolidated_machines,
        qos_bound_percent: qos_bound.percent(),
        provisioning_speedup,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{PowerDialConfig, PowerDialSystem};
    use powerdial_apps::{SearchApp, SwaptionsApp};

    #[test]
    fn parsec_style_consolidation_reproduces_figure_8() {
        let app = SwaptionsApp::test_scale(37);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let study =
            consolidation_study(&system, 4, QosLossBound::from_percent(5.0).unwrap(), 21).unwrap();

        // The paper consolidates the PARSEC benchmarks from 4 machines to 1.
        assert_eq!(study.original_machines, 4);
        assert_eq!(study.consolidated_machines, 1);
        assert!(study.provisioning_speedup >= 4.0);

        // At 25 % utilization the consolidated system saves roughly 400 W
        // (about two thirds of the original power).
        let savings_at_quarter = study.savings_at(0.25).unwrap();
        assert!(
            savings_at_quarter > 250.0,
            "savings at 25% utilization {savings_at_quarter:.0} W"
        );

        // At peak load the consolidated system consumes ~75 % less power.
        let peak_savings = study.peak_load_power_savings();
        assert!(
            (peak_savings - 0.75).abs() < 0.05,
            "peak-load savings fraction {peak_savings}"
        );

        // QoS loss stays within the provisioning bound and is zero at low
        // utilization.
        assert!(study.points[0].qos_loss_percent < 1e-9);
        assert!(study.max_qos_loss_percent() <= 5.0 + 1e-6);

        // QoS loss rises monotonically with utilization.
        for pair in study.points.windows(2) {
            assert!(pair[1].qos_loss_percent + 1e-9 >= pair[0].qos_loss_percent);
        }
    }

    #[test]
    fn search_consolidation_drops_one_of_three_machines() {
        let app = SearchApp::test_scale(41);
        let system = PowerDialSystem::build(&app, PowerDialConfig::default()).unwrap();
        let study =
            consolidation_study(&system, 3, QosLossBound::from_percent(30.0).unwrap(), 11).unwrap();
        // swish++'s ~1.5x speedup lets the paper drop one of three machines.
        assert_eq!(study.original_machines, 3);
        assert_eq!(study.consolidated_machines, 2);
        assert!(study.peak_load_power_savings() > 0.2);
        assert!(study.max_qos_loss_percent() <= 30.0 + 1e-6);
    }
}
