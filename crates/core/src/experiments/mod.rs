//! Experiment drivers reproducing the paper's evaluation (Section 5).
//!
//! Each submodule regenerates one table or figure:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`inputs`] | Table 1 — training and production inputs per benchmark |
//! | [`tradeoff`] | Figure 5 and Table 2 — speedup versus QoS-loss trade-off spaces and training/production correlation |
//! | [`frequency`] | Figure 6 — power and QoS loss versus processor frequency with PowerDial holding baseline performance |
//! | [`power_cap`] | Figure 7 — dynamic response to a power cap imposed and lifted mid-run |
//! | [`consolidation`] | Figure 8 — power and QoS loss of original versus consolidated systems across utilization |
//!
//! The shared closed-loop simulator lives in [`sim`].

pub mod consolidation;
pub mod frequency;
pub mod inputs;
pub mod power_cap;
pub mod sim;
pub mod tradeoff;

pub use consolidation::{
    consolidation_study, consolidation_study_live, ConsolidationPoint, ConsolidationStudy,
    LiveConsolidationOptions,
};
pub use frequency::{frequency_sweep, frequency_sweep_over, FrequencySweepPoint};
pub use inputs::{input_summary, InputSummaryRow};
pub use power_cap::{power_cap_response, power_cap_response_on, PowerCapSeries};
pub use sim::{
    simulate_closed_loop, simulate_closed_loop_naive, ClosedLoopOutcome, ClosedLoopStep,
    SimulationOptions,
};
pub use tradeoff::{tradeoff_analysis, TradeoffAnalysis, TradeoffPoint};

/// Pearson correlation coefficient between two equally long samples.
/// Returns `None` when fewer than two points are available or either sample
/// has zero variance.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut covariance = 0.0;
    let mut variance_x = 0.0;
    let mut variance_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        covariance += (x - mean_x) * (y - mean_y);
        variance_x += (x - mean_x).powi(2);
        variance_y += (y - mean_y).powi(2);
    }
    if variance_x == 0.0 || variance_y == 0.0 {
        return None;
    }
    Some(covariance / (variance_x * variance_y).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_of_identical_samples_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson_correlation(&xs, &xs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_inverted_samples_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson_correlation(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_give_none() {
        assert!(pearson_correlation(&[1.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn linear_relationship_is_detected() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        assert!((pearson_correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-9);
    }
}
