//! A simulated execution platform for power-aware experiments.
//!
//! The PowerDial paper evaluates on a Dell PowerEdge R410 server: two
//! quad-core Xeon E5530 processors with seven DVFS states between 2.4 GHz
//! and 1.6 GHz, `cpufrequtils` for software frequency control, and a WattsUp
//! meter sampling full-system power at one-second intervals (idle ≈ 90 W,
//! full load ≈ 220 W). This crate provides a deterministic simulation of that
//! platform so the paper's experiments can run anywhere:
//!
//! * [`FrequencyTable`], [`FrequencyState`], and [`DvfsGovernor`] — discrete
//!   frequency ladders (the paper's seven states are one table among many),
//!   table-relative states, and the software control over them;
//! * [`backend`] — the pluggable DVFS actuation seam: [`DvfsBackend`] with a
//!   simulated implementation ([`SimBackend`]) and, behind the `dvfs-sysfs`
//!   feature on Linux, a real sysfs/cpufreq implementation;
//! * [`PowerModel`], [`PowerSampler`], and [`EnergyAccount`] — full-system
//!   power as a function of frequency and utilization, 1 Hz sampling, and
//!   energy integration;
//! * [`SimMachine`] — a machine with a virtual clock that executes abstract
//!   work units at a rate proportional to its clock frequency and accounts
//!   for busy and idle energy;
//! * [`PowerCapSchedule`] — timed frequency caps (the paper's power-cap
//!   scenario drops the machine to its lowest state for the middle half of
//!   the run);
//! * [`LoadTrace`] and [`WorkloadGenerator`] — utilization traces with
//!   intermittent spikes for the provisioning experiments;
//! * [`Cluster`] — a group of machines behind a proportional load balancer,
//!   used by the server-consolidation experiments.
//!
//! # Example
//!
//! ```
//! use powerdial_platform::{FrequencyState, PowerModel, SimMachine};
//!
//! let mut machine = SimMachine::new("node0", PowerModel::poweredge_r410(), 1000.0);
//! machine.execute_work(500.0);               // half a second of work at 2.4 GHz
//! machine.set_frequency(FrequencyState::lowest());
//! machine.execute_work(500.0);               // the same work now takes longer
//! assert!(machine.now().as_secs_f64() > 1.0);
//! assert!(machine.energy().total_joules() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod backend;
mod cluster;
mod error;
mod frequency;
mod machine;
pub mod naive;
mod power;
mod powercap;
mod workload;

#[cfg(all(feature = "dvfs-sysfs", target_os = "linux"))]
pub use backend::SysfsCpufreqBackend;
pub use backend::{DvfsBackend, SimBackend};
pub use cluster::{Cluster, ClusterPowerBreakdown};
pub use error::PlatformError;
pub use frequency::{
    DvfsGovernor, FrequencyState, FrequencyTable, DVFS_FREQUENCIES_GHZ, DVFS_FREQUENCIES_KHZ,
};
pub use machine::SimMachine;
pub use power::{EnergyAccount, PowerModel, PowerSample, PowerSampler};
pub use powercap::{PowerCapEvent, PowerCapSchedule};
pub use workload::{LoadTrace, WorkloadGenerator};
