//! The pre-backend direct DVFS path, preserved verbatim for equivalence
//! testing (mirroring `heartbeats::naive` and `control::naive` from earlier
//! PRs).
//!
//! Before the [`crate::backend::DvfsBackend`] seam existed, the frequency
//! ladder was a global seven-step array baked into `FrequencyState`, and the
//! closed-loop simulator drove `SimMachine::set_frequency` directly. This
//! module keeps that path alive — ladder, governor, power-cap schedule, and
//! machine — so the `backend_equivalence` integration test can prove the
//! refactored path produces bit-identical frequency/QoS/power trajectories.
//! Nothing here should be used by new code.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_heartbeats::{Timestamp, TimestampDelta};

use crate::error::PlatformError;
use crate::power::{EnergyAccount, PowerModel, PowerSampler};

/// The seven frequency steps of the evaluation platform, in GHz, highest
/// first (the pre-backend global ladder).
pub const DVFS_FREQUENCIES_GHZ: [f64; 7] = [2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6];

/// One discrete DVFS state of the pre-backend global ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrequencyState {
    index: usize,
}

impl FrequencyState {
    /// The highest-frequency (highest-power) state: 2.4 GHz.
    pub const fn highest() -> Self {
        FrequencyState { index: 0 }
    }

    /// The lowest-frequency (lowest-power) state: 1.6 GHz.
    pub const fn lowest() -> Self {
        FrequencyState {
            index: DVFS_FREQUENCIES_GHZ.len() - 1,
        }
    }

    /// All states from highest to lowest frequency.
    pub fn all() -> impl Iterator<Item = FrequencyState> {
        (0..DVFS_FREQUENCIES_GHZ.len()).map(|index| FrequencyState { index })
    }

    /// The state with the given ladder index (0 = highest frequency).
    pub fn from_index(index: usize) -> Option<Self> {
        if index < DVFS_FREQUENCIES_GHZ.len() {
            Some(FrequencyState { index })
        } else {
            None
        }
    }

    /// The ladder index (0 = highest frequency).
    pub const fn index(self) -> usize {
        self.index
    }

    /// The clock frequency in GHz.
    pub fn ghz(self) -> f64 {
        DVFS_FREQUENCIES_GHZ[self.index]
    }

    /// The delivered computational capacity relative to the highest state.
    pub fn capacity(self) -> f64 {
        self.ghz() / DVFS_FREQUENCIES_GHZ[0]
    }
}

impl Default for FrequencyState {
    fn default() -> Self {
        FrequencyState::highest()
    }
}

impl fmt::Display for FrequencyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.ghz())
    }
}

/// The pre-backend software frequency governor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DvfsGovernor {
    state: FrequencyState,
    transitions: u64,
}

impl DvfsGovernor {
    /// Creates a governor starting in the highest-frequency state.
    pub fn new() -> Self {
        DvfsGovernor::default()
    }

    /// The current frequency state.
    pub fn state(&self) -> FrequencyState {
        self.state
    }

    /// Sets the frequency state, counting the transition if it changes.
    pub fn set_state(&mut self, state: FrequencyState) {
        if state != self.state {
            self.transitions += 1;
        }
        self.state = state;
    }

    /// Number of state changes so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// One power-cap event on the pre-backend ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCapEvent {
    /// When the cap takes effect.
    pub at: Timestamp,
    /// The frequency state imposed from that time on.
    pub state: FrequencyState,
}

/// The pre-backend power-cap schedule (timed frequency restrictions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCapSchedule {
    initial: FrequencyState,
    events: Vec<PowerCapEvent>,
}

impl PowerCapSchedule {
    /// A schedule with no caps: the machine stays in `initial` forever.
    pub fn constant(initial: FrequencyState) -> Self {
        PowerCapSchedule {
            initial,
            events: Vec::new(),
        }
    }

    /// The paper's power-cap scenario for a run of the given total duration:
    /// the cap (lowest frequency) is imposed at one quarter of the run and
    /// lifted at three quarters.
    pub fn paper_power_cap(total_duration: Timestamp) -> Self {
        let total = total_duration.as_secs_f64();
        PowerCapSchedule::constant(FrequencyState::highest())
            .with_event(
                Timestamp::from_secs_f64(total * 0.25),
                FrequencyState::lowest(),
            )
            .with_event(
                Timestamp::from_secs_f64(total * 0.75),
                FrequencyState::highest(),
            )
    }

    /// Adds a cap event; events may be added in any order.
    pub fn with_event(mut self, at: Timestamp, state: FrequencyState) -> Self {
        self.events.push(PowerCapEvent { at, state });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The frequency state in force at time `t`.
    pub fn state_at(&self, t: Timestamp) -> FrequencyState {
        self.events
            .iter()
            .rev()
            .find(|e| e.at <= t)
            .map(|e| e.state)
            .unwrap_or(self.initial)
    }
}

/// The pre-backend simulated machine: a virtual clock, direct governor
/// control, and energy accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMachine {
    name: String,
    power_model: PowerModel,
    governor: DvfsGovernor,
    base_work_rate: f64,
    now: Timestamp,
    energy: EnergyAccount,
    sampler: PowerSampler,
    work_executed: f64,
}

impl SimMachine {
    /// Creates a machine with the given power model and throughput at the
    /// highest frequency state.
    ///
    /// # Panics
    ///
    /// Panics if `base_work_rate` is not positive and finite.
    pub fn new(name: impl Into<String>, power_model: PowerModel, base_work_rate: f64) -> Self {
        assert!(
            base_work_rate.is_finite() && base_work_rate > 0.0,
            "base work rate must be positive and finite, got {base_work_rate}"
        );
        SimMachine {
            name: name.into(),
            power_model,
            governor: DvfsGovernor::new(),
            base_work_rate,
            now: Timestamp::ZERO,
            energy: EnergyAccount::new(),
            sampler: PowerSampler::new(),
            work_executed: 0.0,
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total work executed, in work units.
    pub fn work_executed(&self) -> f64 {
        self.work_executed
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The current frequency state.
    pub fn frequency(&self) -> FrequencyState {
        self.governor.state()
    }

    /// Changes the frequency state directly (the pre-backend path).
    pub fn set_frequency(&mut self, state: FrequencyState) {
        self.governor.set_state(state);
    }

    /// The machine's power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The machine's throughput at the highest frequency, in work units per
    /// second.
    pub fn base_work_rate(&self) -> f64 {
        self.base_work_rate
    }

    /// The throughput at the current frequency, in work units per second.
    pub fn current_work_rate(&self) -> f64 {
        self.base_work_rate * self.governor.state().capacity()
    }

    /// The accumulated energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// The 1 Hz power samples recorded so far.
    pub fn power_sampler(&self) -> &PowerSampler {
        &self.sampler
    }

    /// Executes `work` units at the current frequency, advancing the clock
    /// and charging busy energy. Returns the time the work took.
    ///
    /// # Panics
    ///
    /// Panics if `work` is not positive and finite.
    pub fn execute_work(&mut self, work: f64) -> TimestampDelta {
        self.try_execute_work(work)
            .expect("work must be positive and finite")
    }

    /// Fallible variant of [`SimMachine::execute_work`].
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidWork`] when `work` is not positive and
    /// finite.
    pub fn try_execute_work(&mut self, work: f64) -> Result<TimestampDelta, PlatformError> {
        if !work.is_finite() || work <= 0.0 {
            return Err(PlatformError::InvalidWork { work });
        }
        let seconds = work / self.current_work_rate();
        let watts = self
            .power_model
            .power_at_capacity(self.governor.state().capacity(), 1.0)
            .expect("utilization 1.0 is valid");
        self.energy.add_busy(seconds, watts);
        let elapsed = TimestampDelta::from_secs_f64(seconds);
        self.now += elapsed;
        self.sampler.observe(self.now, watts);
        self.work_executed += work;
        Ok(elapsed)
    }

    /// Idles until the given time, charging idle energy. Times in the past
    /// are ignored.
    pub fn idle_until(&mut self, until: Timestamp) {
        if until <= self.now {
            return;
        }
        let seconds = (until - self.now).as_secs_f64();
        let watts = self.power_model.idle_watts();
        self.energy.add_idle(seconds, watts);
        self.now = until;
        self.sampler.observe(self.now, watts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_ladder_matches_the_table_path_bit_for_bit() {
        // The whole point of this module: the frozen ladder and the new
        // table-derived states agree exactly.
        for (old, new) in FrequencyState::all().zip(crate::FrequencyState::all()) {
            assert_eq!(old.ghz().to_bits(), new.ghz().to_bits());
            assert_eq!(old.capacity().to_bits(), new.capacity().to_bits());
            assert_eq!(old.index(), new.index());
        }
    }

    #[test]
    fn naive_machine_behaves_like_the_seed_machine() {
        let mut m = SimMachine::new("m0", PowerModel::poweredge_r410(), 100.0);
        assert_eq!(m.name(), "m0");
        let fast = m.execute_work(100.0);
        assert!((fast.as_secs_f64() - 1.0).abs() < 1e-9);
        m.set_frequency(FrequencyState::lowest());
        let slow = m.execute_work(100.0);
        assert!((slow.as_secs_f64() - 1.5).abs() < 1e-9);
        assert!(
            (m.energy().busy_joules()
                - (220.0 + 1.5 * m.power_model().power_at_capacity(2.0 / 3.0, 1.0).unwrap()))
            .abs()
                < 1e-6
        );
        assert!(m.try_execute_work(-1.0).is_err());
        m.idle_until(Timestamp::from_secs(10));
        assert!(m.energy().idle_joules() > 0.0);
        assert_eq!(m.work_executed(), 200.0);
        assert_eq!(m.frequency(), FrequencyState::lowest());
        assert!((m.base_work_rate() - 100.0).abs() < 1e-12);
        assert!(m.power_sampler().samples().len() > 2);
    }

    #[test]
    fn naive_schedule_caps_the_middle_half() {
        let schedule = PowerCapSchedule::paper_power_cap(Timestamp::from_secs(100));
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(10)),
            FrequencyState::highest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(50)),
            FrequencyState::lowest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(90)),
            FrequencyState::highest()
        );
        let constant = PowerCapSchedule::constant(FrequencyState::lowest());
        assert_eq!(constant.state_at(Timestamp::ZERO), FrequencyState::lowest());
        let mut governor = DvfsGovernor::new();
        governor.set_state(FrequencyState::from_index(3).unwrap());
        governor.set_state(FrequencyState::from_index(3).unwrap());
        assert_eq!(governor.transitions(), 1);
    }
}
