//! A simulated machine with a virtual clock, DVFS, and energy accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_heartbeats::{Timestamp, TimestampDelta};

use crate::backend::{DvfsBackend, SimBackend};
use crate::error::PlatformError;
use crate::frequency::{FrequencyState, FrequencyTable};
use crate::power::{EnergyAccount, PowerModel, PowerSampler};

/// A simulated machine that executes abstract work units.
///
/// The machine advances a virtual clock: executing `w` work units at
/// frequency state `f` takes `w / (base_work_rate · capacity(f))` seconds,
/// where `base_work_rate` is the machine's throughput at its highest
/// frequency. Busy and idle time are charged to an [`EnergyAccount`] using
/// the machine's [`PowerModel`], and a [`PowerSampler`] records 1 Hz samples
/// like the paper's WattsUp meter.
///
/// # Example
///
/// ```
/// use powerdial_platform::{FrequencyState, PowerModel, SimMachine};
///
/// let mut machine = SimMachine::new("node0", PowerModel::poweredge_r410(), 100.0);
/// let busy = machine.execute_work(50.0);      // 0.5 s at 2.4 GHz
/// assert!((busy.as_secs_f64() - 0.5).abs() < 1e-9);
/// machine.set_frequency(FrequencyState::lowest());
/// let slower = machine.execute_work(50.0);    // the same work at 1.6 GHz
/// assert!(slower > busy);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMachine {
    name: String,
    power_model: PowerModel,
    backend: SimBackend,
    base_work_rate: f64,
    now: Timestamp,
    energy: EnergyAccount,
    sampler: PowerSampler,
    work_executed: f64,
}

impl SimMachine {
    /// Creates a machine with the given power model and throughput at the
    /// highest frequency state (`base_work_rate` work units per second).
    ///
    /// # Panics
    ///
    /// Panics if `base_work_rate` is not positive and finite.
    pub fn new(name: impl Into<String>, power_model: PowerModel, base_work_rate: f64) -> Self {
        SimMachine::with_table(name, power_model, base_work_rate, FrequencyTable::paper())
    }

    /// Creates a machine whose simulated DVFS backend runs the given
    /// frequency table instead of the paper's seven states.
    ///
    /// # Panics
    ///
    /// Panics if `base_work_rate` is not positive and finite.
    pub fn with_table(
        name: impl Into<String>,
        power_model: PowerModel,
        base_work_rate: f64,
        table: FrequencyTable,
    ) -> Self {
        assert!(
            base_work_rate.is_finite() && base_work_rate > 0.0,
            "base work rate must be positive and finite, got {base_work_rate}"
        );
        SimMachine {
            name: name.into(),
            power_model,
            backend: SimBackend::new(table),
            base_work_rate,
            now: Timestamp::ZERO,
            energy: EnergyAccount::new(),
            sampler: PowerSampler::new(),
            work_executed: 0.0,
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The current frequency state.
    pub fn frequency(&self) -> FrequencyState {
        self.backend.effective_state()
    }

    /// The frequency table the machine's DVFS backend discovered.
    pub fn frequency_table(&self) -> &FrequencyTable {
        self.backend.table()
    }

    /// The machine's DVFS backend.
    pub fn dvfs_backend(&self) -> &SimBackend {
        &self.backend
    }

    /// Exclusive access to the machine's DVFS backend — the seam the
    /// power-cap experiments actuate through (as `&mut dyn DvfsBackend`).
    pub fn dvfs_backend_mut(&mut self) -> &mut SimBackend {
        &mut self.backend
    }

    /// Changes the frequency state (imposing or lifting a power cap).
    ///
    /// Convenience wrapper over the machine's [`DvfsBackend`]; use
    /// [`SimMachine::dvfs_backend_mut`] for the fallible trait-level path.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not from the machine's frequency table.
    pub fn set_frequency(&mut self, state: FrequencyState) {
        self.backend
            .set_state(state)
            .expect("state must come from the machine's frequency table");
    }

    /// The machine's power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The machine's throughput at the highest frequency, in work units per
    /// second.
    pub fn base_work_rate(&self) -> f64 {
        self.base_work_rate
    }

    /// The throughput at the current frequency, in work units per second.
    pub fn current_work_rate(&self) -> f64 {
        self.base_work_rate * self.backend.effective_state().capacity()
    }

    /// The accumulated energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// The 1 Hz power samples recorded so far.
    pub fn power_sampler(&self) -> &PowerSampler {
        &self.sampler
    }

    /// Total work executed, in work units.
    pub fn work_executed(&self) -> f64 {
        self.work_executed
    }

    /// Executes `work` units at the current frequency, advancing the clock
    /// and charging busy energy. Returns the time the work took.
    ///
    /// # Panics
    ///
    /// Panics if `work` is not positive and finite; use
    /// [`SimMachine::try_execute_work`] for a fallible variant.
    pub fn execute_work(&mut self, work: f64) -> TimestampDelta {
        self.try_execute_work(work)
            .expect("work must be positive and finite")
    }

    /// Fallible variant of [`SimMachine::execute_work`].
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidWork`] when `work` is not positive and
    /// finite.
    pub fn try_execute_work(&mut self, work: f64) -> Result<TimestampDelta, PlatformError> {
        if !work.is_finite() || work <= 0.0 {
            return Err(PlatformError::InvalidWork { work });
        }
        let seconds = work / self.current_work_rate();
        let watts = self
            .power_model
            .full_load_power(self.backend.effective_state());
        self.energy.add_busy(seconds, watts);
        let elapsed = TimestampDelta::from_secs_f64(seconds);
        self.now += elapsed;
        self.sampler.observe(self.now, watts);
        self.work_executed += work;
        Ok(elapsed)
    }

    /// Executes `work` units with partial utilization `utilization` (the
    /// machine is time-shared with other tenants); the work completes at the
    /// proportionally lower rate and energy is charged at the corresponding
    /// power level.
    ///
    /// # Errors
    ///
    /// Returns an error when `work` is invalid or `utilization` is outside
    /// `(0, 1]`.
    pub fn execute_shared_work(
        &mut self,
        work: f64,
        utilization: f64,
    ) -> Result<TimestampDelta, PlatformError> {
        if !work.is_finite() || work <= 0.0 {
            return Err(PlatformError::InvalidWork { work });
        }
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(PlatformError::InvalidUtilization { utilization });
        }
        let seconds = work / (self.current_work_rate() * utilization);
        let watts = self
            .power_model
            .power(self.backend.effective_state(), utilization)?;
        self.energy.add_busy(seconds, watts);
        let elapsed = TimestampDelta::from_secs_f64(seconds);
        self.now += elapsed;
        self.sampler.observe(self.now, watts);
        self.work_executed += work;
        Ok(elapsed)
    }

    /// Idles until the given time, charging idle energy. Times in the past
    /// are ignored.
    pub fn idle_until(&mut self, until: Timestamp) {
        if until <= self.now {
            return;
        }
        let seconds = (until - self.now).as_secs_f64();
        let watts = self.power_model.idle_watts();
        self.energy.add_idle(seconds, watts);
        self.now = until;
        self.sampler.observe(self.now, watts);
    }

    /// Idles for the given duration, charging idle energy.
    pub fn idle_for(&mut self, duration: TimestampDelta) {
        let until = self.now + duration;
        self.idle_until(until);
    }
}

impl fmt::Display for SimMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({} executed, {})",
            self.name,
            self.backend.effective_state(),
            self.work_executed,
            self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> SimMachine {
        SimMachine::new("m0", PowerModel::poweredge_r410(), 100.0)
    }

    #[test]
    fn execution_time_scales_inversely_with_frequency() {
        let mut m = machine();
        let fast = m.execute_work(100.0);
        assert!((fast.as_secs_f64() - 1.0).abs() < 1e-9);

        m.set_frequency(FrequencyState::lowest());
        let slow = m.execute_work(100.0);
        // 2.4 / 1.6 = 1.5x slower.
        assert!((slow.as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((m.now().as_secs_f64() - 2.5).abs() < 1e-9);
        assert_eq!(m.work_executed(), 200.0);
        assert_eq!(m.frequency(), FrequencyState::lowest());
    }

    #[test]
    fn busy_energy_uses_full_load_power() {
        let mut m = machine();
        m.execute_work(100.0); // 1 second at 220 W.
        assert!((m.energy().busy_joules() - 220.0).abs() < 1e-9);
        assert_eq!(m.energy().idle_joules(), 0.0);
    }

    #[test]
    fn idle_energy_uses_idle_power() {
        let mut m = machine();
        m.idle_for(TimestampDelta::from_secs(10));
        assert!((m.energy().idle_joules() - 900.0).abs() < 1e-9);
        assert!((m.now().as_secs_f64() - 10.0).abs() < 1e-9);
        // Idling into the past is a no-op.
        m.idle_until(Timestamp::from_secs(5));
        assert!((m.now().as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn race_to_idle_beats_slow_execution_when_idle_power_is_low() {
        // With a low-idle-power model whose dynamic power barely drops under
        // DVFS (frequency-only scaling, small exponent), finishing fast and
        // idling consumes less energy than running slowly for the whole
        // period — the paper's race-to-idle argument (Figure 4a).
        let low_idle = PowerModel::new(10.0, 220.0, 0.3).unwrap();
        let deadline = TimestampDelta::from_secs(3);

        let mut racer = SimMachine::new("race", low_idle, 100.0);
        racer.execute_work(100.0);
        racer.idle_until(Timestamp::ZERO + deadline);

        let mut slowpoke = SimMachine::new("slow", low_idle, 100.0);
        slowpoke.set_frequency(FrequencyState::lowest());
        slowpoke.execute_work(100.0);
        slowpoke.idle_until(Timestamp::ZERO + deadline);

        assert!(racer.energy().total_joules() < slowpoke.energy().total_joules());
    }

    #[test]
    fn dvfs_saves_energy_when_idle_power_is_high() {
        // With the server's high idle power, running the whole period at the
        // lower frequency beats racing to idle (Figure 4b).
        let server = PowerModel::poweredge_r410();
        let deadline = TimestampDelta::from_secs(3);

        let mut racer = SimMachine::new("race", server, 100.0);
        racer.execute_work(150.0);
        racer.idle_until(Timestamp::ZERO + deadline);

        let mut dvfs = SimMachine::new("dvfs", server, 100.0);
        dvfs.set_frequency(FrequencyState::lowest());
        dvfs.execute_work(150.0);
        dvfs.idle_until(Timestamp::ZERO + deadline);

        assert!(dvfs.energy().total_joules() < racer.energy().total_joules());
    }

    #[test]
    fn shared_execution_accounts_partial_utilization() {
        let mut m = machine();
        let elapsed = m.execute_shared_work(50.0, 0.5).unwrap();
        assert!((elapsed.as_secs_f64() - 1.0).abs() < 1e-9);
        let expected_watts = PowerModel::poweredge_r410()
            .power(FrequencyState::highest(), 0.5)
            .unwrap();
        assert!((m.energy().busy_joules() - expected_watts).abs() < 1e-9);
        assert!(m.execute_shared_work(50.0, 0.0).is_err());
        assert!(m.execute_shared_work(50.0, 1.5).is_err());
    }

    #[test]
    fn invalid_work_is_rejected() {
        let mut m = machine();
        assert!(m.try_execute_work(0.0).is_err());
        assert!(m.try_execute_work(-5.0).is_err());
        assert!(m.try_execute_work(f64::NAN).is_err());
    }

    #[test]
    fn power_sampler_sees_execution() {
        let mut m = machine();
        m.execute_work(500.0); // 5 seconds.
        assert!(m.power_sampler().samples().len() >= 5);
        assert!((m.power_sampler().mean_watts().unwrap() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_name_and_energy() {
        let mut m = machine();
        m.execute_work(10.0);
        let text = m.to_string();
        assert!(text.contains("m0"));
        assert!(text.contains('J'));
        assert!((m.base_work_rate() - 100.0).abs() < 1e-12);
        assert!((m.current_work_rate() - 100.0).abs() < 1e-12);
        assert_eq!(m.power_model().idle_watts(), 90.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_work_rate_panics() {
        SimMachine::new("bad", PowerModel::poweredge_r410(), 0.0);
    }
}
