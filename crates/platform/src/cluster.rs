//! Clusters of machines behind a proportional load balancer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PlatformError;
use crate::frequency::FrequencyState;
use crate::power::PowerModel;

/// A homogeneous cluster of machines behind a proportional load balancer.
///
/// The paper's provisioning experiments compare an *original* system (four
/// eight-core machines for the PARSEC benchmarks, three for the search
/// engine) against a *consolidated* system with fewer machines that relies on
/// PowerDial to absorb load spikes. The balancer spreads load proportionally,
/// so every machine runs at the same utilization; idle machines stay powered
/// on, which is exactly the waste the consolidation removes.
///
/// # Example
///
/// ```
/// use powerdial_platform::{Cluster, FrequencyState, PowerModel};
///
/// let original = Cluster::new("original", 4, PowerModel::poweredge_r410()).unwrap();
/// let consolidated = Cluster::new("consolidated", 1, PowerModel::poweredge_r410()).unwrap();
/// // At 25 % of the original system's peak load the consolidated cluster
/// // draws far less power because it has no idle machines burning 90 W.
/// let p_orig = original.power_at_load(0.25 * 4.0, FrequencyState::highest()).unwrap();
/// let p_cons = consolidated.power_at_load(0.25 * 4.0, FrequencyState::highest()).unwrap();
/// assert!(p_cons.total_watts < p_orig.total_watts);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    name: String,
    machine_count: usize,
    power_model: PowerModel,
}

/// The power drawn by a cluster at a given offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPowerBreakdown {
    /// Total cluster power in watts.
    pub total_watts: f64,
    /// Power per machine in watts (all machines are identical under
    /// proportional balancing).
    pub watts_per_machine: f64,
    /// Per-machine utilization in `[0, 1]`.
    pub utilization_per_machine: f64,
    /// Number of machines in the cluster.
    pub machines: usize,
}

impl Cluster {
    /// Creates a cluster of `machine_count` identical machines.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::EmptyCluster`] when `machine_count` is zero.
    pub fn new(
        name: impl Into<String>,
        machine_count: usize,
        power_model: PowerModel,
    ) -> Result<Self, PlatformError> {
        if machine_count == 0 {
            return Err(PlatformError::EmptyCluster);
        }
        Ok(Cluster {
            name: name.into(),
            machine_count,
            power_model,
        })
    }

    /// The cluster's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// The power model shared by every machine.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The total computational capacity of the cluster, in machine-equivalents
    /// at the given frequency (a 4-machine cluster at 1.6 GHz has capacity
    /// `4 × 2/3 ≈ 2.67`).
    pub fn capacity(&self, frequency: FrequencyState) -> f64 {
        self.machine_count as f64 * frequency.capacity()
    }

    /// Power drawn when `offered_load` machine-equivalents of work are spread
    /// proportionally over the cluster at the given frequency. The load is
    /// clamped to the cluster's size (the balancer cannot run machines above
    /// 100 % utilization).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidUtilization`] when `offered_load` is
    /// negative or not finite.
    pub fn power_at_load(
        &self,
        offered_load: f64,
        frequency: FrequencyState,
    ) -> Result<ClusterPowerBreakdown, PlatformError> {
        if !offered_load.is_finite() || offered_load < 0.0 {
            return Err(PlatformError::InvalidUtilization {
                utilization: offered_load,
            });
        }
        let utilization = (offered_load / self.machine_count as f64).min(1.0);
        let watts_per_machine = self.power_model.power(frequency, utilization)?;
        Ok(ClusterPowerBreakdown {
            total_watts: watts_per_machine * self.machine_count as f64,
            watts_per_machine,
            utilization_per_machine: utilization,
            machines: self.machine_count,
        })
    }

    /// Power drawn when the cluster is completely idle.
    pub fn idle_power(&self) -> f64 {
        self.power_model.idle_watts() * self.machine_count as f64
    }

    /// Power drawn at full load in the given frequency state.
    pub fn peak_power(&self, frequency: FrequencyState) -> f64 {
        self.power_model.full_load_power(frequency) * self.machine_count as f64
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} machines)", self.name, self.machine_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original() -> Cluster {
        Cluster::new("original", 4, PowerModel::poweredge_r410()).unwrap()
    }

    fn consolidated() -> Cluster {
        Cluster::new("consolidated", 1, PowerModel::poweredge_r410()).unwrap()
    }

    #[test]
    fn empty_clusters_are_rejected() {
        assert!(matches!(
            Cluster::new("empty", 0, PowerModel::poweredge_r410()),
            Err(PlatformError::EmptyCluster)
        ));
    }

    #[test]
    fn idle_and_peak_power_scale_with_machine_count() {
        let cluster = original();
        assert_eq!(cluster.machine_count(), 4);
        assert_eq!(cluster.idle_power(), 360.0);
        assert_eq!(cluster.peak_power(FrequencyState::highest()), 880.0);
        assert!(cluster.to_string().contains("4 machines"));
        assert_eq!(cluster.power_model().idle_watts(), 90.0);
    }

    #[test]
    fn capacity_accounts_for_frequency() {
        let cluster = original();
        assert_eq!(cluster.capacity(FrequencyState::highest()), 4.0);
        assert!((cluster.capacity(FrequencyState::lowest()) - 4.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_balancing_spreads_utilization() {
        let cluster = original();
        let breakdown = cluster
            .power_at_load(1.0, FrequencyState::highest())
            .unwrap();
        assert_eq!(breakdown.machines, 4);
        assert!((breakdown.utilization_per_machine - 0.25).abs() < 1e-12);
        assert!(breakdown.total_watts > cluster.idle_power());
        assert!(breakdown.total_watts < cluster.peak_power(FrequencyState::highest()));
    }

    #[test]
    fn offered_load_is_clamped_to_cluster_size() {
        let cluster = consolidated();
        let breakdown = cluster
            .power_at_load(3.0, FrequencyState::highest())
            .unwrap();
        assert_eq!(breakdown.utilization_per_machine, 1.0);
        assert_eq!(breakdown.total_watts, 220.0);
        assert!(cluster
            .power_at_load(-1.0, FrequencyState::highest())
            .is_err());
    }

    #[test]
    fn consolidation_saves_power_at_low_utilization() {
        // The headline of Figure 8: at 25 % utilization the consolidated
        // system (1 machine instead of 4) saves hundreds of watts because it
        // does not keep three idle 90 W machines online.
        let load = 0.25 * 4.0;
        let p_orig = original()
            .power_at_load(load, FrequencyState::highest())
            .unwrap()
            .total_watts;
        let p_cons = consolidated()
            .power_at_load(load, FrequencyState::highest())
            .unwrap()
            .total_watts;
        let savings = p_orig - p_cons;
        assert!(
            savings > 250.0,
            "expected savings of roughly 300-400 W, got {savings:.0} W"
        );
        // And the relative reduction is in the ballpark the paper reports
        // (about two thirds).
        assert!(savings / p_orig > 0.5);
    }

    #[test]
    fn consolidated_peak_power_is_a_quarter_of_original() {
        // At 100 % utilization the consolidated system burns ~75 % less power
        // (one loaded machine instead of four).
        let p_orig = original()
            .power_at_load(4.0, FrequencyState::highest())
            .unwrap()
            .total_watts;
        let p_cons = consolidated()
            .power_at_load(4.0, FrequencyState::highest())
            .unwrap()
            .total_watts;
        assert!((p_cons / p_orig - 0.25).abs() < 1e-9);
    }
}
