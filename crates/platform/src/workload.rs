//! Utilization traces and spiky workload generation.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use powerdial_heartbeats::Timestamp;

use crate::error::PlatformError;

/// A piecewise-constant system-utilization trace.
///
/// Utilization is expressed relative to the *original, fully provisioned*
/// system (1.0 = the peak load the baseline system was provisioned for), the
/// convention used by the paper's consolidation figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// `(segment duration in seconds, utilization)` pairs, in order.
    segments: Vec<(f64, f64)>,
}

impl LoadTrace {
    /// A trace holding `utilization` for `duration_secs` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error when the utilization is outside `[0, 1]`.
    pub fn constant(utilization: f64, duration_secs: f64) -> Result<Self, PlatformError> {
        LoadTrace::from_segments(vec![(duration_secs, utilization)])
    }

    /// Builds a trace from `(duration seconds, utilization)` segments.
    ///
    /// # Errors
    ///
    /// Returns an error when no segments are given or any utilization is
    /// outside `[0, 1]`.
    pub fn from_segments(segments: Vec<(f64, f64)>) -> Result<Self, PlatformError> {
        if segments.is_empty() {
            return Err(PlatformError::EmptyLoadTrace);
        }
        for &(_, utilization) in &segments {
            if !(0.0..=1.0).contains(&utilization) || !utilization.is_finite() {
                return Err(PlatformError::InvalidUtilization { utilization });
            }
        }
        Ok(LoadTrace { segments })
    }

    /// Total duration of the trace in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.segments.iter().map(|(d, _)| d).sum()
    }

    /// The utilization at time `t`; times past the end return the last
    /// segment's utilization.
    pub fn utilization_at(&self, t: Timestamp) -> f64 {
        let mut elapsed = 0.0;
        let target = t.as_secs_f64();
        for &(duration, utilization) in &self.segments {
            elapsed += duration;
            if target < elapsed {
                return utilization;
            }
        }
        self.segments.last().map(|(_, u)| *u).unwrap_or(0.0)
    }

    /// Time-weighted mean utilization over the whole trace.
    pub fn mean_utilization(&self) -> f64 {
        let total = self.duration_secs();
        if total == 0.0 {
            return 0.0;
        }
        self.segments.iter().map(|(d, u)| d * u).sum::<f64>() / total
    }

    /// Peak utilization over the trace.
    pub fn peak_utilization(&self) -> f64 {
        self.segments.iter().map(|(_, u)| *u).fold(0.0, f64::max)
    }

    /// The segments as `(duration seconds, utilization)` pairs.
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }
}

impl fmt::Display for LoadTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "load trace: {:.0} s, mean {:.0}%, peak {:.0}%",
            self.duration_secs(),
            self.mean_utilization() * 100.0,
            self.peak_utilization() * 100.0
        )
    }
}

/// Generates workload traces shaped like the paper's motivating scenario:
/// predominantly low utilization punctuated by intermittent spikes to peak
/// load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadGenerator {
    base_utilization: f64,
    spike_utilization: f64,
    spike_probability: f64,
    segment_secs: f64,
    seed: u64,
}

impl WorkloadGenerator {
    /// Creates a generator with the data-center defaults reported in the
    /// paper's Section 3: ~20–30 % average utilization with occasional bursts
    /// to full load.
    pub fn data_center_default(seed: u64) -> Self {
        WorkloadGenerator {
            base_utilization: 0.25,
            spike_utilization: 1.0,
            spike_probability: 0.08,
            segment_secs: 10.0,
            seed,
        }
    }

    /// Creates a fully custom generator.
    ///
    /// # Errors
    ///
    /// Returns an error when a utilization is outside `[0, 1]`.
    pub fn new(
        base_utilization: f64,
        spike_utilization: f64,
        spike_probability: f64,
        segment_secs: f64,
        seed: u64,
    ) -> Result<Self, PlatformError> {
        for utilization in [base_utilization, spike_utilization] {
            if !(0.0..=1.0).contains(&utilization) || !utilization.is_finite() {
                return Err(PlatformError::InvalidUtilization { utilization });
            }
        }
        Ok(WorkloadGenerator {
            base_utilization,
            spike_utilization,
            spike_probability: spike_probability.clamp(0.0, 1.0),
            segment_secs,
            seed,
        })
    }

    /// Generates a trace with `segments` piecewise-constant segments.
    pub fn generate(&self, segments: usize) -> LoadTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(segments.max(1));
        for _ in 0..segments.max(1) {
            let spike = rng.gen_bool(self.spike_probability);
            let jitter: f64 = rng.gen_range(-0.05..0.05);
            let utilization = if spike {
                self.spike_utilization
            } else {
                (self.base_utilization + jitter).clamp(0.0, 1.0)
            };
            out.push((self.segment_secs, utilization));
        }
        LoadTrace::from_segments(out).expect("generated utilizations are clamped to [0, 1]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_round_trip() {
        let trace = LoadTrace::constant(0.3, 100.0).unwrap();
        assert_eq!(trace.duration_secs(), 100.0);
        assert_eq!(trace.utilization_at(Timestamp::from_secs(50)), 0.3);
        assert_eq!(trace.mean_utilization(), 0.3);
        assert_eq!(trace.peak_utilization(), 0.3);
        assert_eq!(trace.segments().len(), 1);
    }

    #[test]
    fn piecewise_lookup_and_statistics() {
        let trace = LoadTrace::from_segments(vec![(10.0, 0.2), (10.0, 1.0), (20.0, 0.4)]).unwrap();
        assert_eq!(trace.utilization_at(Timestamp::from_secs(5)), 0.2);
        assert_eq!(trace.utilization_at(Timestamp::from_secs(15)), 1.0);
        assert_eq!(trace.utilization_at(Timestamp::from_secs(25)), 0.4);
        // Past the end: last segment's value.
        assert_eq!(trace.utilization_at(Timestamp::from_secs(100)), 0.4);
        assert!((trace.mean_utilization() - (2.0 + 10.0 + 8.0) / 40.0).abs() < 1e-12);
        assert_eq!(trace.peak_utilization(), 1.0);
        assert!(trace.to_string().contains("load trace"));
    }

    #[test]
    fn invalid_traces_are_rejected() {
        assert!(matches!(
            LoadTrace::from_segments(vec![]),
            Err(PlatformError::EmptyLoadTrace)
        ));
        assert!(matches!(
            LoadTrace::constant(1.5, 10.0),
            Err(PlatformError::InvalidUtilization { .. })
        ));
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let generator = WorkloadGenerator::data_center_default(42);
        let a = generator.generate(50);
        let b = generator.generate(50);
        assert_eq!(a, b);
        let other = WorkloadGenerator::data_center_default(43).generate(50);
        assert_ne!(a, other);
    }

    #[test]
    fn generator_produces_mostly_low_load_with_spikes() {
        let generator = WorkloadGenerator::data_center_default(7);
        let trace = generator.generate(500);
        let mean = trace.mean_utilization();
        assert!(mean > 0.15 && mean < 0.45, "mean utilization {mean}");
        assert_eq!(trace.peak_utilization(), 1.0, "spikes reach peak load");
    }

    #[test]
    fn custom_generator_validates_utilization() {
        assert!(WorkloadGenerator::new(1.2, 1.0, 0.1, 10.0, 0).is_err());
        assert!(WorkloadGenerator::new(0.2, -0.1, 0.1, 10.0, 0).is_err());
        let generator = WorkloadGenerator::new(0.1, 0.9, 0.5, 5.0, 1).unwrap();
        let trace = generator.generate(10);
        assert_eq!(trace.segments().len(), 10);
        assert_eq!(trace.duration_secs(), 50.0);
    }
}
