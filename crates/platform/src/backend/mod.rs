//! Pluggable DVFS backends: one trait, a simulated implementation, and a
//! Linux sysfs/cpufreq implementation.
//!
//! The paper's actuator ultimately moves real P-states: its power-cap
//! experiment imposes and lifts a hardware frequency cap while dynamic knobs
//! absorb the performance loss. Everything above this module — the power-cap
//! schedules, the closed-loop simulator, the control crate's DVFS actuator —
//! speaks to the platform through [`DvfsBackend`], so the same control code
//! drives the simulator and real hardware.
//!
//! # The contract
//!
//! A backend discovers its [`FrequencyTable`] once, at attach time, and then
//! exposes four operations: read the current state, set an exact state,
//! impose a frequency cap, and lift it. All failures are typed
//! [`PlatformError`] variants — a backend never panics on platform
//! misbehavior. Two backends attached to the same table must be
//! observationally identical under this contract; the
//! `backend_conformance` integration test runs one battery against both
//! implementations and asserts exactly that.
//!
//! * **State semantics** — [`DvfsBackend::current_state`] reports the
//!   *programmed* state: the last requested state clamped by the cap. For
//!   the sysfs backend that is what the control files say right now, so the
//!   read round-trips through the kernel's files and detects foreign writes
//!   ([`PlatformError::StateDrift`]). The instantaneous hardware frequency
//!   (`scaling_cur_freq`) bounces with load and is exposed separately by the
//!   sysfs backend as an observation, not a state.
//! * **Cap semantics** — a cap bounds the state from above without
//!   forgetting the requested state: cap to the lowest frequency, lift the
//!   cap, and the platform returns to whatever was requested before. A cap
//!   equal to the table's highest frequency is no cap at all.
//! * **Foreign states are rejected** — states carry the identity of the
//!   table that produced them; passing a state from another table returns
//!   [`PlatformError::StateNotInTable`] without touching the platform.
//!
//! # Testing story
//!
//! The sysfs backend takes its root directory as a parameter, so the test
//! suite points it at a fake `cpufreq` tree built in a temp directory (see
//! `crates/platform/tests/common/`) and exercises the full battery plus
//! fault injection — missing files, unwritable files, garbage tables,
//! per-CPU mismatches, states changed behind our back — without ever
//! needing root or real hardware. The simulated backend runs the same
//! battery, which is what licenses swapping one for the other under the
//! power-cap experiments.

use crate::error::PlatformError;
use crate::frequency::{DvfsGovernor, FrequencyState, FrequencyTable};

#[cfg(all(feature = "dvfs-sysfs", target_os = "linux"))]
mod sysfs;

#[cfg(all(feature = "dvfs-sysfs", target_os = "linux"))]
pub use sysfs::SysfsCpufreqBackend;

/// A cap at or above the table's highest frequency is no cap at all.
/// Single-sourced so every backend normalizes identically.
pub(crate) fn normalize_cap(table: &FrequencyTable, cap: FrequencyState) -> Option<FrequencyState> {
    if cap.khz() >= table.max_khz() {
        None
    } else {
        Some(cap)
    }
}

/// The programmed state the trait contract requires: the requested state
/// clamped by the cap. Single-sourced so every backend clamps identically.
pub(crate) fn effective_state(
    requested: FrequencyState,
    cap: Option<FrequencyState>,
) -> FrequencyState {
    match cap {
        Some(cap) if cap.khz() < requested.khz() => cap,
        _ => requested,
    }
}

/// A pluggable DVFS actuation backend.
///
/// See the [module docs](self) for the behavioral contract all
/// implementations share.
pub trait DvfsBackend {
    /// A short human-readable name for diagnostics ("sim", "sysfs-cpufreq").
    fn name(&self) -> &str;

    /// The frequency table discovered at attach time.
    fn table(&self) -> &FrequencyTable;

    /// The currently programmed state: the last requested state clamped by
    /// the cap.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::StateDrift`] when the platform reports a
    /// frequency outside the table, or an I/O variant when the platform
    /// cannot be read.
    fn current_state(&self) -> Result<FrequencyState, PlatformError>;

    /// Requests the exact state `state`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::StateNotInTable`] for states from a foreign
    /// table, or an I/O variant when the platform cannot be written.
    fn set_state(&mut self, state: FrequencyState) -> Result<(), PlatformError>;

    /// Imposes a frequency cap: the platform runs at
    /// `min(requested state, cap)` until the cap is lifted. Capping at the
    /// table's highest frequency is equivalent to no cap.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::StateNotInTable`] for states from a foreign
    /// table, or an I/O variant when the platform cannot be written.
    fn set_cap(&mut self, cap: FrequencyState) -> Result<(), PlatformError>;

    /// Lifts the cap; the platform returns to the requested state.
    ///
    /// # Errors
    ///
    /// Returns an I/O variant when the platform cannot be written.
    fn lift_cap(&mut self) -> Result<(), PlatformError>;

    /// The cap currently in force, or `None` when uncapped.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::StateDrift`] when the platform reports a cap
    /// outside the table, or an I/O variant when it cannot be read.
    fn cap(&self) -> Result<Option<FrequencyState>, PlatformError>;

    /// Number of times the programmed state changed through this backend.
    fn transitions(&self) -> u64;
}

/// The simulated DVFS backend: the pre-existing [`DvfsGovernor`] behind the
/// [`DvfsBackend`] seam.
///
/// The governor holds the *effective* (programmed) state and keeps its
/// transition audit trail; the backend adds the requested-versus-cap
/// bookkeeping the trait contract requires. This is the default backend of
/// [`crate::SimMachine`] and the reference implementation the conformance
/// suite measures the sysfs backend against.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimBackend {
    table: FrequencyTable,
    governor: DvfsGovernor,
    requested: FrequencyState,
    cap: Option<FrequencyState>,
}

impl SimBackend {
    /// Creates a backend over the given table, starting uncapped at the
    /// highest frequency.
    pub fn new(table: FrequencyTable) -> Self {
        let requested = table.highest();
        SimBackend {
            governor: DvfsGovernor::starting_at(requested),
            requested,
            cap: None,
            table,
        }
    }

    /// Creates a backend over the paper platform's seven-state table.
    pub fn paper() -> Self {
        SimBackend::new(FrequencyTable::paper())
    }

    /// The effective state, infallibly (the simulator cannot drift).
    pub fn effective_state(&self) -> FrequencyState {
        self.governor.state()
    }

    /// The governor recording the effective state and its transitions.
    pub fn governor(&self) -> &DvfsGovernor {
        &self.governor
    }

    fn apply_effective(&mut self) {
        self.governor
            .set_state(effective_state(self.requested, self.cap));
    }
}

impl Default for SimBackend {
    fn default() -> Self {
        SimBackend::paper()
    }
}

impl DvfsBackend for SimBackend {
    fn name(&self) -> &str {
        "sim"
    }

    fn table(&self) -> &FrequencyTable {
        &self.table
    }

    fn current_state(&self) -> Result<FrequencyState, PlatformError> {
        Ok(self.effective_state())
    }

    fn set_state(&mut self, state: FrequencyState) -> Result<(), PlatformError> {
        self.table.ensure_contains(state)?;
        self.requested = state;
        self.apply_effective();
        Ok(())
    }

    fn set_cap(&mut self, cap: FrequencyState) -> Result<(), PlatformError> {
        self.table.ensure_contains(cap)?;
        self.cap = normalize_cap(&self.table, cap);
        self.apply_effective();
        Ok(())
    }

    fn lift_cap(&mut self) -> Result<(), PlatformError> {
        self.cap = None;
        self.apply_effective();
        Ok(())
    }

    fn cap(&self) -> Result<Option<FrequencyState>, PlatformError> {
        Ok(self.cap)
    }

    fn transitions(&self) -> u64 {
        self.governor.transitions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_backend_round_trips_every_state() {
        let mut backend = SimBackend::paper();
        assert_eq!(backend.name(), "sim");
        assert_eq!(backend.current_state().unwrap(), backend.table().highest());
        let states: Vec<FrequencyState> = backend.table().states().collect();
        for state in states {
            backend.set_state(state).unwrap();
            assert_eq!(backend.current_state().unwrap(), state);
        }
    }

    #[test]
    fn cap_clamps_and_lifting_restores_the_request() {
        let mut backend = SimBackend::paper();
        let table = backend.table().clone();
        backend.set_state(table.highest()).unwrap();
        backend.set_cap(table.lowest()).unwrap();
        assert_eq!(backend.current_state().unwrap(), table.lowest());
        assert_eq!(backend.cap().unwrap(), Some(table.lowest()));
        backend.lift_cap().unwrap();
        assert_eq!(backend.current_state().unwrap(), table.highest());
        assert_eq!(backend.cap().unwrap(), None);
        // A cap above the requested state leaves the state alone.
        backend.set_state(table.lowest()).unwrap();
        backend.set_cap(table.state(3).unwrap()).unwrap();
        assert_eq!(backend.current_state().unwrap(), table.lowest());
        // A cap at the table maximum is no cap.
        backend.set_cap(table.highest()).unwrap();
        assert_eq!(backend.cap().unwrap(), None);
    }

    #[test]
    fn foreign_states_are_rejected_without_effect() {
        let mut backend = SimBackend::paper();
        let foreign = FrequencyTable::new(vec![3_000_000, 1_500_000]).unwrap();
        let before = backend.current_state().unwrap();
        assert_eq!(
            backend.set_state(foreign.highest()),
            Err(PlatformError::StateNotInTable { khz: 3_000_000 })
        );
        assert_eq!(
            backend.set_cap(foreign.lowest()),
            Err(PlatformError::StateNotInTable { khz: 1_500_000 })
        );
        assert_eq!(backend.current_state().unwrap(), before);
        assert_eq!(backend.transitions(), 0);
    }

    #[test]
    fn transitions_count_effective_changes_only() {
        let mut backend = SimBackend::paper();
        let table = backend.table().clone();
        backend.set_state(table.highest()).unwrap(); // no change
        assert_eq!(backend.transitions(), 0);
        backend.set_state(table.lowest()).unwrap();
        backend.set_state(table.lowest()).unwrap(); // idempotent
        assert_eq!(backend.transitions(), 1);
        backend.set_cap(table.lowest()).unwrap(); // already there
        assert_eq!(backend.transitions(), 1);
        backend.set_state(table.highest()).unwrap(); // capped: no effect
        assert_eq!(backend.transitions(), 1);
        backend.lift_cap().unwrap();
        assert_eq!(backend.transitions(), 2);
        assert_eq!(backend.governor().transitions(), 2);
    }
}
