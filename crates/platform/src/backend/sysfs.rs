//! The Linux sysfs/cpufreq backend (`dvfs-sysfs` feature, Linux only).
//!
//! Drives the kernel's cpufreq interface the same way the paper drove
//! `cpufrequtils`: through the per-CPU files under
//! `/sys/devices/system/cpu/cpu*/cpufreq/`. The layout consumed:
//!
//! | file | role |
//! |---|---|
//! | `scaling_available_frequencies` | the [`FrequencyTable`], in kHz |
//! | `scaling_governor` | decides the write path (see below) |
//! | `scaling_setspeed` | exact-state writes under the `userspace` governor |
//! | `scaling_max_freq` | frequency caps (and state writes without `userspace`) |
//! | `scaling_cur_freq` | instantaneous hardware frequency (observation only) |
//!
//! **Why writes go through `scaling_max_freq` when the `userspace` governor
//! is unavailable:** only `userspace` accepts exact frequency requests via
//! `scaling_setspeed`; under `ondemand`/`schedutil`/`performance` the kernel
//! chooses the frequency itself and `scaling_setspeed` reads
//! `<unsupported>`. What those governors *do* honor is the policy limit, so
//! the backend expresses "run at state `s`" as "cap the policy at `s`"
//! (`scaling_max_freq = s`): under load the governor then runs exactly at
//! the cap, which is the semantics the power-cap experiment needs. The
//! trade-off — the platform may run *below* `s` when idle — is inherent to
//! capping and is why [`DvfsBackend::current_state`] reports the programmed
//! state from the control files rather than `scaling_cur_freq`. Because the
//! kernel then offers only that one dial, the requested-state/cap split the
//! trait contract requires (`min(requested, cap)`, lift restores the
//! request) is tracked backend-side on this path, and the dial always holds
//! the min — so both write paths pass the same conformance battery with
//! the same observable behavior as `SimBackend`.
//!
//! **The fake-tree testing story:** the sysfs root is a constructor
//! parameter, so tests build a realistic `cpufreq` tree in a temp directory
//! (`crates/platform/tests/common/`) and point the backend at it. Every
//! read and write then round-trips through real files — parsing, I/O errors
//! and all — which is what lets the conformance battery assert the sysfs
//! backend behaves identically to [`super::SimBackend`], and lets the fault
//! suite inject missing files, unwritable files, garbage tables, per-CPU
//! mismatches, and foreign writes, each mapping to a typed
//! [`PlatformError`].
//!
//! Writes fan out to **every** discovered CPU (the paper's platform has two
//! packages). Reads take `cpu0` as authoritative — attach-time validation
//! proves the immutable per-CPU configuration matches
//! ([`PlatformError::FrequencyTableMismatch`] / `GovernorMismatch`
//! otherwise) — and then verify every sibling still agrees, so a control
//! value changed on `cpuN` behind the backend's back surfaces as
//! [`PlatformError::StateDrift`] instead of leaving part of the package
//! silently misprogrammed.

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use super::DvfsBackend;
use crate::error::PlatformError;
use crate::frequency::{FrequencyState, FrequencyTable};

/// The live system's cpufreq root.
pub const SYSTEM_CPUFREQ_ROOT: &str = "/sys/devices/system/cpu";

/// How states are written to the tree (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WritePath {
    /// `scaling_governor` is `userspace`: exact states via
    /// `scaling_setspeed`.
    SetSpeed,
    /// Any other governor: states expressed as caps via `scaling_max_freq`.
    MaxFreqCap,
}

/// A [`DvfsBackend`] over a sysfs/cpufreq tree.
#[derive(Debug, Clone)]
pub struct SysfsCpufreqBackend {
    /// Per-CPU `cpufreq` policy directories, cpu0 first.
    cpufreq_dirs: Vec<PathBuf>,
    table: FrequencyTable,
    write_path: WritePath,
    governor: String,
    /// Cap-write-path bookkeeping: the kernel offers a single dial
    /// (`scaling_max_freq`) there, so the requested-state / cap split the
    /// trait contract requires lives backend-side. Unused under
    /// [`WritePath::SetSpeed`], where both values are read from the files.
    requested: Option<FrequencyState>,
    cap_state: Option<FrequencyState>,
    /// Last observed effective state, for the transition count.
    last_effective: Option<FrequencyState>,
    transitions: u64,
}

fn read_trimmed(path: &Path) -> Result<String, PlatformError> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(text.trim().to_string()),
        Err(e) if e.kind() == ErrorKind::NotFound => Err(PlatformError::MissingSysfsEntry {
            path: path.display().to_string(),
        }),
        Err(e) => Err(PlatformError::SysfsIo {
            path: path.display().to_string(),
            op: "read",
            detail: e.to_string(),
        }),
    }
}

fn read_khz(path: &Path) -> Result<u64, PlatformError> {
    let text = read_trimmed(path)?;
    text.parse::<u64>()
        .map_err(|_| PlatformError::InvalidSysfsValue {
            path: path.display().to_string(),
            value: text,
        })
}

fn write_khz(path: &Path, khz: u64) -> Result<(), PlatformError> {
    match fs::write(path, format!("{khz}\n")) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::NotFound => Err(PlatformError::MissingSysfsEntry {
            path: path.display().to_string(),
        }),
        Err(e) => Err(PlatformError::SysfsIo {
            path: path.display().to_string(),
            op: "write",
            detail: e.to_string(),
        }),
    }
}

impl SysfsCpufreqBackend {
    /// Attaches to the cpufreq tree under `root` (the directory holding the
    /// `cpuN` directories), discovering the CPUs, the frequency table, and
    /// the write path.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::MissingSysfsEntry`] when no `cpu*/cpufreq`
    /// policy exists (or a required control file is absent),
    /// [`PlatformError::InvalidFrequencyTable`] when
    /// `scaling_available_frequencies` is empty or garbage,
    /// [`PlatformError::FrequencyTableMismatch`] when CPUs disagree about
    /// the table, and I/O variants for unreadable files.
    pub fn attach(root: impl AsRef<Path>) -> Result<Self, PlatformError> {
        let root = root.as_ref();
        let mut cpus: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(root).map_err(|e| {
            if e.kind() == ErrorKind::NotFound {
                PlatformError::MissingSysfsEntry {
                    path: root.display().to_string(),
                }
            } else {
                PlatformError::SysfsIo {
                    path: root.display().to_string(),
                    op: "read",
                    detail: e.to_string(),
                }
            }
        })?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(number) = name
                .to_str()
                .and_then(|n| n.strip_prefix("cpu"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let cpufreq = entry.path().join("cpufreq");
            if cpufreq.is_dir() {
                cpus.push((number, cpufreq));
            }
        }
        if cpus.is_empty() {
            return Err(PlatformError::MissingSysfsEntry {
                path: root.join("cpu*/cpufreq").display().to_string(),
            });
        }
        cpus.sort_by_key(|(number, _)| *number);

        // cpu0's table is authoritative; every other CPU must agree, or
        // fan-out writes would program half the package.
        let table = FrequencyTable::parse(&read_trimmed(
            &cpus[0].1.join("scaling_available_frequencies"),
        )?)?;
        for (number, dir) in cpus.iter().skip(1) {
            let other =
                FrequencyTable::parse(&read_trimmed(&dir.join("scaling_available_frequencies"))?)?;
            if other != table {
                return Err(PlatformError::FrequencyTableMismatch {
                    cpu: format!("cpu{number}"),
                });
            }
        }

        // Governors are a per-policy setting; the write path is chosen once
        // for the whole package, so every CPU must run the same one (a
        // userspace cpu0 with an ondemand cpu1 would EINVAL half the
        // fan-out writes mid-experiment).
        let governor = read_trimmed(&cpus[0].1.join("scaling_governor"))?;
        for (number, dir) in cpus.iter().skip(1) {
            let other = read_trimmed(&dir.join("scaling_governor"))?;
            if other != governor {
                return Err(PlatformError::GovernorMismatch {
                    cpu: format!("cpu{number}"),
                });
            }
        }
        let write_path = if governor == "userspace" {
            WritePath::SetSpeed
        } else {
            WritePath::MaxFreqCap
        };

        // The control files the chosen write path needs must exist on every
        // CPU; failing at attach beats failing mid-experiment.
        let cpufreq_dirs: Vec<PathBuf> = cpus.into_iter().map(|(_, dir)| dir).collect();
        for dir in &cpufreq_dirs {
            for file in ["scaling_max_freq"]
                .into_iter()
                .chain((write_path == WritePath::SetSpeed).then_some("scaling_setspeed"))
            {
                let path = dir.join(file);
                if !path.is_file() {
                    return Err(PlatformError::MissingSysfsEntry {
                        path: path.display().to_string(),
                    });
                }
            }
        }

        let mut backend = SysfsCpufreqBackend {
            cpufreq_dirs,
            table,
            write_path,
            governor,
            requested: None,
            cap_state: None,
            last_effective: None,
            transitions: 0,
        };
        // Seed the trackers; an initially drifted tree just means the first
        // successful set counts as a transition. On the cap write path the
        // single dial's current value is taken as the requested state
        // (there is no way to tell a pre-existing cap apart).
        backend.last_effective = backend.current_state().ok();
        if backend.write_path == WritePath::MaxFreqCap {
            backend.requested = backend.last_effective;
        }
        Ok(backend)
    }

    /// Attaches to the live system at [`SYSTEM_CPUFREQ_ROOT`].
    ///
    /// # Errors
    ///
    /// As for [`SysfsCpufreqBackend::attach`].
    pub fn attach_system() -> Result<Self, PlatformError> {
        SysfsCpufreqBackend::attach(SYSTEM_CPUFREQ_ROOT)
    }

    /// The governor the tree was running at attach time.
    pub fn governor_name(&self) -> &str {
        &self.governor
    }

    /// Number of CPUs the backend fans writes out to.
    pub fn cpu_count(&self) -> usize {
        self.cpufreq_dirs.len()
    }

    /// The instantaneous hardware frequency from `scaling_cur_freq`, in kHz.
    /// An observation, not the programmed state: governors move it with
    /// load.
    ///
    /// # Errors
    ///
    /// I/O and parse variants as for any sysfs read.
    pub fn observed_khz(&self) -> Result<u64, PlatformError> {
        read_khz(&self.cpufreq_dirs[0].join("scaling_cur_freq"))
    }

    /// What `scaling_max_freq` must hold on the cap write path: the
    /// requested state clamped by the backend-side cap. Takes the
    /// prospective bookkeeping as arguments so callers can compute the
    /// target *before* writing and commit the bookkeeping only on success.
    fn cap_path_target(
        &self,
        requested: Option<FrequencyState>,
        cap: Option<FrequencyState>,
    ) -> u64 {
        let requested = requested.unwrap_or_else(|| self.table.highest());
        super::effective_state(requested, cap).khz()
    }

    fn write_all_cpus(&self, file: &str, khz: u64) -> Result<(), PlatformError> {
        for dir in &self.cpufreq_dirs {
            write_khz(&dir.join(file), khz)?;
        }
        Ok(())
    }

    /// Requires every CPU past cpu0 to hold `expected` in `file`: writes
    /// fan out to the whole package, so a sibling whose control value
    /// diverged from cpu0's after attach was changed behind the backend's
    /// back. Callers validate cpu0's own value first, so an out-of-table
    /// cpu0 is reported ahead of a divergent sibling.
    fn ensure_siblings_agree(&self, file: &str, expected: u64) -> Result<(), PlatformError> {
        for dir in self.cpufreq_dirs.iter().skip(1) {
            let other = read_khz(&dir.join(file))?;
            if other != expected {
                return Err(PlatformError::StateDrift { khz: other });
            }
        }
        Ok(())
    }

    fn note_effective(&mut self) -> Result<(), PlatformError> {
        let now = self.current_state()?;
        if self.last_effective != Some(now) {
            self.transitions += 1;
        }
        self.last_effective = Some(now);
        Ok(())
    }
}

impl DvfsBackend for SysfsCpufreqBackend {
    fn name(&self) -> &str {
        "sysfs-cpufreq"
    }

    fn table(&self) -> &FrequencyTable {
        &self.table
    }

    fn current_state(&self) -> Result<FrequencyState, PlatformError> {
        let state = match self.write_path {
            WritePath::SetSpeed => {
                let requested = read_khz(&self.cpufreq_dirs[0].join("scaling_setspeed"))?;
                let cap = read_khz(&self.cpufreq_dirs[0].join("scaling_max_freq"))?;
                let effective = requested.min(cap);
                let state = self
                    .table
                    .state_for_khz(effective)
                    .ok_or(PlatformError::StateDrift { khz: effective })?;
                self.ensure_siblings_agree("scaling_setspeed", requested)?;
                self.ensure_siblings_agree("scaling_max_freq", cap)?;
                state
            }
            WritePath::MaxFreqCap => {
                let effective = read_khz(&self.cpufreq_dirs[0].join("scaling_max_freq"))?;
                let state = self
                    .table
                    .state_for_khz(effective)
                    .ok_or(PlatformError::StateDrift { khz: effective })?;
                self.ensure_siblings_agree("scaling_max_freq", effective)?;
                state
            }
        };
        Ok(state)
    }

    fn set_state(&mut self, state: FrequencyState) -> Result<(), PlatformError> {
        self.table.ensure_contains(state)?;
        match self.write_path {
            WritePath::SetSpeed => {
                self.write_all_cpus("scaling_setspeed", state.khz())?;
            }
            WritePath::MaxFreqCap => {
                // Bookkeeping commits only after the fan-out write
                // succeeds; a failed write must not leave the backend
                // believing a state that was never programmed.
                let target = self.cap_path_target(Some(state), self.cap_state);
                self.write_all_cpus("scaling_max_freq", target)?;
                self.requested = Some(state);
            }
        }
        self.note_effective()
    }

    fn set_cap(&mut self, cap: FrequencyState) -> Result<(), PlatformError> {
        self.table.ensure_contains(cap)?;
        match self.write_path {
            WritePath::SetSpeed => {
                self.write_all_cpus("scaling_max_freq", cap.khz())?;
            }
            WritePath::MaxFreqCap => {
                let normalized = super::normalize_cap(&self.table, cap);
                let target = self.cap_path_target(self.requested, normalized);
                self.write_all_cpus("scaling_max_freq", target)?;
                self.cap_state = normalized;
            }
        }
        self.note_effective()
    }

    fn lift_cap(&mut self) -> Result<(), PlatformError> {
        match self.write_path {
            WritePath::SetSpeed => {
                self.write_all_cpus("scaling_max_freq", self.table.max_khz())?;
            }
            WritePath::MaxFreqCap => {
                let target = self.cap_path_target(self.requested, None);
                self.write_all_cpus("scaling_max_freq", target)?;
                self.cap_state = None;
            }
        }
        self.note_effective()
    }

    fn cap(&self) -> Result<Option<FrequencyState>, PlatformError> {
        match self.write_path {
            WritePath::SetSpeed => {
                let khz = read_khz(&self.cpufreq_dirs[0].join("scaling_max_freq"))?;
                let cap = if khz >= self.table.max_khz() {
                    None
                } else {
                    Some(
                        self.table
                            .state_for_khz(khz)
                            .ok_or(PlatformError::StateDrift { khz })?,
                    )
                };
                self.ensure_siblings_agree("scaling_max_freq", khz)?;
                Ok(cap)
            }
            WritePath::MaxFreqCap => {
                // The dial holds min(requested, cap), so the raw cap cannot
                // be read back; but the read still consults the platform —
                // a dial that no longer holds what the backend programmed
                // means something changed the state behind our back, and
                // the bookkeeping can no longer be trusted.
                let khz = read_khz(&self.cpufreq_dirs[0].join("scaling_max_freq"))?;
                if khz != self.cap_path_target(self.requested, self.cap_state) {
                    return Err(PlatformError::StateDrift { khz });
                }
                self.ensure_siblings_agree("scaling_max_freq", khz)?;
                Ok(self.cap_state)
            }
        }
    }

    fn transitions(&self) -> u64 {
        self.transitions
    }
}
