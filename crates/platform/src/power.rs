//! Full-system power model, power sampling, and energy accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_heartbeats::{Timestamp, TimestampDelta};

use crate::error::PlatformError;
use crate::frequency::FrequencyState;

/// Full-system power as a function of frequency state and utilization.
///
/// The model is calibrated against the paper's measurements of the evaluation
/// server: roughly 90 W idle and up to 220 W at full load in the highest
/// frequency state, dropping to the low 160s at full load in the lowest
/// state. Power is
///
/// ```text
/// P(f, u) = P_idle + u · P_dynamic_max · (f / f_max)^α
/// ```
///
/// with `α` capturing the combined voltage/frequency effect of DVFS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    idle_watts: f64,
    max_watts: f64,
    frequency_exponent: f64,
}

impl PowerModel {
    /// The model calibrated to the paper's Dell PowerEdge R410 measurements.
    pub fn poweredge_r410() -> Self {
        PowerModel {
            idle_watts: 90.0,
            max_watts: 220.0,
            frequency_exponent: 1.3,
        }
    }

    /// Creates a custom power model.
    ///
    /// # Errors
    ///
    /// Returns an error when the idle power is not positive, the full-load
    /// power does not exceed the idle power, or the exponent is not finite
    /// and positive.
    pub fn new(
        idle_watts: f64,
        max_watts: f64,
        frequency_exponent: f64,
    ) -> Result<Self, PlatformError> {
        if !idle_watts.is_finite()
            || !max_watts.is_finite()
            || idle_watts <= 0.0
            || max_watts <= idle_watts
            || !frequency_exponent.is_finite()
            || frequency_exponent <= 0.0
        {
            return Err(PlatformError::InvalidPowerModel {
                idle_watts,
                max_watts,
            });
        }
        Ok(PowerModel {
            idle_watts,
            max_watts,
            frequency_exponent,
        })
    }

    /// Idle (zero-utilization) power in watts.
    pub fn idle_watts(&self) -> f64 {
        self.idle_watts
    }

    /// Full-load power at the highest frequency state, in watts.
    pub fn max_watts(&self) -> f64 {
        self.max_watts
    }

    /// Power drawn at the given frequency state and utilization.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidUtilization`] when `utilization` is
    /// outside `[0, 1]`.
    pub fn power(&self, frequency: FrequencyState, utilization: f64) -> Result<f64, PlatformError> {
        self.power_at_capacity(frequency.capacity(), utilization)
    }

    /// Power drawn at the given relative capacity (`f / f_max`) and
    /// utilization; [`PowerModel::power`] in terms of the capacity a
    /// [`FrequencyState`] carries, usable with states from any
    /// [`crate::FrequencyTable`].
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidUtilization`] when `utilization` is
    /// outside `[0, 1]` or [`PlatformError::InvalidCapacity`] when
    /// `capacity` is outside `(0, 1]` (table states always satisfy this).
    pub fn power_at_capacity(&self, capacity: f64, utilization: f64) -> Result<f64, PlatformError> {
        if !(0.0..=1.0).contains(&utilization) || !utilization.is_finite() {
            return Err(PlatformError::InvalidUtilization { utilization });
        }
        if !capacity.is_finite() || capacity <= 0.0 || capacity > 1.0 {
            return Err(PlatformError::InvalidCapacity { capacity });
        }
        let dynamic_max = self.max_watts - self.idle_watts;
        let scale = capacity.powf(self.frequency_exponent);
        Ok(self.idle_watts + utilization * dynamic_max * scale)
    }

    /// Power at full utilization in the given frequency state.
    pub fn full_load_power(&self, frequency: FrequencyState) -> f64 {
        self.power(frequency, 1.0)
            .expect("utilization 1.0 is valid")
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::poweredge_r410()
    }
}

/// One power sample: the instantaneous full-system power at a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Time of the sample.
    pub timestamp: Timestamp,
    /// Measured power in watts.
    pub watts: f64,
}

/// A WattsUp-style sampler: records full-system power at a fixed interval
/// (one second by default, as in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSampler {
    interval: TimestampDelta,
    samples: Vec<PowerSample>,
    next_sample_at: Timestamp,
}

impl PowerSampler {
    /// Creates a sampler with a one-second interval.
    pub fn new() -> Self {
        PowerSampler::with_interval(TimestampDelta::from_secs(1))
    }

    /// Creates a sampler with a custom interval.
    pub fn with_interval(interval: TimestampDelta) -> Self {
        PowerSampler {
            interval,
            samples: Vec::new(),
            next_sample_at: Timestamp::ZERO,
        }
    }

    /// Observes that the system drew `watts` continuously from
    /// `self.next_sample_at` until `until`; records one sample per interval
    /// boundary crossed.
    pub fn observe(&mut self, until: Timestamp, watts: f64) {
        while self.next_sample_at <= until {
            self.samples.push(PowerSample {
                timestamp: self.next_sample_at,
                watts,
            });
            self.next_sample_at += self.interval;
        }
    }

    /// The recorded samples in time order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// The mean of the recorded sample powers, or `None` when no sample has
    /// been recorded (this is the "mean power" the paper reports).
    pub fn mean_watts(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|s| s.watts).sum::<f64>() / self.samples.len() as f64)
        }
    }
}

impl Default for PowerSampler {
    fn default() -> Self {
        PowerSampler::new()
    }
}

/// Accumulated energy split into busy and idle portions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccount {
    busy_joules: f64,
    idle_joules: f64,
    busy_seconds: f64,
    idle_seconds: f64,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Adds `seconds` of busy time at `watts`.
    pub fn add_busy(&mut self, seconds: f64, watts: f64) {
        self.busy_joules += seconds * watts;
        self.busy_seconds += seconds;
    }

    /// Adds `seconds` of idle time at `watts`.
    pub fn add_idle(&mut self, seconds: f64, watts: f64) {
        self.idle_joules += seconds * watts;
        self.idle_seconds += seconds;
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.busy_joules + self.idle_joules
    }

    /// Energy consumed while busy, in joules.
    pub fn busy_joules(&self) -> f64 {
        self.busy_joules
    }

    /// Energy consumed while idle, in joules.
    pub fn idle_joules(&self) -> f64 {
        self.idle_joules
    }

    /// Total accounted time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.busy_seconds + self.idle_seconds
    }

    /// Time spent busy, in seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Time spent idle, in seconds.
    pub fn idle_seconds(&self) -> f64 {
        self.idle_seconds
    }

    /// Mean power over the accounted time, or `None` when no time has been
    /// accounted.
    pub fn mean_watts(&self) -> Option<f64> {
        let total = self.total_seconds();
        if total == 0.0 {
            None
        } else {
            Some(self.total_joules() / total)
        }
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} J over {:.1} s ({:.1} J busy, {:.1} J idle)",
            self.total_joules(),
            self.total_seconds(),
            self.busy_joules,
            self.idle_joules
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_brackets_measured_power() {
        let model = PowerModel::poweredge_r410();
        assert_eq!(model.idle_watts(), 90.0);
        assert_eq!(model.max_watts(), 220.0);
        // Full load at 2.4 GHz is 220 W; at 1.6 GHz it must drop into the
        // 150–180 W band the paper's figures show.
        let low = model.full_load_power(FrequencyState::lowest());
        assert_eq!(model.full_load_power(FrequencyState::highest()), 220.0);
        assert!(low > 150.0 && low < 185.0, "low-state power {low}");
    }

    #[test]
    fn power_is_monotone_in_frequency_and_utilization() {
        let model = PowerModel::poweredge_r410();
        let mut previous = f64::MAX;
        for state in FrequencyState::all() {
            let p = model.full_load_power(state);
            assert!(p <= previous);
            previous = p;
        }
        let half = model.power(FrequencyState::highest(), 0.5).unwrap();
        let full = model.power(FrequencyState::highest(), 1.0).unwrap();
        let idle = model.power(FrequencyState::highest(), 0.0).unwrap();
        assert!(idle < half && half < full);
        assert_eq!(idle, 90.0);
    }

    #[test]
    fn invalid_models_and_utilizations_are_rejected() {
        assert!(PowerModel::new(0.0, 100.0, 1.0).is_err());
        assert!(PowerModel::new(100.0, 90.0, 1.0).is_err());
        assert!(PowerModel::new(50.0, 100.0, -1.0).is_err());
        let model = PowerModel::poweredge_r410();
        assert!(model.power(FrequencyState::highest(), 1.5).is_err());
        assert!(model.power(FrequencyState::highest(), -0.1).is_err());
        assert!(model.power(FrequencyState::highest(), f64::NAN).is_err());
    }

    #[test]
    fn sampler_records_one_sample_per_interval() {
        let mut sampler = PowerSampler::new();
        sampler.observe(Timestamp::from_secs(3), 100.0);
        // Samples at t = 0, 1, 2, 3.
        assert_eq!(sampler.samples().len(), 4);
        sampler.observe(Timestamp::from_secs(5), 200.0);
        assert_eq!(sampler.samples().len(), 6);
        let mean = sampler.mean_watts().unwrap();
        assert!((mean - (4.0 * 100.0 + 2.0 * 200.0) / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sampler_has_no_mean() {
        assert!(PowerSampler::default().mean_watts().is_none());
    }

    #[test]
    fn energy_account_tracks_busy_and_idle() {
        let mut account = EnergyAccount::new();
        account.add_busy(10.0, 200.0);
        account.add_idle(5.0, 90.0);
        assert_eq!(account.busy_joules(), 2000.0);
        assert_eq!(account.idle_joules(), 450.0);
        assert_eq!(account.total_joules(), 2450.0);
        assert_eq!(account.busy_seconds(), 10.0);
        assert_eq!(account.idle_seconds(), 5.0);
        assert!((account.mean_watts().unwrap() - 2450.0 / 15.0).abs() < 1e-9);
        assert!(account.to_string().contains('J'));
        assert!(EnergyAccount::new().mean_watts().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Power is always between idle and full-load power, and monotone in
        /// utilization.
        #[test]
        fn power_is_bounded_and_monotone(
            state_index in 0usize..7,
            u1 in 0.0f64..1.0,
            u2 in 0.0f64..1.0,
        ) {
            let model = PowerModel::poweredge_r410();
            let state = FrequencyState::from_index(state_index).unwrap();
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let p_lo = model.power(state, lo).unwrap();
            let p_hi = model.power(state, hi).unwrap();
            prop_assert!(p_lo <= p_hi + 1e-9);
            prop_assert!(p_lo >= model.idle_watts() - 1e-9);
            prop_assert!(p_hi <= model.max_watts() + 1e-9);
        }
    }
}
