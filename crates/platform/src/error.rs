//! Error type for the platform simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving the simulated platform.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The requested frequency in GHz does not match any supported DVFS
    /// state.
    UnsupportedFrequency {
        /// The requested frequency in GHz.
        ghz: f64,
    },
    /// The power model is inconsistent (idle power above loaded power, or a
    /// non-positive value).
    InvalidPowerModel {
        /// Idle power in watts.
        idle_watts: f64,
        /// Full-load power in watts.
        max_watts: f64,
    },
    /// A utilization value is outside `[0, 1]`.
    InvalidUtilization {
        /// The offending utilization.
        utilization: f64,
    },
    /// A relative capacity value is outside `(0, 1]`.
    InvalidCapacity {
        /// The offending capacity.
        capacity: f64,
    },
    /// The cluster was asked to provision zero machines.
    EmptyCluster,
    /// A load trace was built with no segments.
    EmptyLoadTrace,
    /// Work must be positive and finite.
    InvalidWork {
        /// The offending work amount.
        work: f64,
    },
    /// A frequency table is empty, lists a zero frequency, or cannot be
    /// parsed from `scaling_available_frequencies`.
    InvalidFrequencyTable {
        /// What was wrong with the table.
        detail: String,
    },
    /// Two CPUs of the same backend advertise different frequency tables;
    /// the backend refuses to attach rather than actuate half the package.
    FrequencyTableMismatch {
        /// The CPU whose table differs from cpu0's.
        cpu: String,
    },
    /// Two CPUs of the same backend run different governors, so one write
    /// path cannot serve the whole package; the backend refuses to attach.
    GovernorMismatch {
        /// The CPU whose governor differs from cpu0's.
        cpu: String,
    },
    /// A frequency state from a different table was passed to a backend;
    /// the backend cannot actuate states it did not enumerate.
    StateNotInTable {
        /// The rejected state's frequency in kHz.
        khz: u64,
    },
    /// A sysfs entry the backend requires does not exist (for example
    /// `scaling_setspeed` under the `userspace` governor).
    MissingSysfsEntry {
        /// The missing path.
        path: String,
    },
    /// Reading or writing a sysfs file failed (permissions, I/O error).
    SysfsIo {
        /// The file involved.
        path: String,
        /// Whether the backend was reading or writing.
        op: &'static str,
        /// The underlying I/O error.
        detail: String,
    },
    /// A sysfs file held text that is not a frequency in kHz.
    InvalidSysfsValue {
        /// The file involved.
        path: String,
        /// The unparsable contents.
        value: String,
    },
    /// The platform reports a frequency outside the backend's table — or
    /// diverging from what the backend programmed: the state was changed
    /// behind the backend's back (another governor, another process, or
    /// firmware).
    StateDrift {
        /// The unexpected frequency observed, in kHz.
        khz: u64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnsupportedFrequency { ghz } => {
                write!(f, "no dvfs state runs at {ghz} GHz")
            }
            PlatformError::InvalidPowerModel {
                idle_watts,
                max_watts,
            } => write!(
                f,
                "power model is invalid: idle {idle_watts} W, full load {max_watts} W"
            ),
            PlatformError::InvalidUtilization { utilization } => {
                write!(f, "utilization must be in [0, 1], got {utilization}")
            }
            PlatformError::InvalidCapacity { capacity } => {
                write!(f, "relative capacity must be in (0, 1], got {capacity}")
            }
            PlatformError::EmptyCluster => write!(f, "a cluster needs at least one machine"),
            PlatformError::EmptyLoadTrace => write!(f, "a load trace needs at least one segment"),
            PlatformError::InvalidWork { work } => {
                write!(f, "work must be positive and finite, got {work}")
            }
            PlatformError::InvalidFrequencyTable { detail } => {
                write!(f, "invalid frequency table: {detail}")
            }
            PlatformError::FrequencyTableMismatch { cpu } => {
                write!(f, "{cpu} advertises a different frequency table than cpu0")
            }
            PlatformError::GovernorMismatch { cpu } => {
                write!(f, "{cpu} runs a different governor than cpu0")
            }
            PlatformError::StateNotInTable { khz } => {
                write!(f, "frequency state {khz} kHz is not in the backend's table")
            }
            PlatformError::MissingSysfsEntry { path } => {
                write!(f, "required sysfs entry {path} does not exist")
            }
            PlatformError::SysfsIo { path, op, detail } => {
                write!(f, "failed to {op} {path}: {detail}")
            }
            PlatformError::InvalidSysfsValue { path, value } => {
                write!(f, "{path} holds {value:?}, not a frequency in kHz")
            }
            PlatformError::StateDrift { khz } => write!(
                f,
                "platform reports {khz} kHz, which is not what the backend programmed; \
                 the state was changed behind our back"
            ),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            PlatformError::UnsupportedFrequency { ghz: 3.2 },
            PlatformError::InvalidPowerModel {
                idle_watts: 100.0,
                max_watts: 50.0,
            },
            PlatformError::InvalidUtilization { utilization: 1.5 },
            PlatformError::InvalidCapacity { capacity: -0.5 },
            PlatformError::EmptyCluster,
            PlatformError::EmptyLoadTrace,
            PlatformError::InvalidWork { work: -2.0 },
            PlatformError::InvalidFrequencyTable {
                detail: "no frequencies".into(),
            },
            PlatformError::FrequencyTableMismatch { cpu: "cpu3".into() },
            PlatformError::GovernorMismatch { cpu: "cpu1".into() },
            PlatformError::StateNotInTable { khz: 3_000_000 },
            PlatformError::MissingSysfsEntry {
                path: "/sys/.../scaling_setspeed".into(),
            },
            PlatformError::SysfsIo {
                path: "/sys/.../scaling_max_freq".into(),
                op: "write",
                detail: "permission denied".into(),
            },
            PlatformError::InvalidSysfsValue {
                path: "/sys/.../scaling_cur_freq".into(),
                value: "<unsupported>".into(),
            },
            PlatformError::StateDrift { khz: 999_999 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PlatformError>();
    }
}
