//! Error type for the platform simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving the simulated platform.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The requested frequency in GHz does not match any supported DVFS
    /// state.
    UnsupportedFrequency {
        /// The requested frequency in GHz.
        ghz: f64,
    },
    /// The power model is inconsistent (idle power above loaded power, or a
    /// non-positive value).
    InvalidPowerModel {
        /// Idle power in watts.
        idle_watts: f64,
        /// Full-load power in watts.
        max_watts: f64,
    },
    /// A utilization value is outside `[0, 1]`.
    InvalidUtilization {
        /// The offending utilization.
        utilization: f64,
    },
    /// The cluster was asked to provision zero machines.
    EmptyCluster,
    /// A load trace was built with no segments.
    EmptyLoadTrace,
    /// Work must be positive and finite.
    InvalidWork {
        /// The offending work amount.
        work: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnsupportedFrequency { ghz } => {
                write!(f, "no dvfs state runs at {ghz} GHz")
            }
            PlatformError::InvalidPowerModel {
                idle_watts,
                max_watts,
            } => write!(
                f,
                "power model is invalid: idle {idle_watts} W, full load {max_watts} W"
            ),
            PlatformError::InvalidUtilization { utilization } => {
                write!(f, "utilization must be in [0, 1], got {utilization}")
            }
            PlatformError::EmptyCluster => write!(f, "a cluster needs at least one machine"),
            PlatformError::EmptyLoadTrace => write!(f, "a load trace needs at least one segment"),
            PlatformError::InvalidWork { work } => {
                write!(f, "work must be positive and finite, got {work}")
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            PlatformError::UnsupportedFrequency { ghz: 3.2 },
            PlatformError::InvalidPowerModel {
                idle_watts: 100.0,
                max_watts: 50.0,
            },
            PlatformError::InvalidUtilization { utilization: 1.5 },
            PlatformError::EmptyCluster,
            PlatformError::EmptyLoadTrace,
            PlatformError::InvalidWork { work: -2.0 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PlatformError>();
    }
}
