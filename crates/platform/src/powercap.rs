//! Power-cap schedules: timed frequency restrictions.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_heartbeats::Timestamp;

use crate::frequency::{FrequencyState, FrequencyTable};

/// One power-cap event: from `at` onward the machine must run at `state`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCapEvent {
    /// When the cap takes effect.
    pub at: Timestamp,
    /// The frequency state imposed from that time on.
    pub state: FrequencyState,
}

/// A schedule of power caps over the course of a run.
///
/// The paper's power-cap experiment starts uncapped (2.4 GHz), imposes the
/// lowest state (1.6 GHz) a quarter of the way through the run, and lifts it
/// at three quarters; [`PowerCapSchedule::paper_power_cap`] builds exactly
/// that schedule.
///
/// # Example
///
/// ```
/// use powerdial_heartbeats::Timestamp;
/// use powerdial_platform::{FrequencyState, PowerCapSchedule};
///
/// let schedule = PowerCapSchedule::paper_power_cap(Timestamp::from_secs(400));
/// assert_eq!(schedule.state_at(Timestamp::from_secs(50)), FrequencyState::highest());
/// assert_eq!(schedule.state_at(Timestamp::from_secs(200)), FrequencyState::lowest());
/// assert_eq!(schedule.state_at(Timestamp::from_secs(350)), FrequencyState::highest());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCapSchedule {
    initial: FrequencyState,
    events: Vec<PowerCapEvent>,
}

impl PowerCapSchedule {
    /// A schedule with no caps: the machine stays in `initial` forever.
    pub fn constant(initial: FrequencyState) -> Self {
        PowerCapSchedule {
            initial,
            events: Vec::new(),
        }
    }

    /// The paper's power-cap scenario for a run of the given total duration:
    /// the cap (lowest frequency) is imposed at one quarter of the run and
    /// lifted at three quarters.
    pub fn paper_power_cap(total_duration: Timestamp) -> Self {
        PowerCapSchedule::mid_run_cap(&FrequencyTable::paper(), total_duration)
    }

    /// The paper's power-cap shape on an arbitrary backend table: start at
    /// the table's highest state, cap to its lowest for the middle half of
    /// the run. This is how the experiment is phrased against whatever
    /// ladder a [`crate::backend::DvfsBackend`] discovered at attach time.
    pub fn mid_run_cap(table: &FrequencyTable, total_duration: Timestamp) -> Self {
        let total = total_duration.as_secs_f64();
        PowerCapSchedule::constant(table.highest())
            .with_event(Timestamp::from_secs_f64(total * 0.25), table.lowest())
            .with_event(Timestamp::from_secs_f64(total * 0.75), table.highest())
    }

    /// Adds a cap event; events may be added in any order.
    pub fn with_event(mut self, at: Timestamp, state: FrequencyState) -> Self {
        self.events.push(PowerCapEvent { at, state });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The frequency state in force at time `t`.
    pub fn state_at(&self, t: Timestamp) -> FrequencyState {
        self.events
            .iter()
            .rev()
            .find(|e| e.at <= t)
            .map(|e| e.state)
            .unwrap_or(self.initial)
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[PowerCapEvent] {
        &self.events
    }

    /// The state before any event fires.
    pub fn initial_state(&self) -> FrequencyState {
        self.initial
    }
}

impl fmt::Display for PowerCapSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "start at {}", self.initial)?;
        for event in &self.events {
            write!(f, ", {} from {}", event.state, event.at)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_changes() {
        let schedule = PowerCapSchedule::constant(FrequencyState::lowest());
        assert_eq!(schedule.state_at(Timestamp::ZERO), FrequencyState::lowest());
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(1_000_000)),
            FrequencyState::lowest()
        );
        assert!(schedule.events().is_empty());
        assert_eq!(schedule.initial_state(), FrequencyState::lowest());
    }

    #[test]
    fn paper_schedule_caps_the_middle_half() {
        let schedule = PowerCapSchedule::paper_power_cap(Timestamp::from_secs(1000));
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(0)),
            FrequencyState::highest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(249)),
            FrequencyState::highest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(250)),
            FrequencyState::lowest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(600)),
            FrequencyState::lowest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(750)),
            FrequencyState::highest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(999)),
            FrequencyState::highest()
        );
        assert_eq!(schedule.events().len(), 2);
    }

    #[test]
    fn events_sort_regardless_of_insertion_order() {
        let schedule = PowerCapSchedule::constant(FrequencyState::highest())
            .with_event(Timestamp::from_secs(30), FrequencyState::highest())
            .with_event(Timestamp::from_secs(10), FrequencyState::lowest());
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(5)),
            FrequencyState::highest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(15)),
            FrequencyState::lowest()
        );
        assert_eq!(
            schedule.state_at(Timestamp::from_secs(40)),
            FrequencyState::highest()
        );
        assert_eq!(schedule.events()[0].at, Timestamp::from_secs(10));
    }

    #[test]
    fn mid_run_cap_follows_the_table() {
        let table = FrequencyTable::new(vec![3_000_000, 1_500_000]).unwrap();
        let schedule = PowerCapSchedule::mid_run_cap(&table, Timestamp::from_secs(100));
        assert_eq!(schedule.state_at(Timestamp::from_secs(10)), table.highest());
        assert_eq!(schedule.state_at(Timestamp::from_secs(50)), table.lowest());
        assert_eq!(schedule.state_at(Timestamp::from_secs(90)), table.highest());
        // The paper schedule is the same shape on the paper table.
        let paper = PowerCapSchedule::paper_power_cap(Timestamp::from_secs(100));
        assert_eq!(
            paper.state_at(Timestamp::from_secs(50)),
            FrequencyTable::paper().lowest()
        );
    }

    #[test]
    fn display_lists_events() {
        let schedule = PowerCapSchedule::paper_power_cap(Timestamp::from_secs(100));
        let text = schedule.to_string();
        assert!(text.contains("2.40 GHz"));
        assert!(text.contains("1.60 GHz"));
    }
}
