//! DVFS frequency states and the software governor controlling them.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PlatformError;

/// The seven frequency steps of the evaluation platform, in GHz, highest
/// first (2.4 GHz down to 1.6 GHz).
pub const DVFS_FREQUENCIES_GHZ: [f64; 7] = [2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6];

/// One discrete DVFS state (a P-state of the simulated processor).
///
/// # Example
///
/// ```
/// use powerdial_platform::FrequencyState;
///
/// let top = FrequencyState::highest();
/// let bottom = FrequencyState::lowest();
/// assert_eq!(top.ghz(), 2.4);
/// assert_eq!(bottom.ghz(), 1.6);
/// assert!((bottom.capacity() - 1.6 / 2.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrequencyState {
    index: usize,
}

impl FrequencyState {
    /// The highest-frequency (highest-power) state: 2.4 GHz.
    pub const fn highest() -> Self {
        FrequencyState { index: 0 }
    }

    /// The lowest-frequency (lowest-power) state: 1.6 GHz.
    pub const fn lowest() -> Self {
        FrequencyState {
            index: DVFS_FREQUENCIES_GHZ.len() - 1,
        }
    }

    /// All states from highest to lowest frequency.
    pub fn all() -> impl Iterator<Item = FrequencyState> {
        (0..DVFS_FREQUENCIES_GHZ.len()).map(|index| FrequencyState { index })
    }

    /// The state with the given ladder index (0 = highest frequency).
    pub fn from_index(index: usize) -> Option<Self> {
        if index < DVFS_FREQUENCIES_GHZ.len() {
            Some(FrequencyState { index })
        } else {
            None
        }
    }

    /// The state running at exactly `ghz`, if it exists on the ladder.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnsupportedFrequency`] when no state matches.
    pub fn from_ghz(ghz: f64) -> Result<Self, PlatformError> {
        DVFS_FREQUENCIES_GHZ
            .iter()
            .position(|&f| (f - ghz).abs() < 1e-9)
            .map(|index| FrequencyState { index })
            .ok_or(PlatformError::UnsupportedFrequency { ghz })
    }

    /// The ladder index (0 = highest frequency).
    pub const fn index(self) -> usize {
        self.index
    }

    /// The clock frequency in GHz.
    pub fn ghz(self) -> f64 {
        DVFS_FREQUENCIES_GHZ[self.index]
    }

    /// The delivered computational capacity relative to the highest state
    /// (1.0 at 2.4 GHz, 2/3 at 1.6 GHz). CPU-bound work slows by exactly this
    /// factor, matching the paper's `t2 = (f_nodvfs / f_dvfs) · t1` model.
    pub fn capacity(self) -> f64 {
        self.ghz() / DVFS_FREQUENCIES_GHZ[0]
    }

    /// The next lower-frequency state, if any.
    pub fn step_down(self) -> Option<FrequencyState> {
        FrequencyState::from_index(self.index + 1)
    }

    /// The next higher-frequency state, if any.
    pub fn step_up(self) -> Option<FrequencyState> {
        self.index
            .checked_sub(1)
            .map(|index| FrequencyState { index })
    }
}

impl Default for FrequencyState {
    fn default() -> Self {
        FrequencyState::highest()
    }
}

impl fmt::Display for FrequencyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.ghz())
    }
}

/// The software frequency governor (the simulated `cpufrequtils`).
///
/// The governor tracks the current state and a history of transitions so
/// experiments can audit when power caps were imposed and lifted.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DvfsGovernor {
    state: FrequencyState,
    transitions: u64,
}

impl DvfsGovernor {
    /// Creates a governor starting in the highest-frequency state.
    pub fn new() -> Self {
        DvfsGovernor::default()
    }

    /// The current frequency state.
    pub fn state(&self) -> FrequencyState {
        self.state
    }

    /// Sets the frequency state, counting the transition if it changes.
    pub fn set_state(&mut self, state: FrequencyState) {
        if state != self.state {
            self.transitions += 1;
        }
        self.state = state;
    }

    /// Sets the frequency by value in GHz.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnsupportedFrequency`] when no state matches.
    pub fn set_ghz(&mut self, ghz: f64) -> Result<(), PlatformError> {
        self.set_state(FrequencyState::from_ghz(ghz)?);
        Ok(())
    }

    /// Number of state changes so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper_platform() {
        let all: Vec<f64> = FrequencyState::all().map(FrequencyState::ghz).collect();
        assert_eq!(all, DVFS_FREQUENCIES_GHZ.to_vec());
        assert_eq!(FrequencyState::highest().ghz(), 2.4);
        assert_eq!(FrequencyState::lowest().ghz(), 1.6);
        assert_eq!(FrequencyState::all().count(), 7);
    }

    #[test]
    fn capacity_is_relative_to_highest_state() {
        assert_eq!(FrequencyState::highest().capacity(), 1.0);
        assert!((FrequencyState::lowest().capacity() - 2.0 / 3.0).abs() < 1e-9);
        for state in FrequencyState::all() {
            assert!(state.capacity() <= 1.0);
            assert!(state.capacity() > 0.6);
        }
    }

    #[test]
    fn lookup_by_ghz_and_index() {
        assert_eq!(FrequencyState::from_ghz(2.0).unwrap().index(), 3);
        assert!(matches!(
            FrequencyState::from_ghz(3.0),
            Err(PlatformError::UnsupportedFrequency { .. })
        ));
        assert!(FrequencyState::from_index(6).is_some());
        assert!(FrequencyState::from_index(7).is_none());
    }

    #[test]
    fn stepping_walks_the_ladder() {
        let mut state = FrequencyState::highest();
        let mut steps = 0;
        while let Some(next) = state.step_down() {
            assert!(next.ghz() < state.ghz());
            state = next;
            steps += 1;
        }
        assert_eq!(steps, 6);
        assert_eq!(state, FrequencyState::lowest());
        assert!(state.step_down().is_none());
        assert_eq!(state.step_up().unwrap().ghz(), 1.73);
        assert!(FrequencyState::highest().step_up().is_none());
    }

    #[test]
    fn governor_counts_transitions() {
        let mut governor = DvfsGovernor::new();
        assert_eq!(governor.state(), FrequencyState::highest());
        governor.set_state(FrequencyState::highest());
        assert_eq!(governor.transitions(), 0);
        governor.set_state(FrequencyState::lowest());
        governor.set_ghz(2.4).unwrap();
        assert_eq!(governor.transitions(), 2);
        assert!(governor.set_ghz(9.9).is_err());
    }

    #[test]
    fn display_shows_frequency() {
        assert_eq!(FrequencyState::highest().to_string(), "2.40 GHz");
        assert_eq!(FrequencyState::lowest().to_string(), "1.60 GHz");
    }
}
