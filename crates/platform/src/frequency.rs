//! DVFS frequency tables, table-relative frequency states, and the software
//! governor controlling them.
//!
//! Before the backend refactor the seven frequencies of the paper's
//! evaluation platform were a global ladder baked into [`FrequencyState`].
//! They are now just one [`FrequencyTable`] among many
//! ([`FrequencyTable::paper`]): a backend discovers its own table at attach
//! time (the simulator uses the paper table by default; the sysfs backend
//! parses `scaling_available_frequencies`), and every state it hands out is
//! relative to that table. The paper-ladder constructors on
//! [`FrequencyState`] remain as conveniences for the simulated experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PlatformError;

/// The seven frequency steps of the evaluation platform, in GHz, highest
/// first (2.4 GHz down to 1.6 GHz).
pub const DVFS_FREQUENCIES_GHZ: [f64; 7] = [2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6];

/// The same seven steps in kHz (the unit cpufreq's sysfs files use).
pub const DVFS_FREQUENCIES_KHZ: [u64; 7] = [
    2_400_000, 2_260_000, 2_130_000, 2_000_000, 1_860_000, 1_730_000, 1_600_000,
];

const KHZ_PER_GHZ: f64 = 1e6;

/// A discrete ladder of DVFS frequencies, highest first.
///
/// A table is what a [`crate::backend::DvfsBackend`] discovers at attach
/// time: the set of P-states the platform can actually run. All frequencies
/// are stored in kHz (cpufreq's native unit), strictly descending, with
/// duplicates removed.
///
/// # Example
///
/// ```
/// use powerdial_platform::FrequencyTable;
///
/// let table = FrequencyTable::paper();
/// assert_eq!(table.len(), 7);
/// assert_eq!(table.highest().ghz(), 2.4);
/// assert_eq!(table.lowest().ghz(), 1.6);
/// assert_eq!(table.nearest_state(1_999_000).khz(), 2_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "Vec<u64>", into = "Vec<u64>")]
pub struct FrequencyTable {
    // Invariant: non-empty, strictly descending, no zeros — established by
    // `new` and relied on by `highest`/`lowest`/`nearest_state`. The serde
    // attributes round-trip the table through the bare kHz list so a
    // hand-edited payload cannot bypass the validating constructor (the
    // vendored serde stub ignores them; they bind if the real crate is
    // ever restored).
    khz: Vec<u64>,
}

impl TryFrom<Vec<u64>> for FrequencyTable {
    type Error = PlatformError;

    fn try_from(khz: Vec<u64>) -> Result<Self, PlatformError> {
        FrequencyTable::new(khz)
    }
}

impl From<FrequencyTable> for Vec<u64> {
    fn from(table: FrequencyTable) -> Vec<u64> {
        table.khz
    }
}

impl FrequencyTable {
    /// Creates a table from frequencies in kHz (any order; duplicates are
    /// collapsed).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidFrequencyTable`] when the list is
    /// empty or contains a zero frequency.
    pub fn new(mut frequencies_khz: Vec<u64>) -> Result<Self, PlatformError> {
        if frequencies_khz.is_empty() {
            return Err(PlatformError::InvalidFrequencyTable {
                detail: "no frequencies".to_string(),
            });
        }
        if frequencies_khz.contains(&0) {
            return Err(PlatformError::InvalidFrequencyTable {
                detail: "zero frequency".to_string(),
            });
        }
        frequencies_khz.sort_unstable_by(|a, b| b.cmp(a));
        frequencies_khz.dedup();
        Ok(FrequencyTable {
            khz: frequencies_khz,
        })
    }

    /// Creates a table from frequencies in GHz.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidFrequencyTable`] when the list is
    /// empty or a frequency is not positive and finite.
    pub fn from_ghz(frequencies_ghz: &[f64]) -> Result<Self, PlatformError> {
        let mut khz = Vec::with_capacity(frequencies_ghz.len());
        for &ghz in frequencies_ghz {
            if !ghz.is_finite() || ghz <= 0.0 {
                return Err(PlatformError::InvalidFrequencyTable {
                    detail: format!("frequency {ghz} GHz is not positive and finite"),
                });
            }
            khz.push((ghz * KHZ_PER_GHZ).round() as u64);
        }
        FrequencyTable::new(khz)
    }

    /// The paper platform's table: seven states from 2.4 GHz to 1.6 GHz.
    pub fn paper() -> Self {
        FrequencyTable {
            khz: DVFS_FREQUENCIES_KHZ.to_vec(),
        }
    }

    /// Parses a `scaling_available_frequencies` line: whitespace-separated
    /// kHz values.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidFrequencyTable`] when the text is
    /// empty, contains a non-numeric token, or lists a zero frequency.
    pub fn parse(text: &str) -> Result<Self, PlatformError> {
        let mut khz = Vec::new();
        for token in text.split_whitespace() {
            let value = token
                .parse::<u64>()
                .map_err(|_| PlatformError::InvalidFrequencyTable {
                    detail: format!("unparsable frequency {token:?}"),
                })?;
            khz.push(value);
        }
        FrequencyTable::new(khz)
    }

    /// Formats the table as a `scaling_available_frequencies` line
    /// (space-separated kHz, highest first); [`FrequencyTable::parse`]
    /// round-trips it.
    pub fn format(&self) -> String {
        let mut out = String::new();
        for (i, khz) in self.khz.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&khz.to_string());
        }
        out
    }

    /// Number of states in the table (always at least one).
    #[allow(clippy::len_without_is_empty)] // tables are never empty
    pub fn len(&self) -> usize {
        self.khz.len()
    }

    /// The frequencies in kHz, highest first.
    pub fn khz(&self) -> &[u64] {
        &self.khz
    }

    /// The highest frequency in kHz.
    pub fn max_khz(&self) -> u64 {
        self.khz[0]
    }

    /// The lowest frequency in kHz.
    pub fn min_khz(&self) -> u64 {
        self.khz[self.khz.len() - 1]
    }

    /// The state at ladder index `index` (0 = highest frequency).
    pub fn state(&self, index: usize) -> Option<FrequencyState> {
        self.khz.get(index).map(|&khz| FrequencyState {
            index,
            khz,
            max_khz: self.max_khz(),
        })
    }

    /// The highest-frequency state.
    pub fn highest(&self) -> FrequencyState {
        self.state(0).expect("tables are never empty")
    }

    /// The lowest-frequency state.
    pub fn lowest(&self) -> FrequencyState {
        self.state(self.khz.len() - 1)
            .expect("tables are never empty")
    }

    /// All states, highest frequency first.
    pub fn states(&self) -> impl Iterator<Item = FrequencyState> + '_ {
        (0..self.khz.len()).map(|index| self.state(index).expect("index in range"))
    }

    /// The state running at exactly `khz`, if the table lists it.
    pub fn state_for_khz(&self, khz: u64) -> Option<FrequencyState> {
        self.khz
            .iter()
            .position(|&f| f == khz)
            .and_then(|index| self.state(index))
    }

    /// The table state closest to `khz`. Total over all inputs; ties break
    /// toward the higher frequency, so the lookup is monotone in `khz`.
    pub fn nearest_state(&self, khz: u64) -> FrequencyState {
        let mut best = 0;
        let mut best_distance = u64::MAX;
        for (index, &candidate) in self.khz.iter().enumerate() {
            let distance = candidate.abs_diff(khz);
            // `<` (not `<=`) keeps the earlier — higher-frequency — entry on
            // ties.
            if distance < best_distance {
                best = index;
                best_distance = distance;
            }
        }
        self.state(best).expect("tables are never empty")
    }

    /// The lowest-frequency state whose relative capacity still meets
    /// `capacity`, or the highest state when none does (including for NaN
    /// requests). This is the state a DVFS actuator picks to satisfy a
    /// required capacity with the least power.
    pub fn state_meeting_capacity(&self, capacity: f64) -> FrequencyState {
        for index in (0..self.khz.len()).rev() {
            let state = self.state(index).expect("index in range");
            if state.capacity() >= capacity {
                return state;
            }
        }
        self.highest()
    }

    /// True when `state` was produced by (a table equal to) this table.
    pub fn contains(&self, state: FrequencyState) -> bool {
        state.max_khz == self.max_khz()
            && self
                .khz
                .get(state.index)
                .is_some_and(|&khz| khz == state.khz)
    }

    /// The membership check every backend applies before actuating.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::StateNotInTable`] when `state` is not from
    /// this table.
    pub fn ensure_contains(&self, state: FrequencyState) -> Result<(), PlatformError> {
        if self.contains(state) {
            Ok(())
        } else {
            Err(PlatformError::StateNotInTable { khz: state.khz() })
        }
    }

    /// The next lower-frequency state, or `None` at the bottom of the ladder
    /// or when `state` is not from this table.
    pub fn step_down(&self, state: FrequencyState) -> Option<FrequencyState> {
        if !self.contains(state) {
            return None;
        }
        self.state(state.index + 1)
    }

    /// The next higher-frequency state, or `None` at the top of the ladder
    /// or when `state` is not from this table.
    pub fn step_up(&self, state: FrequencyState) -> Option<FrequencyState> {
        if !self.contains(state) {
            return None;
        }
        state
            .index
            .checked_sub(1)
            .and_then(|index| self.state(index))
    }
}

impl Default for FrequencyTable {
    fn default() -> Self {
        FrequencyTable::paper()
    }
}

impl fmt::Display for FrequencyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} .. {}",
            self.len(),
            self.lowest(),
            self.highest()
        )
    }
}

/// One discrete DVFS state (a P-state), relative to the [`FrequencyTable`]
/// it came from.
///
/// A state carries its ladder index, its own frequency, and the table's
/// highest frequency, so frequency- and capacity-derived quantities need no
/// table lookup on the hot path. States are produced by a table (or by the
/// paper-ladder conveniences below); backends reject states from foreign
/// tables with [`PlatformError::StateNotInTable`].
///
/// # Example
///
/// ```
/// use powerdial_platform::FrequencyState;
///
/// let top = FrequencyState::highest();
/// let bottom = FrequencyState::lowest();
/// assert_eq!(top.ghz(), 2.4);
/// assert_eq!(bottom.ghz(), 1.6);
/// assert!((bottom.capacity() - 1.6 / 2.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrequencyState {
    index: usize,
    khz: u64,
    max_khz: u64,
}

impl FrequencyState {
    /// The paper table's highest-frequency (highest-power) state: 2.4 GHz.
    pub const fn highest() -> Self {
        FrequencyState {
            index: 0,
            khz: DVFS_FREQUENCIES_KHZ[0],
            max_khz: DVFS_FREQUENCIES_KHZ[0],
        }
    }

    /// The paper table's lowest-frequency (lowest-power) state: 1.6 GHz.
    pub const fn lowest() -> Self {
        FrequencyState {
            index: DVFS_FREQUENCIES_KHZ.len() - 1,
            khz: DVFS_FREQUENCIES_KHZ[DVFS_FREQUENCIES_KHZ.len() - 1],
            max_khz: DVFS_FREQUENCIES_KHZ[0],
        }
    }

    /// All paper-table states from highest to lowest frequency.
    pub fn all() -> impl Iterator<Item = FrequencyState> {
        (0..DVFS_FREQUENCIES_KHZ.len()).map(|index| FrequencyState {
            index,
            khz: DVFS_FREQUENCIES_KHZ[index],
            max_khz: DVFS_FREQUENCIES_KHZ[0],
        })
    }

    /// The paper-table state with the given ladder index (0 = highest
    /// frequency). Allocation-free, like the other paper-ladder
    /// conveniences.
    pub fn from_index(index: usize) -> Option<Self> {
        (index < DVFS_FREQUENCIES_KHZ.len()).then(|| FrequencyState {
            index,
            khz: DVFS_FREQUENCIES_KHZ[index],
            max_khz: DVFS_FREQUENCIES_KHZ[0],
        })
    }

    /// The paper-table state running at exactly `ghz`, if it exists on the
    /// ladder.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnsupportedFrequency`] when no state matches.
    pub fn from_ghz(ghz: f64) -> Result<Self, PlatformError> {
        DVFS_FREQUENCIES_GHZ
            .iter()
            .position(|&f| (f - ghz).abs() < 1e-9)
            .and_then(FrequencyState::from_index)
            .ok_or(PlatformError::UnsupportedFrequency { ghz })
    }

    /// The ladder index in the state's table (0 = highest frequency).
    pub const fn index(self) -> usize {
        self.index
    }

    /// The clock frequency in kHz.
    pub const fn khz(self) -> u64 {
        self.khz
    }

    /// The highest frequency of the state's table, in kHz.
    pub const fn table_max_khz(self) -> u64 {
        self.max_khz
    }

    /// The clock frequency in GHz.
    pub fn ghz(self) -> f64 {
        self.khz as f64 / KHZ_PER_GHZ
    }

    /// The delivered computational capacity relative to the table's highest
    /// state (1.0 at the top of the ladder, `f / f_max` below it). CPU-bound
    /// work slows by exactly this factor, matching the paper's
    /// `t2 = (f_nodvfs / f_dvfs) · t1` model.
    pub fn capacity(self) -> f64 {
        self.ghz() / (self.max_khz as f64 / KHZ_PER_GHZ)
    }
}

impl Default for FrequencyState {
    fn default() -> Self {
        FrequencyState::highest()
    }
}

impl fmt::Display for FrequencyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.ghz())
    }
}

/// The software frequency governor (the simulated `cpufrequtils`).
///
/// The governor tracks the current state and a history of transitions so
/// experiments can audit when power caps were imposed and lifted. It is
/// table-agnostic: it records whatever state it is handed; table membership
/// is enforced one layer up, by the [`crate::backend::DvfsBackend`] driving
/// it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DvfsGovernor {
    state: FrequencyState,
    transitions: u64,
}

impl DvfsGovernor {
    /// Creates a governor starting in the paper table's highest-frequency
    /// state.
    pub fn new() -> Self {
        DvfsGovernor::default()
    }

    /// Creates a governor starting in the given state.
    pub fn starting_at(state: FrequencyState) -> Self {
        DvfsGovernor {
            state,
            transitions: 0,
        }
    }

    /// The current frequency state.
    pub fn state(&self) -> FrequencyState {
        self.state
    }

    /// Sets the frequency state, counting the transition if it changes.
    pub fn set_state(&mut self, state: FrequencyState) {
        if state != self.state {
            self.transitions += 1;
        }
        self.state = state;
    }

    /// Sets the frequency by value in GHz (paper table).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnsupportedFrequency`] when no state matches.
    pub fn set_ghz(&mut self, ghz: f64) -> Result<(), PlatformError> {
        self.set_state(FrequencyState::from_ghz(ghz)?);
        Ok(())
    }

    /// Number of state changes so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper_platform() {
        let all: Vec<f64> = FrequencyState::all().map(FrequencyState::ghz).collect();
        assert_eq!(all, DVFS_FREQUENCIES_GHZ.to_vec());
        assert_eq!(FrequencyState::highest().ghz(), 2.4);
        assert_eq!(FrequencyState::lowest().ghz(), 1.6);
        assert_eq!(FrequencyState::all().count(), 7);
    }

    #[test]
    fn khz_derived_ghz_is_bit_identical_to_the_old_literals() {
        // The pre-backend ladder stored GHz literals; states now derive GHz
        // from kHz. The equivalence suite relies on the two being the same
        // f64 bit for bit.
        for (state, literal) in FrequencyState::all().zip(DVFS_FREQUENCIES_GHZ) {
            assert_eq!(state.ghz().to_bits(), literal.to_bits());
            let old_capacity = literal / DVFS_FREQUENCIES_GHZ[0];
            assert_eq!(state.capacity().to_bits(), old_capacity.to_bits());
        }
    }

    #[test]
    fn capacity_is_relative_to_highest_state() {
        assert_eq!(FrequencyState::highest().capacity(), 1.0);
        assert!((FrequencyState::lowest().capacity() - 2.0 / 3.0).abs() < 1e-9);
        for state in FrequencyState::all() {
            assert!(state.capacity() <= 1.0);
            assert!(state.capacity() > 0.6);
        }
    }

    #[test]
    fn lookup_by_ghz_and_index() {
        assert_eq!(FrequencyState::from_ghz(2.0).unwrap().index(), 3);
        assert!(matches!(
            FrequencyState::from_ghz(3.0),
            Err(PlatformError::UnsupportedFrequency { .. })
        ));
        assert!(FrequencyState::from_index(6).is_some());
        assert!(FrequencyState::from_index(7).is_none());
    }

    #[test]
    fn stepping_walks_the_ladder() {
        let table = FrequencyTable::paper();
        let mut state = table.highest();
        let mut steps = 0;
        while let Some(next) = table.step_down(state) {
            assert!(next.ghz() < state.ghz());
            state = next;
            steps += 1;
        }
        assert_eq!(steps, 6);
        assert_eq!(state, table.lowest());
        assert!(table.step_down(state).is_none());
        assert_eq!(table.step_up(state).unwrap().ghz(), 1.73);
        assert!(table.step_up(table.highest()).is_none());

        // States from a foreign table do not step on this one.
        let foreign = FrequencyTable::new(vec![3_000_000, 2_500_000]).unwrap();
        assert!(table.step_down(foreign.highest()).is_none());
        assert!(table.step_up(foreign.lowest()).is_none());
    }

    #[test]
    fn table_construction_sorts_and_dedups() {
        let table = FrequencyTable::new(vec![1_600_000, 2_400_000, 2_000_000, 2_400_000]).unwrap();
        assert_eq!(table.khz(), &[2_400_000, 2_000_000, 1_600_000]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.max_khz(), 2_400_000);
        assert_eq!(table.min_khz(), 1_600_000);
        assert!(matches!(
            FrequencyTable::new(vec![]),
            Err(PlatformError::InvalidFrequencyTable { .. })
        ));
        assert!(matches!(
            FrequencyTable::new(vec![2_400_000, 0]),
            Err(PlatformError::InvalidFrequencyTable { .. })
        ));
        assert!(FrequencyTable::from_ghz(&[2.4, 1.6]).unwrap().len() == 2);
        assert!(FrequencyTable::from_ghz(&[2.4, f64::NAN]).is_err());
        assert!(FrequencyTable::from_ghz(&[]).is_err());
    }

    #[test]
    fn parse_and_format_round_trip() {
        let table = FrequencyTable::parse("2400000 2000000 1600000").unwrap();
        assert_eq!(table.khz(), &[2_400_000, 2_000_000, 1_600_000]);
        assert_eq!(table.format(), "2400000 2000000 1600000");
        assert_eq!(FrequencyTable::parse(&table.format()).unwrap(), table);
        // cpufreq writes a trailing space and arbitrary ordering; both parse.
        assert_eq!(
            FrequencyTable::parse("1600000 2400000 2000000 \n").unwrap(),
            table
        );
        assert!(matches!(
            FrequencyTable::parse(""),
            Err(PlatformError::InvalidFrequencyTable { .. })
        ));
        assert!(matches!(
            FrequencyTable::parse("  \n"),
            Err(PlatformError::InvalidFrequencyTable { .. })
        ));
        assert!(matches!(
            FrequencyTable::parse("2400000 garbage"),
            Err(PlatformError::InvalidFrequencyTable { .. })
        ));
    }

    #[test]
    fn nearest_state_is_total_and_breaks_ties_up() {
        let table = FrequencyTable::paper();
        assert_eq!(table.nearest_state(0).khz(), 1_600_000);
        assert_eq!(table.nearest_state(u64::MAX).khz(), 2_400_000);
        assert_eq!(table.nearest_state(2_000_000).khz(), 2_000_000);
        assert_eq!(table.nearest_state(1_999_999).khz(), 2_000_000);
        // Exactly between 2.0 GHz and 1.86 GHz: the higher frequency wins.
        assert_eq!(table.nearest_state(1_930_000).khz(), 2_000_000);
    }

    #[test]
    fn state_meeting_capacity_picks_the_slowest_sufficient_state() {
        let table = FrequencyTable::paper();
        assert_eq!(table.state_meeting_capacity(1.0), table.highest());
        assert_eq!(table.state_meeting_capacity(0.0), table.lowest());
        // 2.0 / 2.4 = 0.833…; the slowest state at or above 80 % capacity is
        // 2.0 GHz.
        assert_eq!(table.state_meeting_capacity(0.8).khz(), 2_000_000);
        // Unattainable and NaN requests fall back to the highest state.
        assert_eq!(table.state_meeting_capacity(1.5), table.highest());
        assert_eq!(table.state_meeting_capacity(f64::NAN), table.highest());
    }

    #[test]
    fn membership_is_table_relative() {
        let paper = FrequencyTable::paper();
        let foreign = FrequencyTable::new(vec![3_000_000, 2_400_000]).unwrap();
        assert!(paper.contains(paper.highest()));
        assert!(paper.contains(FrequencyState::lowest()));
        assert!(!paper.contains(foreign.highest()));
        // Same kHz value, different table (different max): not a member.
        assert!(!paper.contains(foreign.lowest()));
        assert!(paper.state_for_khz(2_130_000).is_some());
        assert!(paper.state_for_khz(2_131_000).is_none());
        assert_eq!(paper.state(7), None);
    }

    #[test]
    fn governor_counts_transitions() {
        let mut governor = DvfsGovernor::new();
        assert_eq!(governor.state(), FrequencyState::highest());
        governor.set_state(FrequencyState::highest());
        assert_eq!(governor.transitions(), 0);
        governor.set_state(FrequencyState::lowest());
        governor.set_ghz(2.4).unwrap();
        assert_eq!(governor.transitions(), 2);
        assert!(governor.set_ghz(9.9).is_err());
        let parked = DvfsGovernor::starting_at(FrequencyState::lowest());
        assert_eq!(parked.state(), FrequencyState::lowest());
        assert_eq!(parked.transitions(), 0);
    }

    #[test]
    fn display_shows_frequency() {
        assert_eq!(FrequencyState::highest().to_string(), "2.40 GHz");
        assert_eq!(FrequencyState::lowest().to_string(), "1.60 GHz");
        let table = FrequencyTable::paper();
        let text = table.to_string();
        assert!(text.contains("7 states"));
        assert!(text.contains("2.40 GHz"));
    }
}
