//! Fault injection for the sysfs/cpufreq backend: every way the platform
//! can misbehave maps to a typed `PlatformError`, never a panic.
//!
//! Each case corrupts the fake tree (see `common/`) in one specific way —
//! missing control files, unwritable files, garbage or empty frequency
//! tables, CPUs disagreeing about the table, values changed behind the
//! backend's back — and asserts the exact error variant that surfaces.

#![cfg(all(feature = "dvfs-sysfs", target_os = "linux"))]

mod common;

use common::FakeCpufreqTree;
use powerdial_platform::{DvfsBackend, PlatformError, SysfsCpufreqBackend, DVFS_FREQUENCIES_KHZ};

#[test]
fn attach_requires_a_cpufreq_policy() {
    // A root with no cpu*/cpufreq at all (the distractor dirs the builder
    // creates are not policies).
    let tree = FakeCpufreqTree::builder().cpus(0).build();
    let err = SysfsCpufreqBackend::attach(tree.root()).unwrap_err();
    assert!(
        matches!(err, PlatformError::MissingSysfsEntry { ref path } if path.contains("cpufreq")),
        "{err:?}"
    );

    // A root that does not exist.
    let err = SysfsCpufreqBackend::attach("/nonexistent/powerdial-no-such-root").unwrap_err();
    assert!(
        matches!(err, PlatformError::MissingSysfsEntry { .. }),
        "{err:?}"
    );
}

#[test]
fn missing_setspeed_under_userspace_governor_is_typed() {
    let tree = FakeCpufreqTree::builder().build();
    tree.remove(1, "scaling_setspeed");
    let err = SysfsCpufreqBackend::attach(tree.root()).unwrap_err();
    assert!(
        matches!(err, PlatformError::MissingSysfsEntry { ref path }
            if path.contains("cpu1") && path.contains("scaling_setspeed")),
        "{err:?}"
    );
}

#[test]
fn kernels_without_userspace_governor_fall_back_to_max_freq_writes() {
    // No scaling_setspeed anywhere and an ondemand governor: the backend
    // attaches in cap-write mode and states go through scaling_max_freq.
    let tree = FakeCpufreqTree::builder()
        .governor("ondemand")
        .without_setspeed()
        .build();
    let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    assert_eq!(backend.governor_name(), "ondemand");
    let low = backend.table().lowest();
    backend.set_state(low).unwrap();
    assert_eq!(backend.current_state().unwrap(), low);
    assert_eq!(tree.read(0, "scaling_max_freq"), low.khz().to_string());
    assert_eq!(tree.read(1, "scaling_max_freq"), low.khz().to_string());
}

#[test]
fn per_cpu_governor_mismatch_is_typed() {
    // Governors are per-policy; one write path cannot serve a package
    // where cpu0 runs userspace and cpu1 runs ondemand (setspeed writes to
    // cpu1 would EINVAL mid-experiment), so attach refuses up front.
    let tree = FakeCpufreqTree::builder().build();
    tree.write(1, "scaling_governor", "ondemand\n");
    let err = SysfsCpufreqBackend::attach(tree.root()).unwrap_err();
    assert_eq!(err, PlatformError::GovernorMismatch { cpu: "cpu1".into() });
}

#[test]
fn missing_available_frequencies_is_typed() {
    let tree = FakeCpufreqTree::builder().build();
    tree.remove(0, "scaling_available_frequencies");
    let err = SysfsCpufreqBackend::attach(tree.root()).unwrap_err();
    assert!(
        matches!(err, PlatformError::MissingSysfsEntry { ref path }
            if path.contains("scaling_available_frequencies")),
        "{err:?}"
    );
}

#[test]
fn garbage_and_empty_frequency_tables_are_typed() {
    for contents in [
        "",
        "   \n",
        "2400000 garbage 1600000\n",
        "0 2400000\n",
        "1.6GHz 2.4GHz\n",
    ] {
        let tree = FakeCpufreqTree::builder().build();
        tree.write(0, "scaling_available_frequencies", contents);
        let err = SysfsCpufreqBackend::attach(tree.root()).unwrap_err();
        assert!(
            matches!(err, PlatformError::InvalidFrequencyTable { .. }),
            "contents {contents:?} gave {err:?}"
        );
    }
}

#[test]
fn per_cpu_table_mismatch_is_typed() {
    let tree = FakeCpufreqTree::builder().cpus(3).build();
    tree.write(2, "scaling_available_frequencies", "2400000 1600000\n");
    let err = SysfsCpufreqBackend::attach(tree.root()).unwrap_err();
    assert_eq!(
        err,
        PlatformError::FrequencyTableMismatch { cpu: "cpu2".into() }
    );
}

#[test]
fn state_changed_behind_our_back_is_typed_drift() {
    let tree = FakeCpufreqTree::builder().build();
    let backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();

    // Another process programs a frequency the table does not list.
    tree.write(0, "scaling_setspeed", "1700000\n");
    assert_eq!(
        backend.current_state().unwrap_err(),
        PlatformError::StateDrift { khz: 1_700_000 }
    );

    // A drifted cap clamps the effective state to an out-of-table value too.
    tree.write(0, "scaling_setspeed", "2400000\n");
    tree.write(0, "scaling_max_freq", "1700000\n");
    assert_eq!(
        backend.current_state().unwrap_err(),
        PlatformError::StateDrift { khz: 1_700_000 }
    );
    assert_eq!(
        backend.cap().unwrap_err(),
        PlatformError::StateDrift { khz: 1_700_000 }
    );
}

#[test]
fn sibling_cpu_divergence_is_typed_drift() {
    // Writes fan out to the whole package, so a sibling CPU whose control
    // file no longer matches cpu0's was changed behind the backend's back —
    // even when its value is a perfectly valid table frequency.
    let tree = FakeCpufreqTree::builder().cpus(3).build();
    let backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    assert_eq!(backend.current_state().unwrap(), backend.table().highest());

    tree.write(2, "scaling_setspeed", "1600000\n");
    assert_eq!(
        backend.current_state().unwrap_err(),
        PlatformError::StateDrift { khz: 1_600_000 }
    );

    tree.write(2, "scaling_setspeed", "2400000\n");
    tree.write(1, "scaling_max_freq", "1730000\n");
    assert_eq!(
        backend.current_state().unwrap_err(),
        PlatformError::StateDrift { khz: 1_730_000 }
    );
    assert_eq!(
        backend.cap().unwrap_err(),
        PlatformError::StateDrift { khz: 1_730_000 }
    );
}

#[test]
fn cap_path_drift_is_detected_on_cap_reads() {
    // On the cap write path the dial holds min(requested, cap); a dial
    // that no longer matches what the backend programmed is drift, even
    // when the foreign value is an in-table frequency.
    let tree = FakeCpufreqTree::builder()
        .governor("ondemand")
        .without_setspeed()
        .build();
    let backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    assert_eq!(backend.cap().unwrap(), None);

    tree.write(0, "scaling_max_freq", "1700000\n");
    assert_eq!(
        backend.cap().unwrap_err(),
        PlatformError::StateDrift { khz: 1_700_000 }
    );

    // A coherent foreign cap (both CPUs moved to an in-table value): cap()
    // still reports drift because the dial no longer matches what the
    // backend programmed...
    tree.write(0, "scaling_max_freq", "1600000\n");
    tree.write(1, "scaling_max_freq", "1600000\n");
    assert_eq!(
        backend.cap().unwrap_err(),
        PlatformError::StateDrift { khz: 1_600_000 }
    );
    // ...while current_state keeps reporting the file truth, which IS an
    // in-table state here; only the cap attribution is unknowable.
    assert_eq!(backend.current_state().unwrap(), backend.table().lowest());
}

#[test]
fn non_numeric_control_values_are_typed() {
    // The kernel reports "<unsupported>" from scaling_setspeed when the
    // governor changes under us.
    let tree = FakeCpufreqTree::builder().build();
    let backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    tree.write(0, "scaling_setspeed", "<unsupported>\n");
    let err = backend.current_state().unwrap_err();
    assert!(
        matches!(err, PlatformError::InvalidSysfsValue { ref value, .. }
            if value == "<unsupported>"),
        "{err:?}"
    );
}

#[test]
fn unwritable_control_file_is_a_typed_io_error() {
    // Deterministic variant: a directory where the file should be makes any
    // write fail with a real I/O error regardless of euid.
    let tree = FakeCpufreqTree::builder().build();
    let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    tree.replace_with_directory(1, "scaling_setspeed");
    let err = backend.set_state(backend.table().lowest()).unwrap_err();
    assert!(
        matches!(err, PlatformError::SysfsIo { op: "write", ref path, .. }
            if path.contains("cpu1")),
        "{err:?}"
    );
}

#[test]
fn eacces_on_write_is_a_typed_io_error() {
    // Permission-bit variant. Root bypasses permission checks, so the
    // fixture probes first; under root the strict assertion is skipped and
    // the call must simply succeed (never panic).
    let tree = FakeCpufreqTree::builder().build();
    let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    let enforced = tree.make_readonly(0, "scaling_setspeed");
    let result = backend.set_state(backend.table().lowest());
    if enforced {
        let err = result.unwrap_err();
        assert!(
            matches!(err, PlatformError::SysfsIo { op: "write", .. }),
            "{err:?}"
        );
    } else {
        result.unwrap();
    }
}

#[test]
fn failed_cap_path_writes_do_not_poison_bookkeeping() {
    // On the cap write path the requested/cap split lives backend-side; a
    // fan-out write that fails partway must not leave the backend believing
    // a state that was never fully programmed.
    let tree = FakeCpufreqTree::builder()
        .governor("ondemand")
        .without_setspeed()
        .build();
    let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    let low = backend.table().lowest();
    let mid = backend.table().state(3).unwrap();

    tree.replace_with_directory(1, "scaling_max_freq");
    assert!(matches!(
        backend.set_state(low).unwrap_err(),
        PlatformError::SysfsIo { op: "write", .. }
    ));

    // Repair cpu1 and impose a cap: the target must derive from the last
    // *successful* request (the attach-time highest state), not the failed
    // `low` request — min(highest, mid) = mid.
    std::fs::remove_dir(tree.file(1, "scaling_max_freq")).unwrap();
    tree.write(1, "scaling_max_freq", "2400000\n");
    backend.set_cap(mid).unwrap();
    assert_eq!(backend.current_state().unwrap(), mid);
    assert_eq!(backend.cap().unwrap(), Some(mid));
    assert_eq!(tree.read(1, "scaling_max_freq"), mid.khz().to_string());
}

#[test]
fn mid_run_faults_never_lose_the_attach_time_table() {
    // After any runtime fault the backend still reports the table it
    // discovered at attach; recovery (rewriting sane values) restores
    // normal operation.
    let tree = FakeCpufreqTree::builder().build();
    let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
    tree.write(0, "scaling_setspeed", "1700000\n");
    assert!(backend.current_state().is_err());
    assert_eq!(backend.table().khz(), &DVFS_FREQUENCIES_KHZ);

    let low = backend.table().lowest();
    backend.set_state(low).unwrap();
    assert_eq!(backend.current_state().unwrap(), low);
    assert_eq!(backend.observed_khz().unwrap(), DVFS_FREQUENCIES_KHZ[0]);
}
