//! Backend-conformance suite: one parameterized battery run against every
//! `DvfsBackend` implementation, asserting identical observable behavior.
//!
//! The battery walks the full trait contract — enumerate the table, set
//! each state and read it back, re-set idempotently, cap then lift, reject
//! out-of-table states — and records every observation as a line in a log.
//! Two conforming backends over the same table must produce *equal logs*,
//! which is the property that licenses swapping `SimBackend` for
//! `SysfsCpufreqBackend` under the power-cap experiments.

use powerdial_platform::{DvfsBackend, FrequencyTable, PlatformError, SimBackend};

#[cfg(all(feature = "dvfs-sysfs", target_os = "linux"))]
mod common;

/// Runs the conformance battery, asserting the contract and returning the
/// observation log for cross-backend comparison.
fn conformance_battery(backend: &mut dyn DvfsBackend) -> Vec<String> {
    let mut log = Vec::new();
    let table = backend.table().clone();
    assert!(table.len() >= 2, "battery needs at least two states");
    log.push(format!("table {}", table.format()));

    // Attach state: uncapped, at the highest frequency.
    let initial = backend.current_state().expect("fresh backend must read");
    assert_eq!(initial, table.highest());
    assert_eq!(backend.cap().expect("fresh backend cap must read"), None);
    log.push(format!(
        "initial {} transitions {}",
        initial.khz(),
        backend.transitions()
    ));

    // Enumerate → set each state → read back, then idempotent re-set.
    for state in table.states() {
        backend.set_state(state).expect("in-table set must succeed");
        let read = backend.current_state().expect("read-back must succeed");
        assert_eq!(read, state, "read-back must return the state just set");
        log.push(format!(
            "set {} read {} transitions {}",
            state.khz(),
            read.khz(),
            backend.transitions()
        ));

        let before = backend.transitions();
        backend.set_state(state).expect("re-set must succeed");
        assert_eq!(backend.current_state().unwrap(), state);
        assert_eq!(
            backend.transitions(),
            before,
            "idempotent re-set must not count a transition"
        );
        log.push(format!(
            "reset {} transitions {}",
            state.khz(),
            backend.transitions()
        ));
    }

    // Cap then lift: the cap clamps without forgetting the request.
    backend.set_state(table.highest()).expect("set highest");
    backend.set_cap(table.lowest()).expect("cap to lowest");
    assert_eq!(backend.current_state().unwrap(), table.lowest());
    assert_eq!(backend.cap().unwrap(), Some(table.lowest()));
    log.push(format!(
        "capped {} cap {} transitions {}",
        backend.current_state().unwrap().khz(),
        table.lowest().khz(),
        backend.transitions()
    ));

    // Requests made while capped take effect once the cap lifts.
    backend
        .set_state(table.highest())
        .expect("request under cap");
    assert_eq!(backend.current_state().unwrap(), table.lowest());
    backend.lift_cap().expect("lift cap");
    assert_eq!(backend.current_state().unwrap(), table.highest());
    assert_eq!(backend.cap().unwrap(), None);
    log.push(format!(
        "lifted {} transitions {}",
        backend.current_state().unwrap().khz(),
        backend.transitions()
    ));

    // A cap above the current request leaves the state alone; a cap at the
    // table maximum is no cap at all.
    backend.set_state(table.lowest()).expect("set lowest");
    backend
        .set_cap(table.state(1).unwrap())
        .expect("cap above request");
    assert_eq!(backend.current_state().unwrap(), table.lowest());
    backend.set_cap(table.highest()).expect("cap at max");
    assert_eq!(backend.cap().unwrap(), None);
    log.push(format!(
        "slack-cap {} transitions {}",
        backend.current_state().unwrap().khz(),
        backend.transitions()
    ));

    // Out-of-table states are rejected with a typed error and no effect —
    // same kHz as a table entry but from a foreign ladder also counts.
    let foreign = FrequencyTable::new(vec![table.max_khz() * 2, table.max_khz()]).unwrap();
    let before = backend.current_state().unwrap();
    let transitions_before = backend.transitions();
    for bad in [foreign.highest(), foreign.lowest()] {
        let err = backend
            .set_state(bad)
            .expect_err("foreign state must be rejected");
        assert_eq!(err, PlatformError::StateNotInTable { khz: bad.khz() });
        let err = backend
            .set_cap(bad)
            .expect_err("foreign cap must be rejected");
        assert_eq!(err, PlatformError::StateNotInTable { khz: bad.khz() });
        log.push(format!("rejected {}", bad.khz()));
    }
    assert_eq!(backend.current_state().unwrap(), before);
    assert_eq!(backend.transitions(), transitions_before);
    log.push(format!(
        "final {} transitions {}",
        before.khz(),
        backend.transitions()
    ));

    log
}

#[test]
fn sim_backend_passes_the_battery() {
    let mut backend = SimBackend::paper();
    let log = conformance_battery(&mut backend);
    assert!(log.len() > 7 * 2 + 4);
}

#[test]
fn sim_backend_passes_the_battery_on_a_custom_table() {
    let table = FrequencyTable::new(vec![3_000_000, 2_500_000, 1_200_000]).unwrap();
    let mut backend = SimBackend::new(table);
    conformance_battery(&mut backend);
}

#[cfg(all(feature = "dvfs-sysfs", target_os = "linux"))]
mod sysfs {
    use super::*;
    use crate::common::FakeCpufreqTree;
    use powerdial_platform::SysfsCpufreqBackend;

    #[test]
    fn sysfs_backend_passes_the_battery() {
        let tree = FakeCpufreqTree::builder().build();
        let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
        assert_eq!(backend.name(), "sysfs-cpufreq");
        assert_eq!(backend.cpu_count(), 2);
        assert_eq!(backend.governor_name(), "userspace");
        conformance_battery(&mut backend);
    }

    #[test]
    fn sysfs_and_sim_backends_behave_identically() {
        // The headline property: the same battery on the same table yields
        // the same observation log, state for state, transition count for
        // transition count.
        let tree = FakeCpufreqTree::builder().build();
        let mut sysfs = SysfsCpufreqBackend::attach(tree.root()).unwrap();
        let mut sim = SimBackend::paper();
        assert_eq!(sysfs.table(), sim.table());

        let sysfs_log = conformance_battery(&mut sysfs);
        let sim_log = conformance_battery(&mut sim);
        assert_eq!(sysfs_log, sim_log);
    }

    #[test]
    fn sysfs_and_sim_backends_agree_on_a_custom_table() {
        let khz = [3_600_000u64, 2_800_000, 2_000_000, 800_000];
        let tree = FakeCpufreqTree::builder()
            .cpus(4)
            .frequencies_khz(&khz)
            .build();
        let mut sysfs = SysfsCpufreqBackend::attach(tree.root()).unwrap();
        let mut sim = SimBackend::new(FrequencyTable::new(khz.to_vec()).unwrap());
        assert_eq!(sysfs.table(), sim.table());
        assert_eq!(
            conformance_battery(&mut sysfs),
            conformance_battery(&mut sim)
        );
    }

    #[test]
    fn cap_write_path_behaves_identically_too() {
        // Without the userspace governor the backend expresses states as
        // policy caps through scaling_max_freq, with the requested/cap
        // split tracked backend-side — same battery, same observation log
        // as the simulator.
        let tree = FakeCpufreqTree::builder()
            .governor("ondemand")
            .without_setspeed()
            .build();
        let mut sysfs = SysfsCpufreqBackend::attach(tree.root()).unwrap();
        assert_eq!(sysfs.governor_name(), "ondemand");
        let mut sim = SimBackend::paper();
        assert_eq!(sysfs.table(), sim.table());
        assert_eq!(
            conformance_battery(&mut sysfs),
            conformance_battery(&mut sim)
        );
    }

    #[test]
    fn battery_writes_fan_out_to_every_cpu() {
        let tree = FakeCpufreqTree::builder().cpus(3).build();
        let mut backend = SysfsCpufreqBackend::attach(tree.root()).unwrap();
        conformance_battery(&mut backend);
        for cpu in 0..3 {
            assert_eq!(
                tree.read(cpu, "scaling_setspeed"),
                tree.read(0, "scaling_setspeed")
            );
            assert_eq!(
                tree.read(cpu, "scaling_max_freq"),
                tree.read(0, "scaling_max_freq")
            );
        }
    }
}
