//! A fake sysfs/cpufreq tree in a temp directory, for driving
//! `SysfsCpufreqBackend` without root or hardware.
//!
//! The builder writes a realistic `cpu*/cpufreq/` layout — the same files a
//! Linux kernel exposes, including the trailing space cpufreq puts after
//! `scaling_available_frequencies` — and the accessors let fault-injection
//! tests corrupt individual files afterward. The tree removes itself on
//! drop.

// Shared by several test binaries; not every binary uses every helper.
#![allow(dead_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use powerdial_platform::DVFS_FREQUENCIES_KHZ;

static TREE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Builder for a [`FakeCpufreqTree`].
pub struct FakeCpufreqTreeBuilder {
    cpus: usize,
    frequencies_khz: Vec<u64>,
    governor: String,
    with_setspeed: bool,
}

impl FakeCpufreqTreeBuilder {
    /// Number of `cpuN` directories (default 2, like the paper's two
    /// packages).
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// The advertised frequency table, in kHz (default: the paper's seven
    /// states).
    pub fn frequencies_khz(mut self, khz: &[u64]) -> Self {
        self.frequencies_khz = khz.to_vec();
        self
    }

    /// The governor every CPU reports (default `userspace`).
    pub fn governor(mut self, governor: &str) -> Self {
        self.governor = governor.to_string();
        self
    }

    /// Omits `scaling_setspeed` from every CPU (kernels without the
    /// userspace governor compiled in).
    pub fn without_setspeed(mut self) -> Self {
        self.with_setspeed = false;
        self
    }

    /// Writes the tree to a fresh temp directory.
    pub fn build(self) -> FakeCpufreqTree {
        let root = std::env::temp_dir().join(format!(
            "powerdial-fake-cpufreq-{}-{}",
            std::process::id(),
            TREE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fake tree root");

        // Non-policy entries a real /sys/devices/system/cpu contains; the
        // backend's scanner must skip them.
        fs::create_dir_all(root.join("cpufreq")).unwrap();
        fs::create_dir_all(root.join("cpuidle")).unwrap();
        fs::write(root.join("online"), format!("0-{}\n", self.cpus.max(1) - 1)).unwrap();

        let max = self.frequencies_khz.iter().copied().max().unwrap_or(0);
        let min = self.frequencies_khz.iter().copied().min().unwrap_or(0);
        let mut available = String::new();
        for khz in &self.frequencies_khz {
            available.push_str(&khz.to_string());
            available.push(' ');
        }
        available.push('\n');

        for cpu in 0..self.cpus {
            let dir = root.join(format!("cpu{cpu}")).join("cpufreq");
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join("scaling_available_frequencies"), &available).unwrap();
            fs::write(dir.join("scaling_governor"), format!("{}\n", self.governor)).unwrap();
            fs::write(
                dir.join("scaling_available_governors"),
                "userspace ondemand performance powersave \n",
            )
            .unwrap();
            if self.with_setspeed {
                fs::write(dir.join("scaling_setspeed"), format!("{max}\n")).unwrap();
            }
            fs::write(dir.join("scaling_max_freq"), format!("{max}\n")).unwrap();
            fs::write(dir.join("scaling_min_freq"), format!("{min}\n")).unwrap();
            fs::write(dir.join("scaling_cur_freq"), format!("{max}\n")).unwrap();
            fs::write(dir.join("cpuinfo_max_freq"), format!("{max}\n")).unwrap();
            fs::write(dir.join("cpuinfo_min_freq"), format!("{min}\n")).unwrap();
        }

        FakeCpufreqTree { root }
    }
}

/// A fake cpufreq tree on disk; see the module docs.
pub struct FakeCpufreqTree {
    root: PathBuf,
}

impl FakeCpufreqTree {
    /// Starts building a tree: 2 CPUs, the paper table, `userspace`
    /// governor.
    pub fn builder() -> FakeCpufreqTreeBuilder {
        FakeCpufreqTreeBuilder {
            cpus: 2,
            frequencies_khz: DVFS_FREQUENCIES_KHZ.to_vec(),
            governor: "userspace".to_string(),
            with_setspeed: true,
        }
    }

    /// The directory to hand `SysfsCpufreqBackend::attach`.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of a file under `cpuN/cpufreq/`.
    pub fn file(&self, cpu: usize, name: &str) -> PathBuf {
        self.root
            .join(format!("cpu{cpu}"))
            .join("cpufreq")
            .join(name)
    }

    /// Overwrites a cpufreq file — fault injection for values changed
    /// behind the backend's back.
    pub fn write(&self, cpu: usize, name: &str, contents: &str) {
        fs::write(self.file(cpu, name), contents).expect("write fake cpufreq file");
    }

    /// Reads a cpufreq file back, trimmed.
    pub fn read(&self, cpu: usize, name: &str) -> String {
        fs::read_to_string(self.file(cpu, name))
            .expect("read fake cpufreq file")
            .trim()
            .to_string()
    }

    /// Deletes a cpufreq file — fault injection for missing entries.
    pub fn remove(&self, cpu: usize, name: &str) {
        fs::remove_file(self.file(cpu, name)).expect("remove fake cpufreq file");
    }

    /// Replaces a cpufreq file with a directory, so any write to it fails
    /// with a genuine I/O error on every platform and every euid (unlike
    /// permission bits, which root bypasses).
    pub fn replace_with_directory(&self, cpu: usize, name: &str) {
        let path = self.file(cpu, name);
        fs::remove_file(&path).expect("remove fake cpufreq file");
        fs::create_dir(&path).expect("create directory in place of file");
    }

    /// Strips write permission from a cpufreq file. Returns `false` when
    /// the calling process can still write it anyway (running as root), in
    /// which case EACCES cannot be provoked and the caller should skip the
    /// strict assertion.
    pub fn make_readonly(&self, cpu: usize, name: &str) -> bool {
        let path = self.file(cpu, name);
        let original = fs::read_to_string(&path).expect("read before chmod");
        let mut perms = fs::metadata(&path).expect("stat fake file").permissions();
        perms.set_readonly(true);
        fs::set_permissions(&path, perms).expect("chmod fake file");
        // Probe: root ignores permission bits entirely.
        match fs::write(&path, &original) {
            Ok(()) => false,
            Err(_) => true,
        }
    }
}

impl Drop for FakeCpufreqTree {
    fn drop(&mut self) {
        // Restore write permission so removal succeeds even after
        // make_readonly, then remove best-effort.
        fn unprotect(dir: &Path) {
            if let Ok(entries) = fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if let Ok(meta) = fs::metadata(&path) {
                        let mut perms = meta.permissions();
                        #[allow(clippy::permissions_set_readonly_false)]
                        perms.set_readonly(false);
                        let _ = fs::set_permissions(&path, perms);
                        if meta.is_dir() {
                            unprotect(&path);
                        }
                    }
                }
            }
        }
        unprotect(&self.root);
        let _ = fs::remove_dir_all(&self.root);
    }
}
