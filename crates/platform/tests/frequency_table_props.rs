//! Property tests for `FrequencyTable`: parse/format round-trips, capacity
//! bounds, and totality/monotonicity of nearest-state lookup.

use powerdial_platform::FrequencyTable;
use proptest::prelude::*;

proptest! {
    /// Any non-empty positive frequency list builds a table that formats to
    /// a `scaling_available_frequencies` line parsing back to the same
    /// table, in canonical (descending, deduped) order.
    #[test]
    fn parse_format_round_trips(
        khz in proptest::collection::vec(1u64..6_000_000, 1..12),
    ) {
        let table = FrequencyTable::new(khz).unwrap();
        let formatted = table.format();
        let reparsed = FrequencyTable::parse(&formatted).unwrap();
        prop_assert_eq!(&reparsed, &table);
        // Canonical order: strictly descending.
        for pair in table.khz().windows(2) {
            prop_assert!(pair[0] > pair[1]);
        }
        // cpufreq-style trailing whitespace parses to the same table.
        let trailing = format!("{formatted} \n");
        prop_assert_eq!(FrequencyTable::parse(&trailing).unwrap(), table);
    }

    /// Every state's capacity is in (0, 1], exactly 1 at the top of the
    /// ladder, and monotone down the ladder.
    #[test]
    fn capacities_stay_in_the_unit_interval(
        khz in proptest::collection::vec(1u64..6_000_000, 1..12),
    ) {
        let table = FrequencyTable::new(khz).unwrap();
        prop_assert_eq!(table.highest().capacity(), 1.0);
        let mut previous = f64::INFINITY;
        for state in table.states() {
            let capacity = state.capacity();
            prop_assert!(capacity > 0.0, "capacity {capacity}");
            prop_assert!(capacity <= 1.0, "capacity {capacity}");
            prop_assert!(capacity <= previous);
            previous = capacity;
        }
    }

    /// Nearest-state lookup is total (any u64 input yields a table state)
    /// and monotone (a higher query never maps to a lower frequency).
    #[test]
    fn nearest_state_is_total_and_monotone(
        khz in proptest::collection::vec(1u64..6_000_000, 1..12),
        q1 in 0u64..8_000_000,
        q2 in 0u64..8_000_000,
    ) {
        let table = FrequencyTable::new(khz).unwrap();
        let n1 = table.nearest_state(q1);
        let n2 = table.nearest_state(q2);
        prop_assert!(table.contains(n1));
        prop_assert!(table.contains(n2));
        let (lo, hi) = if q1 <= q2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(
            lo.khz() <= hi.khz(),
            "nearest lookup not monotone: {} -> {}, {} -> {}",
            q1, n1.khz(), q2, n2.khz()
        );
        // Exact members map to themselves, and extremes clamp.
        prop_assert_eq!(table.nearest_state(table.max_khz()), table.highest());
        prop_assert_eq!(table.nearest_state(table.min_khz()), table.lowest());
        prop_assert_eq!(table.nearest_state(0), table.lowest());
        prop_assert_eq!(table.nearest_state(u64::MAX), table.highest());
    }

    /// state_meeting_capacity is total and returns the slowest state whose
    /// capacity meets the request.
    #[test]
    fn state_meeting_capacity_is_slowest_sufficient(
        khz in proptest::collection::vec(1u64..6_000_000, 1..12),
        request in 0.0f64..1.2,
    ) {
        let table = FrequencyTable::new(khz).unwrap();
        let chosen = table.state_meeting_capacity(request);
        prop_assert!(table.contains(chosen));
        if chosen.capacity() >= request {
            // Sufficient: no slower state may also be sufficient.
            if let Some(slower) = table.step_down(chosen) {
                prop_assert!(slower.capacity() < request);
            }
        } else {
            // Unattainable request: falls back to the highest state.
            prop_assert_eq!(chosen, table.highest());
        }
    }
}
