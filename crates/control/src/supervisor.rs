//! A fork-based daemon supervisor for crash-recovery tests and benches.
//!
//! Proving recovery needs a daemon that *really* dies: an in-process
//! "crash" cannot leave the segment in the state a SIGKILL leaves it in
//! (a dead PID stuck in the consumer slot, a possibly torn decision
//! block), because an in-process consumer's claim still names a live
//! process — which adoption rightly refuses. The [`Supervisor`] therefore
//! runs the whole daemon side — attach broker plus [`PowerDialDaemon`] —
//! in a **forked child process**, and exposes exactly the lifecycle a
//! chaos harness needs: [`start`](Supervisor::start),
//! [`kill`](Supervisor::kill) (SIGKILL, no warning, no cleanup), and
//! [`restart`](Supervisor::restart).
//!
//! The supervised daemon serves both attach flavors through its broker:
//! fresh hellos get a broker-created segment
//! ([`PowerDialDaemon::register_shm`]); reattach hellos from clients
//! orphaned by a previous incarnation get their surviving segment adopted
//! ([`PowerDialDaemon::register_shm_adopted`]) — stale consumer claim
//! stepped over, torn decision block healed, controller warm-started from
//! the segment's warm-state block. A successor incarnation rebinds the
//! same socket path; [`AttachBroker::bind`] already knows how to reclaim
//! the socket file a SIGKILLed predecessor left behind.
//!
//! This module is test/bench infrastructure, not deployment posture: a
//! production supervisor is the init system's job. It lives in the
//! library (not a test helper) so the chaos suite, the recovery bench,
//! and downstream experiments drive the *same* restart logic.

use std::path::PathBuf;
use std::time::Duration;

use powerdial_heartbeats::shm::process::{fork_child, ChildExit, ForkedChild};
use powerdial_heartbeats::shm::ShmError;
use powerdial_knobs::KnobTable;

use crate::broker::{AttachBroker, AttachRequest, BrokerConfig};
use crate::daemon::{DaemonConfig, IdleLadder, PowerDialDaemon};
use crate::{ControllerConfig, RuntimeConfig};

/// Everything a daemon incarnation needs to serve: where to listen, how
/// to shard, and the control problem every attaching app gets.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Socket path each incarnation's broker binds (and rebinds).
    pub socket_path: PathBuf,
    /// Daemon sharding/channel configuration.
    pub daemon: DaemonConfig,
    /// Target heart rate handed to every registered app's controller.
    pub target_rate: f64,
    /// Baseline (uncontrolled) heart rate for the control law.
    pub baseline_rate: f64,
    /// Delay between the child's serve-loop iterations. Zero spins hot
    /// (lowest recovery latency, one core burned); a few tens of
    /// microseconds is plenty for tests.
    pub poll_interval: Duration,
    /// Base crash-loop backoff: [`restart`](Supervisor::restart) sleeps a
    /// deterministically jittered multiple of this before forking the
    /// successor, doubling per consecutive restart. [`Duration::ZERO`]
    /// disables the guard (chaos harnesses that restart on purpose want
    /// no artificial delay).
    pub restart_backoff: Duration,
    /// Rate cap for the crash-loop guard: the pre-jitter backoff never
    /// exceeds this, so a daemon stuck in a crash loop converges to at
    /// most one fork per `restart_backoff_cap` (plus jitter) instead of
    /// forking as fast as the kernel can reap.
    pub restart_backoff_cap: Duration,
}

/// Restarts a forked broker+daemon process across SIGKILLs.
///
/// Dropping a supervisor with a live child kills and reaps it.
#[derive(Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    table: KnobTable,
    child: Option<ForkedChild>,
    incarnations: u32,
    crash_streak: u32,
    last_exit: Option<ChildExit>,
}

impl Supervisor {
    /// A supervisor that will serve `table` to every attaching app. No
    /// child is started yet.
    pub fn new(config: SupervisorConfig, table: KnobTable) -> Self {
        Supervisor {
            config,
            table,
            child: None,
            incarnations: 0,
            crash_streak: 0,
            last_exit: None,
        }
    }

    /// Forks the next daemon incarnation and returns its PID.
    ///
    /// # Errors
    ///
    /// [`ShmError`] when the fork fails.
    ///
    /// # Panics
    ///
    /// Panics if an incarnation is already running — kill it first; the
    /// supervisor never races two children for one socket path.
    pub fn start(&mut self) -> Result<u32, ShmError> {
        assert!(
            self.child.is_none(),
            "an incarnation is already running; kill() it before start()"
        );
        let config = self.config.clone();
        let table = self.table.clone();
        let child = fork_child(move || daemon_process(&config, &table))?;
        let pid = child.pid();
        self.child = Some(child);
        self.incarnations += 1;
        Ok(pid)
    }

    /// SIGKILLs the running incarnation and reaps it — the crash under
    /// test: no signal handler runs, no destructor, no goodbye. The
    /// consumer claim and whatever half-written state the daemon held
    /// stay in every client's segment exactly as the kill left them.
    ///
    /// # Errors
    ///
    /// [`ShmError`] when the signal or the reaping wait fails.
    ///
    /// # Panics
    ///
    /// Panics if no incarnation is running.
    pub fn kill(&mut self) -> Result<ChildExit, ShmError> {
        let child = self.child.take().expect("no incarnation running");
        child.kill()?;
        let exit = child.wait()?;
        self.last_exit = Some(exit);
        Ok(exit)
    }

    /// [`kill`](Supervisor::kill) then [`start`](Supervisor::start):
    /// returns the successor's PID.
    ///
    /// Between the two halves the crash-loop guard runs: when
    /// [`SupervisorConfig::restart_backoff`] is non-zero, the supervisor
    /// sleeps a deterministically jittered backoff that doubles with each
    /// consecutive restart, capped at
    /// [`SupervisorConfig::restart_backoff_cap`]. The jitter reuses the
    /// client's splitmix64 mix over the process identity and the streak
    /// index, so the delay schedule is replayable yet two supervisors
    /// restarting off the same incident desynchronize. Call
    /// [`note_healthy`](Supervisor::note_healthy) after observing real
    /// service to reset the streak.
    ///
    /// # Errors
    ///
    /// [`ShmError`] from either half.
    pub fn restart(&mut self) -> Result<u32, ShmError> {
        self.kill()?;
        let delay = self.next_backoff();
        self.crash_streak = self.crash_streak.saturating_add(1);
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        self.start()
    }

    /// The pre-sleep the *next* restart would impose: the base backoff
    /// doubled once per prior consecutive restart, capped, then jittered.
    /// Exposed so harnesses can assert the schedule without sleeping it.
    pub fn next_backoff(&self) -> Duration {
        let base = self.config.restart_backoff;
        if base == Duration::ZERO {
            return Duration::ZERO;
        }
        let factor = 1u32
            .checked_shl(self.crash_streak.min(16))
            .unwrap_or(u32::MAX);
        let capped = base
            .saturating_mul(factor)
            .min(self.config.restart_backoff_cap.max(base));
        jittered(capped, self.crash_streak)
    }

    /// Resets the crash-loop streak — call after the incarnation has
    /// demonstrably served (attached a client, ticked beats), so one
    /// later crash starts the backoff ladder from its base again.
    pub fn note_healthy(&mut self) {
        self.crash_streak = 0;
    }

    /// Consecutive restarts since the last
    /// [`note_healthy`](Supervisor::note_healthy) (or construction).
    pub fn crash_streak(&self) -> u32 {
        self.crash_streak
    }

    /// How the most recently reaped incarnation died, if any has been
    /// reaped: `Signaled(SIGKILL)` for supervisor-initiated kills,
    /// `Exited(code)` when the child beat the signal to the exit.
    pub fn last_exit_reason(&self) -> Option<ChildExit> {
        self.last_exit
    }

    /// PID of the running incarnation, if any.
    pub fn pid(&self) -> Option<u32> {
        self.child.as_ref().map(ForkedChild::pid)
    }

    /// How many incarnations have been started so far.
    pub fn incarnations(&self) -> u32 {
        self.incarnations
    }

    /// Kills and reaps the running incarnation if there is one; the
    /// orderly way to end a test. Errors are swallowed (the child may
    /// already be gone).
    pub fn shutdown(&mut self) {
        if let Some(child) = self.child.take() {
            let _ = child.kill();
            if let Ok(exit) = child.wait() {
                self.last_exit = Some(exit);
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Deterministic jitter in permille of a backoff interval (0..=250), the
/// same splitmix64 mix the client uses for its attach retries: PID plus
/// kernel start-time nonce plus the attempt index, avalanched. The
/// supervisor cannot depend on the client crate (the dependency points
/// the other way), so the mix is replicated here; the
/// `jitter_is_deterministic_and_bounded` tests on both sides pin the
/// shared contract.
fn jitter_permille(attempt: u32) -> u128 {
    use powerdial_heartbeats::shm::{current_pid, process_start_nonce};
    let pid = current_pid();
    let mut x = (u64::from(pid) << 32)
        ^ process_start_nonce(pid).unwrap_or(0)
        ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    u128::from(x % 251)
}

/// `base` stretched by this process's jitter for the given attempt.
fn jittered(base: Duration, attempt: u32) -> Duration {
    let extra = base.as_nanos().saturating_mul(jitter_permille(attempt)) / 1000;
    base + Duration::from_nanos(extra.min(u128::from(u64::MAX)) as u64)
}

/// The child's entire life: bind, serve attaches (fresh and reattach),
/// tick, reap, forever — until SIGKILL does it in. Exit codes are only
/// ever observed when setup fails (the supervisor's caller sees them via
/// [`ChildExit::Exited`]).
fn daemon_process(config: &SupervisorConfig, table: &KnobTable) -> i32 {
    let Ok(mut broker) = AttachBroker::bind(BrokerConfig::new(&config.socket_path)) else {
        return 10;
    };
    let Ok(mut daemon) = PowerDialDaemon::new(config.daemon) else {
        return 11;
    };
    let mut ladder = IdleLadder::new();
    loop {
        let served = broker.poll_accept(daemon.app_count(), |request| {
            let runtime = RuntimeConfig::new(ControllerConfig::new(
                config.target_rate,
                config.baseline_rate,
            )?);
            match request {
                AttachRequest::Fresh(consumer) => {
                    daemon.register_shm(runtime, table.clone(), consumer)
                }
                AttachRequest::Reattach(consumer) => {
                    daemon.register_shm_adopted(runtime, table.clone(), consumer)
                }
            }
        });
        let served = match served {
            Ok(outcome) => outcome.is_some(),
            Err(_) => return 12,
        };
        let beats = daemon.tick();
        daemon.reap_dead();
        // Self-heal within the incarnation: a worker thread lost to a
        // contained-but-fatal fault is respawned at the same index with
        // its survivors migrated, so shard death never requires the
        // (much costlier) process-level restart above us.
        daemon.respawn_dead();
        if config.poll_interval > Duration::ZERO {
            std::thread::sleep(config.poll_interval);
        } else if served || beats > 0 {
            // Work arrived this iteration: stay hot for the next one.
            ladder.reset();
        } else {
            // Escalate spin → yield → park so an idle daemon stops
            // burning the core while staying quick to re-engage.
            ladder.idle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_knobs::{CalibrationPoint, ConfigParameter, ParameterSpace};
    use powerdial_qos::{QosLoss, QosLossBound};

    fn test_table() -> KnobTable {
        let speedups = [1.0, 2.0];
        let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
            .build()
            .unwrap();
        let points = speedups
            .iter()
            .enumerate()
            .map(|(i, &s)| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: s,
                qos_loss: QosLoss::new((s - 1.0) * 0.02),
            })
            .collect();
        KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
    }

    fn supervisor(base_ms: u64, cap_ms: u64) -> Supervisor {
        Supervisor::new(
            SupervisorConfig {
                socket_path: std::env::temp_dir().join("pd-supervisor-backoff-test.sock"),
                daemon: DaemonConfig {
                    workers: 0,
                    channel_capacity: 8,
                    window_size: 4,
                    inline_apps: 0,
                    idle_skip_limit: 0,
                    drain_cap: 0,
                    telemetry: false,
                    trace_capacity: DaemonConfig::DEFAULT_TRACE_CAPACITY,
                    safe_point: 0,
                },
                target_rate: 30.0,
                baseline_rate: 30.0,
                poll_interval: Duration::ZERO,
                restart_backoff: Duration::from_millis(base_ms),
                restart_backoff_cap: Duration::from_millis(cap_ms),
            },
            test_table(),
        )
    }

    /// `base + base/4` is the exact ceiling: permille tops out at 250.
    fn within_jitter(actual: Duration, base_ms: u64) -> bool {
        let base = Duration::from_millis(base_ms);
        actual >= base && actual <= base + base / 4
    }

    // Pins the contract shared with the client's attach-retry jitter
    // (see `jitter_is_deterministic_and_bounded` in the client crate).
    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for attempt in 0..64 {
            let permille = jitter_permille(attempt);
            assert!(permille <= 250, "attempt {attempt}: {permille} > 250");
            assert_eq!(permille, jitter_permille(attempt), "must be replayable");
        }
        let base = Duration::from_millis(100);
        assert!(within_jitter(jittered(base, 3), 100));
    }

    #[test]
    fn restart_backoff_doubles_then_caps() {
        let mut sup = supervisor(10, 40);
        assert!(within_jitter(sup.next_backoff(), 10));
        sup.crash_streak = 1;
        assert!(within_jitter(sup.next_backoff(), 20));
        sup.crash_streak = 2;
        assert!(within_jitter(sup.next_backoff(), 40));
        sup.crash_streak = 9;
        assert!(within_jitter(sup.next_backoff(), 40), "rate cap holds");
        sup.note_healthy();
        assert_eq!(sup.crash_streak(), 0);
        assert!(within_jitter(sup.next_backoff(), 10));
    }

    #[test]
    fn zero_base_disables_the_guard() {
        let mut sup = supervisor(0, 0);
        sup.crash_streak = 7;
        assert_eq!(sup.next_backoff(), Duration::ZERO);
        assert!(sup.last_exit_reason().is_none());
    }
}
