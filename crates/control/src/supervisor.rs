//! A fork-based daemon supervisor for crash-recovery tests and benches.
//!
//! Proving recovery needs a daemon that *really* dies: an in-process
//! "crash" cannot leave the segment in the state a SIGKILL leaves it in
//! (a dead PID stuck in the consumer slot, a possibly torn decision
//! block), because an in-process consumer's claim still names a live
//! process — which adoption rightly refuses. The [`Supervisor`] therefore
//! runs the whole daemon side — attach broker plus [`PowerDialDaemon`] —
//! in a **forked child process**, and exposes exactly the lifecycle a
//! chaos harness needs: [`start`](Supervisor::start),
//! [`kill`](Supervisor::kill) (SIGKILL, no warning, no cleanup), and
//! [`restart`](Supervisor::restart).
//!
//! The supervised daemon serves both attach flavors through its broker:
//! fresh hellos get a broker-created segment
//! ([`PowerDialDaemon::register_shm`]); reattach hellos from clients
//! orphaned by a previous incarnation get their surviving segment adopted
//! ([`PowerDialDaemon::register_shm_adopted`]) — stale consumer claim
//! stepped over, torn decision block healed, controller warm-started from
//! the segment's warm-state block. A successor incarnation rebinds the
//! same socket path; [`AttachBroker::bind`] already knows how to reclaim
//! the socket file a SIGKILLed predecessor left behind.
//!
//! This module is test/bench infrastructure, not deployment posture: a
//! production supervisor is the init system's job. It lives in the
//! library (not a test helper) so the chaos suite, the recovery bench,
//! and downstream experiments drive the *same* restart logic.

use std::path::PathBuf;
use std::time::Duration;

use powerdial_heartbeats::shm::process::{fork_child, ChildExit, ForkedChild};
use powerdial_heartbeats::shm::ShmError;
use powerdial_knobs::KnobTable;

use crate::broker::{AttachBroker, AttachRequest, BrokerConfig};
use crate::daemon::{DaemonConfig, IdleLadder, PowerDialDaemon};
use crate::{ControllerConfig, RuntimeConfig};

/// Everything a daemon incarnation needs to serve: where to listen, how
/// to shard, and the control problem every attaching app gets.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Socket path each incarnation's broker binds (and rebinds).
    pub socket_path: PathBuf,
    /// Daemon sharding/channel configuration.
    pub daemon: DaemonConfig,
    /// Target heart rate handed to every registered app's controller.
    pub target_rate: f64,
    /// Baseline (uncontrolled) heart rate for the control law.
    pub baseline_rate: f64,
    /// Delay between the child's serve-loop iterations. Zero spins hot
    /// (lowest recovery latency, one core burned); a few tens of
    /// microseconds is plenty for tests.
    pub poll_interval: Duration,
}

/// Restarts a forked broker+daemon process across SIGKILLs.
///
/// Dropping a supervisor with a live child kills and reaps it.
#[derive(Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    table: KnobTable,
    child: Option<ForkedChild>,
    incarnations: u32,
}

impl Supervisor {
    /// A supervisor that will serve `table` to every attaching app. No
    /// child is started yet.
    pub fn new(config: SupervisorConfig, table: KnobTable) -> Self {
        Supervisor {
            config,
            table,
            child: None,
            incarnations: 0,
        }
    }

    /// Forks the next daemon incarnation and returns its PID.
    ///
    /// # Errors
    ///
    /// [`ShmError`] when the fork fails.
    ///
    /// # Panics
    ///
    /// Panics if an incarnation is already running — kill it first; the
    /// supervisor never races two children for one socket path.
    pub fn start(&mut self) -> Result<u32, ShmError> {
        assert!(
            self.child.is_none(),
            "an incarnation is already running; kill() it before start()"
        );
        let config = self.config.clone();
        let table = self.table.clone();
        let child = fork_child(move || daemon_process(&config, &table))?;
        let pid = child.pid();
        self.child = Some(child);
        self.incarnations += 1;
        Ok(pid)
    }

    /// SIGKILLs the running incarnation and reaps it — the crash under
    /// test: no signal handler runs, no destructor, no goodbye. The
    /// consumer claim and whatever half-written state the daemon held
    /// stay in every client's segment exactly as the kill left them.
    ///
    /// # Errors
    ///
    /// [`ShmError`] when the signal or the reaping wait fails.
    ///
    /// # Panics
    ///
    /// Panics if no incarnation is running.
    pub fn kill(&mut self) -> Result<ChildExit, ShmError> {
        let child = self.child.take().expect("no incarnation running");
        child.kill()?;
        child.wait()
    }

    /// [`kill`](Supervisor::kill) then [`start`](Supervisor::start):
    /// returns the successor's PID.
    ///
    /// # Errors
    ///
    /// [`ShmError`] from either half.
    pub fn restart(&mut self) -> Result<u32, ShmError> {
        self.kill()?;
        self.start()
    }

    /// PID of the running incarnation, if any.
    pub fn pid(&self) -> Option<u32> {
        self.child.as_ref().map(ForkedChild::pid)
    }

    /// How many incarnations have been started so far.
    pub fn incarnations(&self) -> u32 {
        self.incarnations
    }

    /// Kills and reaps the running incarnation if there is one; the
    /// orderly way to end a test. Errors are swallowed (the child may
    /// already be gone).
    pub fn shutdown(&mut self) {
        if let Some(child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The child's entire life: bind, serve attaches (fresh and reattach),
/// tick, reap, forever — until SIGKILL does it in. Exit codes are only
/// ever observed when setup fails (the supervisor's caller sees them via
/// [`ChildExit::Exited`]).
fn daemon_process(config: &SupervisorConfig, table: &KnobTable) -> i32 {
    let Ok(mut broker) = AttachBroker::bind(BrokerConfig::new(&config.socket_path)) else {
        return 10;
    };
    let Ok(mut daemon) = PowerDialDaemon::new(config.daemon) else {
        return 11;
    };
    let mut ladder = IdleLadder::new();
    loop {
        let served = broker.poll_accept(daemon.app_count(), |request| {
            let runtime = RuntimeConfig::new(ControllerConfig::new(
                config.target_rate,
                config.baseline_rate,
            )?);
            match request {
                AttachRequest::Fresh(consumer) => {
                    daemon.register_shm(runtime, table.clone(), consumer)
                }
                AttachRequest::Reattach(consumer) => {
                    daemon.register_shm_adopted(runtime, table.clone(), consumer)
                }
            }
        });
        let served = match served {
            Ok(outcome) => outcome.is_some(),
            Err(_) => return 12,
        };
        let beats = daemon.tick();
        daemon.reap_dead();
        if config.poll_interval > Duration::ZERO {
            std::thread::sleep(config.poll_interval);
        } else if served || beats > 0 {
            // Work arrived this iteration: stay hot for the next one.
            ladder.reset();
        } else {
            // Escalate spin → yield → park so an idle daemon stops
            // burning the core while staying quick to re-engage.
            ladder.idle();
        }
    }
}
