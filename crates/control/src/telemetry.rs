//! Daemon-side telemetry: per-application metric reports, fleet-wide
//! rollups, and the JSON snapshot document.
//!
//! The hot-path primitives live in [`powerdial_heartbeats::telemetry`]
//! (an allocation-free [`LatencyHistogram`] and a fixed-capacity
//! [`DecisionTraceRing`](powerdial_heartbeats::DecisionTraceRing)); this
//! module is everything *cold*: walking the shards, merging per-app
//! histograms into exact fleet rollups (bucket-wise add), and rendering
//! the whole thing as a JSON document. Rendering is hand-rolled — the
//! workspace's `serde` is a no-op API stub — and the output is pinned to
//! round-trip through the bench crate's strict JSON parser.
//!
//! # Snapshot schema
//!
//! [`TelemetrySnapshot::to_json`] renders the snapshot-document shape
//! (`version` / kind marker / report body) with per-app p50/p95/p99/max
//! and fleet-wide merged rollups:
//!
//! ```json
//! {
//!   "version": 1,
//!   "snapshot": "powerdial-telemetry",
//!   "ticks": 240,
//!   "total_beats": 4800,
//!   "apps_registered": 2,
//!   "apps": [
//!     {
//!       "app": 0,
//!       "beats": 2400,
//!       "beat_latency_ns": {
//!         "count": 2280, "min": 31000000, "max": 35651583,
//!         "mean": 33324561.4, "p50": 33554431, "p95": 35651583,
//!         "p99": 35651583
//!       },
//!       "qos_loss_ppm": {
//!         "count": 120, "min": 0, "max": 50175,
//!         "mean": 41812.5, "p50": 50175, "p95": 50175, "p99": 50175
//!       }
//!     }
//!   ],
//!   "fleet": {
//!     "beat_latency_ns": { "count": 4560, "...": "merged rollup" },
//!     "qos_loss_ppm": { "count": 240, "...": "merged rollup" }
//!   },
//!   "incidents": {
//!     "shard_deaths": 0, "shard_respawns": 0,
//!     "apps_migrated": 0, "quarantined_apps": 0
//!   },
//!   "decision_trace": [
//!     {
//!       "seq": 0, "timestamp_ns": 50000000, "app": 0, "point_idx": 1,
//!       "reason": "boundary", "gain": 2.0, "achieved_speedup": 2.0,
//!       "qos_loss": 0.05
//!     }
//!   ]
//! }
//! ```
//!
//! Latency histograms are in nanoseconds; QoS-loss histograms store the
//! controller's expected per-quantum QoS loss in **parts per million**
//! (a loss of 0.05 records as 50 000), so the integer-valued histogram
//! keeps four significant digits of a quantity that lives in `[0, 1]`.
//! Quantile fields are bucket upper bounds — within
//! [`LatencyHistogram::RELATIVE_ERROR`] (12.5%) of the true sample —
//! while `count`/`min`/`max` are exact, and fleet rollups are exact
//! bucket-wise merges of the per-app histograms (never averaged
//! percentiles).

use powerdial_heartbeats::telemetry::{DecisionTraceRecord, HistogramSummary, LatencyHistogram};

use crate::daemon::AppId;

/// Scale factor between a QoS-loss fraction and the integer ppm value
/// recorded in the QoS histograms.
pub const QOS_PPM_SCALE: f64 = 1_000_000.0;

/// Schema version of the JSON snapshot document.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Per-application telemetry as collected on a shard: the two hot-path
/// histograms plus the beat count. Owned copies — snapshotting clones
/// shard state off the drain path, so a snapshot never blocks or skews
/// the apps it describes.
#[derive(Debug, Clone)]
pub struct AppTelemetryReport {
    /// The application the report describes.
    pub app: AppId,
    /// Total beats the daemon has processed for this application.
    pub beats: u64,
    /// Per-beat latency distribution, nanoseconds.
    pub beat_latency_ns: LatencyHistogram,
    /// Per-quantum expected QoS loss, parts per million.
    pub qos_loss_ppm: LatencyHistogram,
}

/// Everything one shard hands back for a snapshot: its apps' reports
/// plus its slice of the decision trace.
#[derive(Debug, Clone, Default)]
pub struct ShardTelemetry {
    /// One report per application on the shard.
    pub apps: Vec<AppTelemetryReport>,
    /// The shard's decision-trace ring, oldest → newest.
    pub trace: Vec<DecisionTraceRecord>,
}

impl ShardTelemetry {
    /// True when the shard contributed nothing.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty() && self.trace.is_empty()
    }
}

/// Fault-containment incident counters, embedded in the snapshot's
/// `incidents` section. All lifetime counts except `quarantined_apps`,
/// which is the *current* number of parked-but-not-evicted apps (it
/// drops back as quarantined corpses are reaped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncidentCounts {
    /// Worker-thread deaths observed.
    pub shard_deaths: u64,
    /// Dead workers successfully resurrected.
    pub shard_respawns: u64,
    /// Apps migrated off dead shards.
    pub apps_migrated: u64,
    /// Apps currently quarantined.
    pub quarantined_apps: u64,
}

/// A complete telemetry snapshot of a daemon: per-app reports, exact
/// fleet-wide rollups, and the merged decision trace.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Ticks (actuation quanta) the daemon has run.
    pub ticks: u64,
    /// Beats processed across all ticks and apps.
    pub total_beats: u64,
    /// Per-application reports, ordered by app id.
    pub apps: Vec<AppTelemetryReport>,
    /// Fleet-wide beat-latency rollup: the bucket-wise merge of every
    /// app's histogram (exact, not an average of percentiles).
    pub fleet_latency_ns: LatencyHistogram,
    /// Fleet-wide QoS-loss rollup (ppm), merged the same way.
    pub fleet_qos_loss_ppm: LatencyHistogram,
    /// Decision trace across all shards, ordered by beat timestamp.
    pub trace: Vec<DecisionTraceRecord>,
    /// Fault-containment incident counters.
    pub incidents: IncidentCounts,
}

impl TelemetrySnapshot {
    /// Assembles a snapshot from per-shard contributions: sorts apps by
    /// id, merges the fleet rollups, and orders the combined trace by
    /// beat timestamp (sequence numbers only order within one shard).
    pub fn from_shards(
        ticks: u64,
        total_beats: u64,
        shards: Vec<ShardTelemetry>,
        incidents: IncidentCounts,
    ) -> Self {
        let mut apps = Vec::new();
        let mut trace = Vec::new();
        for shard in shards {
            apps.extend(shard.apps);
            trace.extend(shard.trace);
        }
        apps.sort_by_key(|report| report.app);
        trace.sort_by_key(|record| (record.timestamp.as_nanos(), record.app, record.seq));
        let mut fleet_latency_ns = LatencyHistogram::new();
        let mut fleet_qos_loss_ppm = LatencyHistogram::new();
        for report in &apps {
            fleet_latency_ns.merge_from(&report.beat_latency_ns);
            fleet_qos_loss_ppm.merge_from(&report.qos_loss_ppm);
        }
        TelemetrySnapshot {
            ticks,
            total_beats,
            apps,
            fleet_latency_ns,
            fleet_qos_loss_ppm,
            trace,
            incidents,
        }
    }

    /// Renders the snapshot as the JSON document described in the
    /// [module docs](self). The output parses under a strict JSON
    /// grammar (pinned by the bench crate's parser round-trip test);
    /// non-finite floats — impossible in normal operation — render as
    /// `0` rather than producing invalid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.apps.len() * 512 + self.trace.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {SNAPSHOT_VERSION},\n"));
        out.push_str("  \"snapshot\": \"powerdial-telemetry\",\n");
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"total_beats\": {},\n", self.total_beats));
        out.push_str(&format!("  \"apps_registered\": {},\n", self.apps.len()));
        out.push_str("  \"apps\": [");
        for (index, report) in self.apps.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"app\": {},\n", report.app.value()));
            out.push_str(&format!("      \"beats\": {},\n", report.beats));
            write_histogram(
                &mut out,
                "      ",
                "beat_latency_ns",
                &report.beat_latency_ns,
            );
            out.push_str(",\n");
            write_histogram(&mut out, "      ", "qos_loss_ppm", &report.qos_loss_ppm);
            out.push_str("\n    }");
        }
        if self.apps.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"fleet\": {\n");
        write_histogram(&mut out, "    ", "beat_latency_ns", &self.fleet_latency_ns);
        out.push_str(",\n");
        write_histogram(&mut out, "    ", "qos_loss_ppm", &self.fleet_qos_loss_ppm);
        out.push_str("\n  },\n");
        let IncidentCounts {
            shard_deaths,
            shard_respawns,
            apps_migrated,
            quarantined_apps,
        } = self.incidents;
        out.push_str(&format!(
            "  \"incidents\": {{ \"shard_deaths\": {shard_deaths}, \
             \"shard_respawns\": {shard_respawns}, \
             \"apps_migrated\": {apps_migrated}, \
             \"quarantined_apps\": {quarantined_apps} }},\n"
        ));
        out.push_str("  \"decision_trace\": [");
        for (index, record) in self.trace.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_trace_record(&mut out, record);
        }
        if self.trace.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push('}');
        out
    }
}

/// Writes one histogram summary as `"name": { ... }` (no trailing
/// comma/newline).
fn write_histogram(out: &mut String, indent: &str, name: &str, histogram: &LatencyHistogram) {
    let HistogramSummary {
        count,
        min,
        max,
        mean,
        p50,
        p95,
        p99,
    } = histogram.summary();
    out.push_str(&format!(
        "{indent}\"{name}\": {{ \"count\": {count}, \"min\": {min}, \"max\": {max}, \
         \"mean\": {}, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99} }}",
        json_f64(mean)
    ));
}

fn write_trace_record(out: &mut String, record: &DecisionTraceRecord) {
    out.push_str(&format!(
        "{{ \"seq\": {}, \"timestamp_ns\": {}, \"app\": {}, \"point_idx\": {}, \
         \"reason\": \"{}\", \"gain\": {}, \"achieved_speedup\": {}, \"qos_loss\": {} }}",
        record.seq,
        record.timestamp.as_nanos(),
        record.app,
        record.point_idx,
        record.reason.as_str(),
        json_f64(record.gain),
        json_f64(record.achieved_speedup),
        json_f64(record.qos_loss),
    ));
}

/// Formats an `f64` as a strict-JSON number. Rust's `Display` for
/// finite floats never emits `inf`/`NaN`/exponents, so the only guard
/// needed is mapping non-finite values (which a snapshot should never
/// contain) to `0`.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let rendered = format!("{value}");
        // `Display` omits the fraction for integral floats ("2"), which
        // is still a valid JSON number; keep it.
        rendered
    } else {
        String::from("0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_heartbeats::telemetry::TraceReason;
    use powerdial_heartbeats::Timestamp;

    fn report(app_value: u64, latencies: &[u64], qos_ppm: &[u64]) -> AppTelemetryReport {
        let mut beat_latency_ns = LatencyHistogram::new();
        for &v in latencies {
            beat_latency_ns.record(v);
        }
        let mut qos_loss_ppm = LatencyHistogram::new();
        for &v in qos_ppm {
            qos_loss_ppm.record(v);
        }
        AppTelemetryReport {
            app: AppId::from_raw(app_value),
            beats: latencies.len() as u64,
            beat_latency_ns,
            qos_loss_ppm,
        }
    }

    #[test]
    fn fleet_rollup_is_exact_merge() {
        let shards = vec![
            ShardTelemetry {
                apps: vec![report(1, &[100, 200], &[5])],
                trace: Vec::new(),
            },
            ShardTelemetry {
                apps: vec![report(0, &[300], &[7])],
                trace: Vec::new(),
            },
        ];
        let snapshot = TelemetrySnapshot::from_shards(3, 3, shards, IncidentCounts::default());
        // Sorted by app id.
        assert_eq!(snapshot.apps[0].app.value(), 0);
        assert_eq!(snapshot.apps[1].app.value(), 1);
        let mut expected = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            expected.record(v);
        }
        assert_eq!(snapshot.fleet_latency_ns, expected);
        assert_eq!(snapshot.fleet_qos_loss_ppm.count(), 2);
    }

    #[test]
    fn trace_is_ordered_by_timestamp_across_shards() {
        let rec = |ts: u64, app: u64| DecisionTraceRecord {
            timestamp: Timestamp::from_nanos(ts),
            app,
            reason: TraceReason::Boundary,
            ..DecisionTraceRecord::default()
        };
        let shards = vec![
            ShardTelemetry {
                apps: Vec::new(),
                trace: vec![rec(50, 1), rec(150, 1)],
            },
            ShardTelemetry {
                apps: Vec::new(),
                trace: vec![rec(100, 0)],
            },
        ];
        let snapshot = TelemetrySnapshot::from_shards(0, 0, shards, IncidentCounts::default());
        let order: Vec<u64> = snapshot
            .trace
            .iter()
            .map(|r| r.timestamp.as_nanos())
            .collect();
        assert_eq!(order, vec![50, 100, 150]);
    }

    #[test]
    fn json_f64_guards_non_finite() {
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(0.05), "0.05");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn empty_snapshot_renders_empty_arrays() {
        let snapshot = TelemetrySnapshot::from_shards(0, 0, Vec::new(), IncidentCounts::default());
        let json = snapshot.to_json();
        assert!(json.contains("\"apps\": []"));
        assert!(json.contains("\"decision_trace\": []"));
        assert!(json.contains("\"version\": 1"));
    }
}
