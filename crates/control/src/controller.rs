//! The heart-rate feedback controller (Equations 2–4 of the paper).

use serde::{Deserialize, Serialize};

use crate::error::ControlError;

/// Configuration of the [`HeartRateController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    target_rate: f64,
    base_speed: f64,
    min_speedup: f64,
    max_speedup: f64,
}

impl ControllerConfig {
    /// Creates a configuration with a target heart rate `g` and a baseline
    /// speed `b` (the heart rate the application achieves with all knobs at
    /// their default values), both in beats per second. The speedup is
    /// clamped to `[1, 1000]` by default; use
    /// [`ControllerConfig::with_speedup_range`] to change it.
    ///
    /// # Errors
    ///
    /// Returns an error when either rate is non-positive or not finite.
    pub fn new(target_rate: f64, base_speed: f64) -> Result<Self, ControlError> {
        if !target_rate.is_finite() || target_rate <= 0.0 {
            return Err(ControlError::InvalidTargetRate { rate: target_rate });
        }
        if !base_speed.is_finite() || base_speed <= 0.0 {
            return Err(ControlError::InvalidBaseSpeed { speed: base_speed });
        }
        Ok(ControllerConfig {
            target_rate,
            base_speed,
            min_speedup: 1.0,
            max_speedup: 1000.0,
        })
    }

    /// Restricts the speedup the controller may request.
    ///
    /// # Errors
    ///
    /// Returns an error when `min` is non-positive, not finite, or above
    /// `max`.
    pub fn with_speedup_range(mut self, min: f64, max: f64) -> Result<Self, ControlError> {
        if !min.is_finite() || !max.is_finite() || min <= 0.0 || min > max {
            return Err(ControlError::InvalidSpeedupRange { min, max });
        }
        self.min_speedup = min;
        self.max_speedup = max;
        Ok(self)
    }

    /// The target heart rate `g`.
    pub fn target_rate(&self) -> f64 {
        self.target_rate
    }

    /// The baseline speed `b`.
    pub fn base_speed(&self) -> f64 {
        self.base_speed
    }

    /// The smallest speedup the controller will request.
    pub fn min_speedup(&self) -> f64 {
        self.min_speedup
    }

    /// The largest speedup the controller will request.
    pub fn max_speedup(&self) -> f64 {
        self.max_speedup
    }
}

/// The integral heart-rate controller of the paper.
///
/// The controller models the application as `h(t+1) = b·s(t)` (Equation 2)
/// and computes the speedup to apply as
///
/// ```text
/// e(t) = g − h(t)                (Equation 3)
/// s(t) = s(t−1) + e(t) / b       (Equation 4)
/// ```
///
/// The closed loop has transfer function `1/z`: it converges to the target
/// in one step, with no oscillation (see [`crate::ztransform`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartRateController {
    config: ControllerConfig,
    speedup: f64,
    last_error: f64,
    updates: u64,
}

impl HeartRateController {
    /// Creates a controller starting at a speedup of 1 (all knobs at their
    /// default values).
    pub fn new(config: ControllerConfig) -> Self {
        HeartRateController {
            config,
            speedup: 1.0,
            last_error: 0.0,
            updates: 0,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The speedup currently being requested.
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// The error `e(t)` from the most recent update.
    pub fn last_error(&self) -> f64 {
        self.last_error
    }

    /// Number of updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Feeds one observation of the heart rate `h(t)` and returns the new
    /// speedup `s(t)` to apply, clamped to the configured range.
    pub fn update(&mut self, observed_rate: f64) -> f64 {
        let error = self.config.target_rate - observed_rate;
        self.last_error = error;
        self.speedup += error / self.config.base_speed;
        self.speedup = self
            .speedup
            .clamp(self.config.min_speedup, self.config.max_speedup);
        self.updates += 1;
        self.speedup
    }

    /// Changes the target heart rate without resetting the accumulated
    /// speedup (used when an operator re-targets a running application).
    pub fn set_target_rate(&mut self, target_rate: f64) -> Result<(), ControlError> {
        if !target_rate.is_finite() || target_rate <= 0.0 {
            return Err(ControlError::InvalidTargetRate { rate: target_rate });
        }
        self.config.target_rate = target_rate;
        Ok(())
    }

    /// Resets the controller to its initial state (speedup 1, no error).
    pub fn reset(&mut self) {
        self.speedup = 1.0;
        self.last_error = 0.0;
        self.updates = 0;
    }

    /// Restores the integrator state from a predecessor controller's
    /// exported speedup — the daemon-crash warm-start path. The value is
    /// clamped to this controller's configured range; a non-finite bit
    /// pattern (scribbled segment) is refused and the controller stays
    /// where it is.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidSpeedupRange`] when `speedup` is not
    /// finite.
    pub fn restore_speedup(&mut self, speedup: f64) -> Result<(), ControlError> {
        if !speedup.is_finite() {
            return Err(ControlError::InvalidSpeedupRange {
                min: speedup,
                max: speedup,
            });
        }
        self.speedup = speedup.clamp(self.config.min_speedup, self.config.max_speedup);
        Ok(())
    }

    /// Simulates the closed loop for `steps` iterations assuming the
    /// application responds exactly as the model predicts (`h(t+1) = b·s(t)`
    /// scaled by `capacity`), returning the observed heart rates. `capacity`
    /// models a platform delivering only a fraction of the baseline speed
    /// (0.67 for a 2.4 GHz machine capped to 1.6 GHz).
    pub fn simulate_response(&mut self, capacity: f64, steps: usize) -> Vec<f64> {
        let mut rates = Vec::with_capacity(steps);
        let mut observed = self.config.base_speed * capacity * self.speedup;
        for _ in 0..steps {
            rates.push(observed);
            let speedup = self.update(observed);
            observed = self.config.base_speed * capacity * speedup;
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(target: f64, base: f64) -> HeartRateController {
        HeartRateController::new(ControllerConfig::new(target, base).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(ControllerConfig::new(0.0, 1.0).is_err());
        assert!(ControllerConfig::new(1.0, -1.0).is_err());
        assert!(ControllerConfig::new(f64::NAN, 1.0).is_err());
        let config = ControllerConfig::new(30.0, 25.0).unwrap();
        assert_eq!(config.target_rate(), 30.0);
        assert_eq!(config.base_speed(), 25.0);
        assert!(config.with_speedup_range(2.0, 1.0).is_err());
        let clamped = ControllerConfig::new(30.0, 25.0)
            .unwrap()
            .with_speedup_range(1.0, 4.0)
            .unwrap();
        assert_eq!(clamped.max_speedup(), 4.0);
        assert_eq!(clamped.min_speedup(), 1.0);
    }

    #[test]
    fn on_target_observation_keeps_speedup_constant() {
        let mut c = controller(30.0, 30.0);
        let s = c.update(30.0);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(c.last_error(), 0.0);
        assert_eq!(c.updates(), 1);
    }

    #[test]
    fn slow_observation_increases_speedup() {
        let mut c = controller(30.0, 30.0);
        let s = c.update(20.0);
        // e = 10, s = 1 + 10/30 = 1.333…
        assert!((s - (1.0 + 10.0 / 30.0)).abs() < 1e-12);
        assert!((c.last_error() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fast_observation_decreases_speedup_but_not_below_minimum() {
        let mut c = controller(30.0, 30.0);
        c.update(20.0);
        let s = c.update(60.0);
        assert!(s >= 1.0, "speedup is clamped at the configured minimum");
    }

    #[test]
    fn speedup_is_clamped_to_configured_maximum() {
        let config = ControllerConfig::new(30.0, 30.0)
            .unwrap()
            .with_speedup_range(1.0, 2.0)
            .unwrap();
        let mut c = HeartRateController::new(config);
        for _ in 0..100 {
            c.update(1.0);
        }
        assert_eq!(c.speedup(), 2.0);
    }

    #[test]
    fn converges_geometrically_after_capacity_drop() {
        // When the platform delivers only a fraction `c` of the modeled
        // capacity, the closed-loop error contracts by (1 − c) each control
        // period: h(t+1) − g = (1 − c)(h(t) − g). With the model exact
        // (c = 1) this is the paper's one-step convergence.
        let capacity = 2.0 / 3.0;
        let mut c = controller(30.0, 30.0);
        let rates = c.simulate_response(capacity, 40);
        // First observation shows the dip...
        assert!(rates[0] < 30.0 * 0.7);
        // ...and the error contracts by the predicted ratio each step.
        for window in rates.windows(2) {
            let before = (window[0] - 30.0).abs();
            let after = (window[1] - 30.0).abs();
            assert!(after <= (1.0 - capacity) * before + 1e-9);
        }
        // After 40 periods the rate is back on target and the steady-state
        // speedup compensates exactly for the lost capacity.
        assert!((rates.last().unwrap() - 30.0).abs() < 1e-3);
        assert!((c.speedup() - 1.5).abs() < 1e-3);
    }

    #[test]
    fn converges_in_one_step_when_model_is_exact() {
        // Paper claim: with h(t+1) = b·s(t) (capacity 1) the closed loop has
        // a single pole at the origin and converges immediately.
        let mut c = controller(30.0, 30.0);
        let rates = c.simulate_response(1.0, 5);
        for rate in &rates {
            assert!((rate - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn convergence_holds_for_mismatched_base_speed_estimate() {
        // Even when b is over-estimated by 2x the integral controller still
        // converges (more slowly), a robustness property of the design.
        let mut c = HeartRateController::new(ControllerConfig::new(30.0, 60.0).unwrap());
        let rates = c.simulate_response(0.5, 60);
        let last = rates.last().unwrap();
        assert!(
            (last - 30.0).abs() < 0.5,
            "rate {last} should approach the target"
        );
    }

    #[test]
    fn restore_speedup_clamps_and_refuses_garbage() {
        let config = ControllerConfig::new(30.0, 30.0)
            .unwrap()
            .with_speedup_range(1.0, 4.0)
            .unwrap();
        let mut c = HeartRateController::new(config);
        c.restore_speedup(2.5).unwrap();
        assert_eq!(c.speedup(), 2.5);
        // Warm-start is bit-exact: the next on-model update matches a
        // controller that reached 2.5 by integrating.
        let mut reference = HeartRateController::new(config);
        reference.restore_speedup(2.5).unwrap();
        assert_eq!(c.update(20.0).to_bits(), reference.update(20.0).to_bits());
        // Out-of-range values clamp; garbage bit patterns are refused.
        c.restore_speedup(99.0).unwrap();
        assert_eq!(c.speedup(), 4.0);
        let before = c.speedup();
        assert!(c.restore_speedup(f64::NAN).is_err());
        assert!(c.restore_speedup(f64::INFINITY).is_err());
        assert_eq!(c.speedup(), before);
    }

    #[test]
    fn retargeting_and_reset() {
        let mut c = controller(30.0, 30.0);
        c.update(10.0);
        assert!(c.speedup() > 1.0);
        c.set_target_rate(15.0).unwrap();
        assert!(c.set_target_rate(-1.0).is_err());
        assert_eq!(c.config().target_rate(), 15.0);
        c.reset();
        assert_eq!(c.speedup(), 1.0);
        assert_eq!(c.updates(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under the paper's application model, the controller contracts the
        /// heart-rate error by (1 − capacity) each period, so after k periods
        /// the residual error is bounded by (1 − capacity)^k times the
        /// initial error.
        #[test]
        fn always_converges_under_model(
            target in 1.0f64..100.0,
            capacity in 0.05f64..1.0,
        ) {
            let steps = 50usize;
            let config = ControllerConfig::new(target, target).unwrap();
            let mut c = HeartRateController::new(config);
            let rates = c.simulate_response(capacity, steps);
            let initial_error = (rates[0] - target).abs();
            let final_error = (rates.last().unwrap() - target).abs();
            let bound = (1.0 - capacity).powi(steps as i32 - 1) * initial_error;
            prop_assert!(final_error <= bound + 1e-9 * target);
        }

        /// The speedup never leaves the configured clamp range.
        #[test]
        fn speedup_respects_clamps(
            observations in proptest::collection::vec(0.0f64..200.0, 1..100),
            max in 1.5f64..16.0,
        ) {
            let config = ControllerConfig::new(50.0, 50.0)
                .unwrap()
                .with_speedup_range(1.0, max)
                .unwrap();
            let mut c = HeartRateController::new(config);
            for h in observations {
                let s = c.update(h);
                prop_assert!(s >= 1.0 - 1e-12);
                prop_assert!(s <= max + 1e-12);
            }
        }
    }
}
