//! The PowerDial control system: feedback controller, Z-domain analysis,
//! actuator, and runtime.
//!
//! PowerDial keeps an application at its target heart rate by closing a
//! feedback loop around the Application Heartbeats signal:
//!
//! 1. the [`HeartRateController`] implements the integral control law of the
//!    paper (Equations 2–4): `e(t) = g − h(t)`, `s(t) = s(t−1) + e(t)/b`,
//!    where `g` is the target heart rate, `h(t)` the observed rate, and `b`
//!    the application's baseline speed;
//! 2. the [`ztransform`] module reproduces the paper's Z-domain analysis of
//!    the closed loop (unit steady-state gain, single pole at the origin,
//!    near-instant convergence);
//! 3. the [`Actuator`] converts the continuous speedup signal into a schedule
//!    of discrete knob settings over a time quantum (Equations 9–11), with
//!    either the race-to-idle or the minimal-speedup policy;
//! 4. the [`PowerDialRuntime`] ties the pieces together: feed it one call per
//!    heartbeat and apply the knob setting it returns.
//!
//! # Example
//!
//! ```
//! use powerdial_control::{ControllerConfig, HeartRateController};
//!
//! # fn main() -> Result<(), powerdial_control::ControlError> {
//! // Target 30 beats/s on an application whose baseline speed is 30 beats/s.
//! let config = ControllerConfig::new(30.0, 30.0)?;
//! let mut controller = HeartRateController::new(config);
//!
//! // The platform slows down: observed rate drops to 20 beats/s. The
//! // controller asks for more speedup.
//! let s1 = controller.update(20.0);
//! assert!(s1 > 1.0);
//! // Once the application is back on target the speedup stabilizes.
//! let s2 = controller.update(30.0);
//! assert!((s2 - s1).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod actuator;
mod controller;
mod error;
pub mod naive;
mod runtime;
pub mod ztransform;

pub use actuator::{
    ActuationPolicy, Actuator, CompactSchedule, PlanSegment, Schedule, ScheduleSegment,
    MAX_PLAN_SEGMENTS,
};
pub use controller::{ControllerConfig, HeartRateController};
pub use error::ControlError;
pub use runtime::{
    IndexedDecision, PowerDialRuntime, RuntimeConfig, RuntimeDecision, DEFAULT_QUANTUM_HEARTBEATS,
};
