//! The PowerDial control system: feedback controller, Z-domain analysis,
//! actuator, and runtime.
//!
//! PowerDial keeps an application at its target heart rate by closing a
//! feedback loop around the Application Heartbeats signal:
//!
//! 1. the [`HeartRateController`] implements the integral control law of the
//!    paper (Equations 2–4): `e(t) = g − h(t)`, `s(t) = s(t−1) + e(t)/b`,
//!    where `g` is the target heart rate, `h(t)` the observed rate, and `b`
//!    the application's baseline speed;
//! 2. the [`ztransform`] module reproduces the paper's Z-domain analysis of
//!    the closed loop (unit steady-state gain, single pole at the origin,
//!    near-instant convergence);
//! 3. the [`Actuator`] converts the continuous speedup signal into a schedule
//!    of discrete knob settings over a time quantum (Equations 9–11), with
//!    either the race-to-idle or the minimal-speedup policy;
//! 4. the [`PowerDialRuntime`] ties the pieces together: feed it one call per
//!    heartbeat and apply the knob setting it returns;
//! 5. the [`daemon`] module scales the loop to many applications: a
//!    [`PowerDialDaemon`] drives one runtime per registered app from a pool
//!    of sharded worker threads.
//!
//! # Channels and the multi-app daemon
//!
//! A single control loop costs tens of nanoseconds per heartbeat; serving
//! thousands of applications from one daemon is therefore a *plumbing*
//! problem, not a compute problem. The architecture keeps the plumbing off
//! the hot path:
//!
//! * **Beat transport** — each application owns the producer half of a
//!   lock-free SPSC ring ([`powerdial_heartbeats::channel`]). Emitting a
//!   beat is one slot write plus one release store: wait-free, no locks, no
//!   allocation, no syscalls, so instrumentation cannot perturb the
//!   application being controlled (the framework's founding constraint).
//! * **Sharding** — registered apps are distributed round-robin over worker
//!   threads; each worker owns its apps exclusively (a [`DaemonShard`]), so
//!   workers share no mutable state and need no synchronization with each
//!   other.
//! * **Batched actuation** — once per actuation quantum
//!   ([`PowerDialDaemon::tick`]) each shard drains every channel in one
//!   batch into a reused scratch buffer and steps the O(1)
//!   [`PowerDialRuntime`] once per drained beat. The cross-core cost (one
//!   acquire/release pair per channel) is paid per quantum, not per beat,
//!   which is exactly the batching the paper's 20-heartbeat actuation
//!   quantum licenses.
//! * **Decision return** — the latest knob setting, gain, achieved speedup,
//!   and expected QoS loss are published through per-app atomics; the
//!   application reads them lock-free whenever it is ready to reconfigure.
//!
//! The per-quantum drain loop is steady-state allocation-free (enforced by
//! the `daemon_no_alloc` integration test), and the mutex-guarded serial
//! baseline in [`daemon::naive`] shares the control code so the `multiapp`
//! benchmark isolates the cost of the transport alone.
//!
//! # Example
//!
//! ```
//! use powerdial_control::{ControllerConfig, HeartRateController};
//!
//! # fn main() -> Result<(), powerdial_control::ControlError> {
//! // Target 30 beats/s on an application whose baseline speed is 30 beats/s.
//! let config = ControllerConfig::new(30.0, 30.0)?;
//! let mut controller = HeartRateController::new(config);
//!
//! // The platform slows down: observed rate drops to 20 beats/s. The
//! // controller asks for more speedup.
//! let s1 = controller.update(20.0);
//! assert!(s1 > 1.0);
//! // Once the application is back on target the speedup stabilizes.
//! let s2 = controller.update(30.0);
//! assert!((s2 - s1).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod actuator;
#[cfg(target_os = "linux")]
pub mod broker;
mod controller;
pub mod daemon;
mod dvfs;
mod error;
pub mod naive;
mod runtime;
#[cfg(target_os = "linux")]
pub mod supervisor;
pub mod telemetry;
pub mod ztransform;

pub use actuator::{
    ActuationPolicy, Actuator, CompactSchedule, PlanSegment, Schedule, ScheduleSegment,
    MAX_PLAN_SEGMENTS,
};
#[cfg(target_os = "linux")]
pub use broker::{AttachBroker, AttachOutcome, AttachRequest, BrokerConfig, BrokerError};
pub use controller::{ControllerConfig, HeartRateController};
pub use daemon::{
    AppHandle, AppId, DaemonConfig, DaemonShard, DecisionView, IdleLadder, LadderRung,
    PowerDialDaemon, QuarantineReason,
};
pub use dvfs::DvfsActuator;
pub use error::ControlError;
pub use runtime::{
    IndexedDecision, PowerDialRuntime, RuntimeConfig, RuntimeDecision, DEFAULT_QUANTUM_HEARTBEATS,
};
#[cfg(target_os = "linux")]
pub use supervisor::{Supervisor, SupervisorConfig};
pub use telemetry::{AppTelemetryReport, IncidentCounts, ShardTelemetry, TelemetrySnapshot};
