//! The pre-optimization runtime, kept as a reference baseline.
//!
//! [`NaivePowerDialRuntime`] is the clone-based implementation
//! [`crate::PowerDialRuntime`] replaced — **a verbatim copy, not a
//! delegation**: the planner below is the original `Actuator::plan` body
//! (clone-based `Schedule` construction), so the equivalence property
//! tests genuinely pin the new index-based planner *and* expansion against
//! the pre-optimization code, rather than comparing two views of the same
//! implementation. Every quantum it clones [`CalibrationPoint`]s (each
//! owning a heap-allocated parameter setting) into four fresh `Vec`s, and
//! every heartbeat clones the decided point into the returned
//! [`RuntimeDecision`]. It exists for two reasons:
//!
//! * the equivalence property tests assert the index-based runtime plans
//!   **beat-for-beat identical** schedules to this one;
//! * the `powerdial-bench` hot-path benchmarks measure the speedup of the
//!   index-based runtime against it.
//!
//! Do not use it outside tests and benchmarks.

use powerdial_knobs::{CalibrationPoint, KnobTable};

use crate::actuator::{ActuationPolicy, Schedule, ScheduleSegment};
use crate::controller::HeartRateController;
use crate::error::ControlError;
use crate::runtime::{RuntimeConfig, RuntimeDecision};

/// The original clone-based planner, preserved verbatim from the
/// pre-optimization `Actuator` (minimal-speedup and race-to-idle policies).
/// Public so the actuator's equivalence tests can pin the new index-based
/// planner against it directly.
pub fn plan(policy: ActuationPolicy, table: &KnobTable, requested_speedup: f64) -> Schedule {
    let requested = requested_speedup.max(0.0);
    match policy {
        ActuationPolicy::RaceToIdle => plan_race_to_idle(table, requested),
        ActuationPolicy::MinimalSpeedup => plan_minimal_speedup(table, requested),
    }
}

fn plan_race_to_idle(table: &KnobTable, requested: f64) -> Schedule {
    let fastest = table.fastest().clone();
    let s_max = fastest.speedup;
    // s_max · t_max = requested  =>  t_max = requested / s_max.
    let t_max = (requested / s_max).min(1.0);
    let achieved = s_max * t_max;
    Schedule {
        segments: vec![ScheduleSegment {
            point: fastest,
            fraction: t_max,
        }],
        idle_fraction: 1.0 - t_max,
        achieved_speedup: if t_max < 1.0 { requested } else { achieved },
        requested_speedup: requested,
    }
}

fn plan_minimal_speedup(table: &KnobTable, requested: f64) -> Schedule {
    let baseline = table.baseline().clone();
    if requested <= baseline.speedup {
        // The default setting already meets the target: run it all quantum.
        return Schedule {
            segments: vec![ScheduleSegment {
                point: baseline,
                fraction: 1.0,
            }],
            idle_fraction: 0.0,
            achieved_speedup: 1.0,
            requested_speedup: requested,
        };
    }
    match table.iter().find(|p| p.speedup >= requested) {
        Some(point) => {
            let s_min = point.speedup;
            // s_min·t_min + 1·t_default = requested, t_min + t_default = 1
            //   =>  t_min = (requested − 1) / (s_min − 1).
            let t_min = if s_min > baseline.speedup {
                ((requested - baseline.speedup) / (s_min - baseline.speedup)).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let t_default = 1.0 - t_min;
            let achieved = s_min * t_min + baseline.speedup * t_default;
            let mut segments = Vec::with_capacity(2);
            if t_min > 0.0 {
                segments.push(ScheduleSegment {
                    point: point.clone(),
                    fraction: t_min,
                });
            }
            if t_default > 0.0 {
                segments.push(ScheduleSegment {
                    point: baseline,
                    fraction: t_default,
                });
            }
            Schedule {
                segments,
                idle_fraction: 0.0,
                achieved_speedup: achieved,
                requested_speedup: requested,
            }
        }
        None => {
            // Saturate at the fastest setting.
            let fastest = table.fastest().clone();
            let achieved = fastest.speedup;
            Schedule {
                segments: vec![ScheduleSegment {
                    point: fastest,
                    fraction: 1.0,
                }],
                idle_fraction: 0.0,
                achieved_speedup: achieved,
                requested_speedup: requested,
            }
        }
    }
}

/// The clone-per-beat, allocate-per-quantum runtime (reference baseline).
#[derive(Debug, Clone)]
pub struct NaivePowerDialRuntime {
    controller: HeartRateController,
    policy: ActuationPolicy,
    table: KnobTable,
    quantum: u32,
    beat_in_quantum: u32,
    per_beat_points: Vec<CalibrationPoint>,
    current_schedule: Option<Schedule>,
    quanta_planned: u64,
}

impl NaivePowerDialRuntime {
    /// Creates a naive runtime from the same inputs as the optimized one.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroQuantum`] when the configured quantum is
    /// zero heartbeats.
    pub fn new(config: RuntimeConfig, table: KnobTable) -> Result<Self, ControlError> {
        if config.quantum_heartbeats == 0 {
            return Err(ControlError::ZeroQuantum);
        }
        Ok(NaivePowerDialRuntime {
            controller: HeartRateController::new(config.controller),
            policy: config.policy,
            table,
            quantum: config.quantum_heartbeats,
            beat_in_quantum: 0,
            per_beat_points: Vec::new(),
            current_schedule: None,
            quanta_planned: 0,
        })
    }

    /// Number of quanta planned so far.
    pub fn quanta_planned(&self) -> u64 {
        self.quanta_planned
    }

    /// The per-heartbeat points planned for the current quantum (for the
    /// equivalence tests against the index-based runtime).
    pub fn planned_beat_points(&self) -> &[CalibrationPoint] {
        &self.per_beat_points
    }

    /// One heartbeat step, exactly as the pre-optimization runtime did it.
    pub fn on_heartbeat(&mut self, observed_rate: Option<f64>) -> RuntimeDecision {
        if self.beat_in_quantum == 0 {
            self.plan_quantum(observed_rate);
        }
        let index = self.beat_in_quantum as usize;
        let point = self
            .per_beat_points
            .get(index)
            .cloned()
            .unwrap_or_else(|| self.table.baseline().clone());

        self.beat_in_quantum += 1;
        if self.beat_in_quantum >= self.quantum {
            self.beat_in_quantum = 0;
        }

        let schedule = self
            .current_schedule
            .as_ref()
            .expect("schedule exists after planning");
        RuntimeDecision {
            gain: point.speedup,
            planned_idle_fraction: schedule.idle_fraction,
            requested_speedup: schedule.requested_speedup,
            point,
        }
    }

    fn plan_quantum(&mut self, observed_rate: Option<f64>) {
        let observed = observed_rate.unwrap_or_else(|| self.controller.config().target_rate());
        let requested = self.controller.update(observed);
        let schedule = plan(self.policy, &self.table, requested);

        let beats_per_segment = schedule.beats_per_segment(self.quantum);
        let mut remaining: Vec<(CalibrationPoint, u32)> = beats_per_segment
            .iter()
            .map(|(point, beats)| ((*point).clone(), *beats))
            .collect();
        let totals: Vec<f64> = remaining
            .iter()
            .map(|(_, beats)| f64::from(*beats))
            .collect();
        let busy_beats: u32 = remaining.iter().map(|(_, beats)| *beats).sum();

        let mut per_beat: Vec<CalibrationPoint> = Vec::with_capacity(self.quantum as usize);
        let mut assigned: Vec<f64> = vec![0.0; remaining.len()];
        for beat in 0..busy_beats {
            let progress = f64::from(beat + 1) / f64::from(busy_beats.max(1));
            let mut best = None;
            let mut best_deficit = f64::NEG_INFINITY;
            for (index, (_, left)) in remaining.iter().enumerate() {
                if *left == 0 {
                    continue;
                }
                let deficit = totals[index] * progress - assigned[index];
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = Some(index);
                }
            }
            let index = best.expect("at least one segment has beats left");
            per_beat.push(remaining[index].0.clone());
            assigned[index] += 1.0;
            remaining[index].1 -= 1;
        }
        let filler = per_beat
            .first()
            .cloned()
            .unwrap_or_else(|| self.table.fastest().clone());
        while per_beat.len() < self.quantum as usize {
            per_beat.push(filler.clone());
        }

        self.per_beat_points = per_beat;
        self.current_schedule = Some(schedule);
        self.quanta_planned += 1;
    }
}
