//! The actuator: converting a continuous speedup signal into a schedule of
//! discrete knob settings over a time quantum (Section 2.3.3).

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_knobs::{CalibrationPoint, KnobTable, PointIdx};

use crate::error::ControlError;

/// The largest number of segments any actuation policy produces: the
/// minimal-speedup policy mixes at most `s_min` with the default setting;
/// race-to-idle uses a single segment. Compact schedules exploit this bound
/// to live entirely on the stack.
pub const MAX_PLAN_SEGMENTS: usize = 2;

/// How the actuator resolves the under-determined system of Equations 9–11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ActuationPolicy {
    /// Run at the fastest available knob setting for part of the quantum and
    /// idle for the rest (`t_min = t_default = 0`). Best for platforms with
    /// low idle power.
    RaceToIdle,
    /// Run at the slowest knob setting that still meets the heart-rate target
    /// for part of the quantum and at the default setting for the rest
    /// (`t_max = 0`, `t_min + t_default = 1`). Minimizes QoS loss; best for
    /// platforms with high idle power. This is the paper's default.
    #[default]
    MinimalSpeedup,
}

impl fmt::Display for ActuationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActuationPolicy::RaceToIdle => write!(f, "race-to-idle"),
            ActuationPolicy::MinimalSpeedup => write!(f, "minimal-speedup"),
        }
    }
}

/// One segment of a schedule: run with `point`'s knob setting for `fraction`
/// of the time quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSegment {
    /// The calibrated knob setting to apply.
    pub point: CalibrationPoint,
    /// The fraction of the quantum to spend at this setting, in `[0, 1]`.
    pub fraction: f64,
}

/// The actuator's plan for one time quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The knob settings to run and for what fraction of the quantum.
    pub segments: Vec<ScheduleSegment>,
    /// Fraction of the quantum the application may idle (race-to-idle only).
    pub idle_fraction: f64,
    /// The average speedup the schedule achieves over the quantum.
    pub achieved_speedup: f64,
    /// The speedup the controller requested.
    pub requested_speedup: f64,
}

impl Schedule {
    /// The mean QoS loss over the quantum implied by the schedule (idle time
    /// produces no output and therefore contributes no loss).
    pub fn expected_qos_loss(&self) -> f64 {
        let busy: f64 = self.segments.iter().map(|s| s.fraction).sum();
        if busy <= 0.0 {
            return 0.0;
        }
        // Weight each segment's loss by the fraction of *output* it produces:
        // a segment running at speedup s for fraction t produces s·t units of
        // output relative to the baseline.
        let total_output: f64 = self
            .segments
            .iter()
            .map(|s| s.fraction * s.point.speedup)
            .sum();
        if total_output <= 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .map(|s| s.fraction * s.point.speedup * s.point.qos_loss.value())
            .sum::<f64>()
            / total_output
    }

    /// True when the schedule meets or exceeds the requested speedup
    /// (within floating-point tolerance).
    pub fn meets_request(&self) -> bool {
        self.achieved_speedup + 1e-9 >= self.requested_speedup
    }

    /// Splits the quantum's `heartbeats` (work units) among the segments.
    ///
    /// The schedule's fractions are fractions of *time*; a segment running at
    /// speedup `s` for a fraction `t` of the quantum processes a share of the
    /// quantum's work units proportional to `s·t`. All heartbeats are
    /// allocated — under race-to-idle the application still processes every
    /// unit (at the fastest setting), it just finishes early and the machine
    /// idles for the remaining time.
    pub fn beats_per_segment(&self, heartbeats: u32) -> Vec<(&CalibrationPoint, u32)> {
        let weights: Vec<f64> = self
            .segments
            .iter()
            .map(|s| s.fraction * s.point.speedup)
            .collect();
        let total: f64 = weights.iter().sum();
        let mut allocation = Vec::with_capacity(self.segments.len());
        if total <= 0.0 {
            for (i, segment) in self.segments.iter().enumerate() {
                allocation.push((&segment.point, if i == 0 { heartbeats } else { 0 }));
            }
            return allocation;
        }
        let mut allocated = 0u32;
        for (i, segment) in self.segments.iter().enumerate() {
            let beats = if i + 1 == self.segments.len() {
                heartbeats.saturating_sub(allocated)
            } else {
                ((f64::from(heartbeats) * weights[i] / total).round() as u32)
                    .min(heartbeats.saturating_sub(allocated))
            };
            allocated += beats;
            allocation.push((&segment.point, beats));
        }
        allocation
    }
}

/// One segment of a [`CompactSchedule`]: run the knob setting at `idx` for
/// `fraction` of the time quantum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanSegment {
    /// Index of the calibrated knob setting in the planning [`KnobTable`].
    pub idx: PointIdx,
    /// The fraction of the quantum to spend at this setting, in `[0, 1]`.
    pub fraction: f64,
}

/// The actuator's plan for one time quantum, in index form.
///
/// Semantically identical to [`Schedule`] but `Copy` and allocation-free:
/// segments are `(PointIdx, fraction)` pairs in a fixed inline array instead
/// of cloned [`CalibrationPoint`]s in a `Vec`. This is what the hot path
/// ([`crate::PowerDialRuntime::on_heartbeat_idx`]) plans with; resolve
/// indices through the [`KnobTable`] the plan was made against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompactSchedule {
    segments: [PlanSegment; MAX_PLAN_SEGMENTS],
    segment_count: u8,
    /// Fraction of the quantum the application may idle (race-to-idle only).
    pub idle_fraction: f64,
    /// The average speedup the schedule achieves over the quantum.
    pub achieved_speedup: f64,
    /// The speedup the controller requested.
    pub requested_speedup: f64,
}

impl CompactSchedule {
    fn new(requested_speedup: f64) -> Self {
        CompactSchedule {
            segments: [PlanSegment {
                idx: PointIdx::new(0),
                fraction: 0.0,
            }; MAX_PLAN_SEGMENTS],
            segment_count: 0,
            idle_fraction: 0.0,
            achieved_speedup: 0.0,
            requested_speedup,
        }
    }

    fn push_segment(&mut self, idx: PointIdx, fraction: f64) {
        let count = usize::from(self.segment_count);
        debug_assert!(count < MAX_PLAN_SEGMENTS, "compact schedule overflow");
        self.segments[count] = PlanSegment { idx, fraction };
        self.segment_count += 1;
    }

    /// The planned segments, in planning order.
    pub fn segments(&self) -> &[PlanSegment] {
        &self.segments[..usize::from(self.segment_count)]
    }

    /// True when the schedule meets or exceeds the requested speedup
    /// (within floating-point tolerance).
    pub fn meets_request(&self) -> bool {
        self.achieved_speedup + 1e-9 >= self.requested_speedup
    }

    /// The mean QoS loss over the quantum implied by the schedule, resolved
    /// against the table the plan was made from. Matches
    /// [`Schedule::expected_qos_loss`].
    pub fn expected_qos_loss(&self, table: &KnobTable) -> f64 {
        let busy: f64 = self.segments().iter().map(|s| s.fraction).sum();
        if busy <= 0.0 {
            return 0.0;
        }
        let total_output: f64 = self
            .segments()
            .iter()
            .map(|s| s.fraction * table.speedup_of(s.idx))
            .sum();
        if total_output <= 0.0 {
            return 0.0;
        }
        self.segments()
            .iter()
            .map(|s| {
                let point = table.point(s.idx);
                s.fraction * point.speedup * point.qos_loss.value()
            })
            .sum::<f64>()
            / total_output
    }

    /// Splits the quantum's `heartbeats` among the segments, writing
    /// `(index, beats)` pairs into `out` and returning the number of entries
    /// used. Allocation-free equivalent of [`Schedule::beats_per_segment`]
    /// (identical rounding, so the two produce beat-for-beat equal splits).
    pub fn beats_per_segment_into(
        &self,
        heartbeats: u32,
        table: &KnobTable,
        out: &mut [(PointIdx, u32); MAX_PLAN_SEGMENTS],
    ) -> usize {
        let segments = self.segments();
        let mut weights = [0.0f64; MAX_PLAN_SEGMENTS];
        let mut total = 0.0;
        for (i, segment) in segments.iter().enumerate() {
            weights[i] = segment.fraction * table.speedup_of(segment.idx);
            total += weights[i];
        }
        if total <= 0.0 {
            for (i, segment) in segments.iter().enumerate() {
                out[i] = (segment.idx, if i == 0 { heartbeats } else { 0 });
            }
            return segments.len();
        }
        let mut allocated = 0u32;
        for (i, segment) in segments.iter().enumerate() {
            let beats = if i + 1 == segments.len() {
                heartbeats.saturating_sub(allocated)
            } else {
                ((f64::from(heartbeats) * weights[i] / total).round() as u32)
                    .min(heartbeats.saturating_sub(allocated))
            };
            allocated += beats;
            out[i] = (segment.idx, beats);
        }
        segments.len()
    }

    /// Expands the compact plan into the clone-based [`Schedule`] form
    /// (identical field for field); for reporting paths, not the hot path.
    pub fn to_schedule(&self, table: &KnobTable) -> Schedule {
        Schedule {
            segments: self
                .segments()
                .iter()
                .map(|s| ScheduleSegment {
                    point: table.point(s.idx).clone(),
                    fraction: s.fraction,
                })
                .collect(),
            idle_fraction: self.idle_fraction,
            achieved_speedup: self.achieved_speedup,
            requested_speedup: self.requested_speedup,
        }
    }
}

/// Converts controller speedups into knob-setting schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actuator {
    policy: ActuationPolicy,
}

impl Actuator {
    /// Creates an actuator with the given policy.
    pub fn new(policy: ActuationPolicy) -> Self {
        Actuator { policy }
    }

    /// The actuation policy in use.
    pub fn policy(&self) -> ActuationPolicy {
        self.policy
    }

    /// Plans the next quantum: find knob settings whose time-weighted average
    /// speedup equals `requested_speedup`.
    ///
    /// When even the fastest knob setting cannot deliver the requested
    /// speedup, the schedule saturates at the fastest setting for the whole
    /// quantum (and [`Schedule::meets_request`] reports `false`).
    ///
    /// This is the clone-based convenience form; the hot path uses
    /// [`Actuator::plan_compact`], of which this is an exact expansion.
    pub fn plan(&self, table: &KnobTable, requested_speedup: f64) -> Schedule {
        self.plan_compact(table, requested_speedup)
            .to_schedule(table)
    }

    /// Plans the next quantum in index form: O(log n) in the table size,
    /// no heap allocation, `Copy` result. Semantics are identical to
    /// [`Actuator::plan`].
    pub fn plan_compact(&self, table: &KnobTable, requested_speedup: f64) -> CompactSchedule {
        let requested = requested_speedup.max(0.0);
        match self.policy {
            ActuationPolicy::RaceToIdle => self.plan_race_to_idle(table, requested),
            ActuationPolicy::MinimalSpeedup => self.plan_minimal_speedup(table, requested),
        }
    }

    /// Plans the next quantum, returning an error when the requested speedup
    /// is unattainable instead of saturating.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::SpeedupUnattainable`] when the fastest setting
    /// cannot deliver the requested speedup.
    pub fn try_plan(
        &self,
        table: &KnobTable,
        requested_speedup: f64,
    ) -> Result<Schedule, ControlError> {
        if requested_speedup > table.max_speedup() {
            return Err(ControlError::SpeedupUnattainable {
                requested: requested_speedup,
                available: table.max_speedup(),
            });
        }
        Ok(self.plan(table, requested_speedup))
    }

    fn plan_race_to_idle(&self, table: &KnobTable, requested: f64) -> CompactSchedule {
        let fastest = table.fastest_idx();
        let s_max = table.speedup_of(fastest);
        // s_max · t_max = requested  =>  t_max = requested / s_max.
        let t_max = (requested / s_max).min(1.0);
        let achieved = s_max * t_max;
        let mut schedule = CompactSchedule::new(requested);
        schedule.push_segment(fastest, t_max);
        schedule.idle_fraction = 1.0 - t_max;
        schedule.achieved_speedup = if t_max < 1.0 { requested } else { achieved };
        schedule
    }

    fn plan_minimal_speedup(&self, table: &KnobTable, requested: f64) -> CompactSchedule {
        let baseline = table.baseline_idx();
        let baseline_speedup = table.speedup_of(baseline);
        let mut schedule = CompactSchedule::new(requested);
        if requested <= baseline_speedup {
            // The default setting already meets the target: run it all
            // quantum.
            schedule.push_segment(baseline, 1.0);
            schedule.achieved_speedup = 1.0;
            return schedule;
        }
        match table.idx_for_speedup(requested) {
            Some(point) => {
                let s_min = table.speedup_of(point);
                // s_min·t_min + 1·t_default = requested, t_min + t_default = 1
                //   =>  t_min = (requested − 1) / (s_min − 1).
                let t_min = if s_min > baseline_speedup {
                    ((requested - baseline_speedup) / (s_min - baseline_speedup)).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let t_default = 1.0 - t_min;
                if t_min > 0.0 {
                    schedule.push_segment(point, t_min);
                }
                if t_default > 0.0 {
                    schedule.push_segment(baseline, t_default);
                }
                schedule.achieved_speedup = s_min * t_min + baseline_speedup * t_default;
                schedule
            }
            None => {
                // Saturate at the fastest setting.
                let fastest = table.fastest_idx();
                schedule.push_segment(fastest, 1.0);
                schedule.achieved_speedup = table.speedup_of(fastest);
                schedule
            }
        }
    }
}

impl Default for Actuator {
    fn default() -> Self {
        Actuator::new(ActuationPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_knobs::{ConfigParameter, KnobTable, ParameterSpace};
    use powerdial_qos::{QosLoss, QosLossBound};

    /// Builds a knob table with speedups 1, 2, 4 and losses 0, 5 %, 10 %.
    fn test_table() -> KnobTable {
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", vec![0.0, 1.0, 2.0], 0.0).unwrap())
            .build()
            .unwrap();
        let specs = [(0usize, 1.0, 0.0), (1, 2.0, 0.05), (2, 4.0, 0.10)];
        let points = specs
            .iter()
            .map(|(i, speedup, loss)| CalibrationPoint {
                setting_index: *i,
                setting: space.setting(*i).unwrap(),
                speedup: *speedup,
                qos_loss: QosLoss::new(*loss),
            })
            .collect();
        KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
    }

    #[test]
    fn paper_example_speedup_1_5_with_smallest_knob_2() {
        // Section 2.3.3: controller wants 1.5, smallest available speedup is
        // 2 -> run half the quantum at 2 and half at the default.
        let table = test_table();
        let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);
        let schedule = actuator.plan(&table, 1.5);
        assert_eq!(schedule.segments.len(), 2);
        assert!((schedule.segments[0].fraction - 0.5).abs() < 1e-12);
        assert!((schedule.segments[0].point.speedup - 2.0).abs() < 1e-12);
        assert!((schedule.segments[1].fraction - 0.5).abs() < 1e-12);
        assert!((schedule.segments[1].point.speedup - 1.0).abs() < 1e-12);
        assert!((schedule.achieved_speedup - 1.5).abs() < 1e-12);
        assert_eq!(schedule.idle_fraction, 0.0);
        assert!(schedule.meets_request());
    }

    #[test]
    fn minimal_speedup_uses_default_when_no_speedup_needed() {
        let table = test_table();
        let actuator = Actuator::default();
        assert_eq!(actuator.policy(), ActuationPolicy::MinimalSpeedup);
        let schedule = actuator.plan(&table, 0.8);
        assert_eq!(schedule.segments.len(), 1);
        assert!((schedule.segments[0].point.speedup - 1.0).abs() < 1e-12);
        assert!((schedule.segments[0].fraction - 1.0).abs() < 1e-12);
        assert_eq!(schedule.expected_qos_loss(), 0.0);
    }

    #[test]
    fn minimal_speedup_exact_match_runs_single_setting() {
        let table = test_table();
        let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);
        let schedule = actuator.plan(&table, 2.0);
        assert_eq!(schedule.segments.len(), 1);
        assert!((schedule.segments[0].point.speedup - 2.0).abs() < 1e-12);
        assert!((schedule.achieved_speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn race_to_idle_runs_fastest_and_idles() {
        let table = test_table();
        let actuator = Actuator::new(ActuationPolicy::RaceToIdle);
        let schedule = actuator.plan(&table, 2.0);
        assert_eq!(schedule.segments.len(), 1);
        assert!((schedule.segments[0].point.speedup - 4.0).abs() < 1e-12);
        assert!((schedule.segments[0].fraction - 0.5).abs() < 1e-12);
        assert!((schedule.idle_fraction - 0.5).abs() < 1e-12);
        assert!(schedule.meets_request());
    }

    #[test]
    fn unattainable_speedup_saturates_or_errors() {
        let table = test_table();
        let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);
        let schedule = actuator.plan(&table, 8.0);
        assert!((schedule.achieved_speedup - 4.0).abs() < 1e-12);
        assert!(!schedule.meets_request());
        assert!(matches!(
            actuator.try_plan(&table, 8.0),
            Err(ControlError::SpeedupUnattainable { .. })
        ));
        assert!(actuator.try_plan(&table, 3.0).is_ok());

        let race = Actuator::new(ActuationPolicy::RaceToIdle).plan(&table, 8.0);
        assert!((race.achieved_speedup - 4.0).abs() < 1e-12);
        assert_eq!(race.idle_fraction, 0.0);
    }

    #[test]
    fn expected_qos_loss_weights_by_output() {
        let table = test_table();
        let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);
        let schedule = actuator.plan(&table, 1.5);
        // Half the time at speedup 2 (loss 5 %), half at 1 (loss 0). Output
        // shares: 2·0.5 = 1 vs 1·0.5 = 0.5 -> weighted loss = 0.05·(1/1.5).
        let expected = 0.05 * (1.0 / 1.5);
        assert!((schedule.expected_qos_loss() - expected).abs() < 1e-12);
    }

    #[test]
    fn beats_per_segment_partitions_the_quantum() {
        let table = test_table();
        let actuator = Actuator::new(ActuationPolicy::MinimalSpeedup);
        let schedule = actuator.plan(&table, 1.5);
        let beats = schedule.beats_per_segment(20);
        let total: u32 = beats.iter().map(|(_, b)| *b).sum();
        assert_eq!(total, 20);
        // Half the *time* at speedup 2 and half at 1 means two thirds of the
        // *work units* run at speedup 2: 2·0.5 / 1.5 of 20 beats ≈ 13.
        assert_eq!(beats[0].1, 13);
        assert_eq!(beats[1].1, 7);

        // Under race-to-idle every unit runs at the fastest setting; the idle
        // portion is time, not beats.
        let race = Actuator::new(ActuationPolicy::RaceToIdle).plan(&table, 2.0);
        let race_beats = race.beats_per_segment(20);
        let busy: u32 = race_beats.iter().map(|(_, b)| *b).sum();
        assert_eq!(busy, 20);
        assert_eq!(race_beats[0].1, 20);

        // The per-quantum average heart rate implied by the allocation equals
        // the requested speedup: beats divided by the time they take.
        let time: f64 = beats
            .iter()
            .map(|(point, b)| f64::from(*b) / point.speedup)
            .sum();
        assert!(
            (20.0 / time - 1.5).abs() < 0.08,
            "implied speedup {}",
            20.0 / time
        );
    }

    #[test]
    fn policy_display() {
        assert_eq!(ActuationPolicy::RaceToIdle.to_string(), "race-to-idle");
        assert_eq!(
            ActuationPolicy::MinimalSpeedup.to_string(),
            "minimal-speedup"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use powerdial_knobs::{ConfigParameter, ParameterSpace};
    use powerdial_qos::{QosLoss, QosLossBound};
    use proptest::prelude::*;

    fn arbitrary_table(speedups: &[f64]) -> KnobTable {
        let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
            .build()
            .unwrap();
        let points = speedups
            .iter()
            .enumerate()
            .map(|(i, &s)| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: s,
                qos_loss: QosLoss::new((s - 1.0).max(0.0) * 0.01),
            })
            .collect();
        KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
    }

    proptest! {
        /// For any attainable request both policies achieve (at least) the
        /// requested average speedup, and their schedules' fractions are a
        /// valid partition of the quantum.
        #[test]
        fn schedules_achieve_attainable_requests(
            mut extra_speedups in proptest::collection::vec(1.1f64..50.0, 1..6),
            request_fraction in 0.0f64..1.0,
        ) {
            extra_speedups.sort_by(f64::total_cmp);
            let mut speedups = vec![1.0];
            speedups.extend(extra_speedups);
            let table = arbitrary_table(&speedups);
            let request = 1.0 + request_fraction * (table.max_speedup() - 1.0);

            for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
                let schedule = Actuator::new(policy).plan(&table, request);
                let busy: f64 = schedule.segments.iter().map(|s| s.fraction).sum();
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&busy));
                prop_assert!(schedule.idle_fraction >= -1e-9);
                prop_assert!((busy + schedule.idle_fraction - 1.0).abs() < 1e-6);
                prop_assert!(
                    schedule.achieved_speedup + 1e-6 >= request,
                    "policy {policy} achieved {} for request {request}",
                    schedule.achieved_speedup
                );
            }
        }

        /// The index-based planner produces exactly the schedule the
        /// original clone-based planner did (preserved verbatim in
        /// `crate::naive::plan`), for any table, request, and policy —
        /// including requests below baseline, exact matches, mixed
        /// segments, and saturation.
        #[test]
        fn compact_plan_matches_original_planner(
            mut extra_speedups in proptest::collection::vec(1.01f64..50.0, 0..6),
            request in 0.0f64..60.0,
        ) {
            extra_speedups.sort_by(f64::total_cmp);
            let mut speedups = vec![1.0];
            speedups.extend(extra_speedups);
            let table = arbitrary_table(&speedups);
            for policy in [ActuationPolicy::MinimalSpeedup, ActuationPolicy::RaceToIdle] {
                let new = Actuator::new(policy).plan(&table, request);
                let original = crate::naive::plan(policy, &table, request);
                prop_assert_eq!(&new, &original, "policy {} request {}", policy, request);
            }
        }

        /// The minimal-speedup policy never uses a setting faster than the
        /// cheapest sufficient one, so its expected QoS loss is no worse than
        /// race-to-idle's output-weighted loss.
        #[test]
        fn minimal_speedup_never_loses_more_qos(
            request in 1.0f64..4.0,
        ) {
            let table = arbitrary_table(&[1.0, 2.0, 4.0]);
            let minimal = Actuator::new(ActuationPolicy::MinimalSpeedup).plan(&table, request);
            let race = Actuator::new(ActuationPolicy::RaceToIdle).plan(&table, request);
            prop_assert!(minimal.expected_qos_loss() <= race.expected_qos_loss() + 1e-9);
        }
    }
}
