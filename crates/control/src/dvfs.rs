//! Platform-level DVFS actuation through the [`DvfsBackend`] seam.
//!
//! The knob [`crate::Actuator`] trades application fidelity for speed; this
//! module is its platform-side sibling: it turns capacity decisions into
//! P-state changes on whatever backend the platform attached — the
//! simulator in the experiments, sysfs/cpufreq on hardware (control-
//! theoretic DVFS in the style of Cerf et al. and Xia et al. actuates
//! through exactly this interface). Because every operation goes through
//! the trait, the power-cap experiments run unmodified against either
//! backend.

use powerdial_platform::{DvfsBackend, FrequencyState, PowerCapSchedule};

use powerdial_heartbeats::Timestamp;

use crate::error::ControlError;

/// Applies frequency decisions to a [`DvfsBackend`], tracking what it
/// requested so redundant platform writes are skipped.
///
/// # Example
///
/// ```
/// use powerdial_control::DvfsActuator;
/// use powerdial_platform::{DvfsBackend, SimBackend};
///
/// # fn main() -> Result<(), powerdial_control::ControlError> {
/// let mut backend = SimBackend::paper();
/// let mut actuator = DvfsActuator::new();
/// // Hold 80 % of peak capacity with the least power: 2.0 GHz on the
/// // paper's ladder.
/// let state = actuator.apply_capacity(&mut backend, 0.8)?;
/// assert_eq!(state.khz(), 2_000_000);
/// assert_eq!(backend.current_state().unwrap(), state);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DvfsActuator {
    last_requested: Option<FrequencyState>,
}

impl DvfsActuator {
    /// Creates an actuator that has not yet touched the platform.
    pub fn new() -> Self {
        DvfsActuator::default()
    }

    /// The state most recently requested through this actuator, if any.
    pub fn last_requested(&self) -> Option<FrequencyState> {
        self.last_requested
    }

    /// Requests the exact state `state` on the backend.
    ///
    /// # Errors
    ///
    /// Propagates the backend's typed [`powerdial_platform::PlatformError`]
    /// as [`ControlError::Platform`].
    pub fn apply_state(
        &mut self,
        backend: &mut dyn DvfsBackend,
        state: FrequencyState,
    ) -> Result<(), ControlError> {
        backend.set_state(state)?;
        self.last_requested = Some(state);
        Ok(())
    }

    /// Picks the lowest-frequency state of the backend's table whose
    /// relative capacity still meets `capacity` (the highest state when none
    /// does) and applies it. Returns the state chosen.
    ///
    /// # Errors
    ///
    /// Propagates the backend's typed error as [`ControlError::Platform`].
    pub fn apply_capacity(
        &mut self,
        backend: &mut dyn DvfsBackend,
        capacity: f64,
    ) -> Result<FrequencyState, ControlError> {
        let state = backend.table().state_meeting_capacity(capacity);
        self.apply_state(backend, state)?;
        Ok(state)
    }

    /// Drives the backend to the state a [`PowerCapSchedule`] demands at
    /// time `now`, skipping the platform write when the schedule still
    /// demands what this actuator last requested *and* the backend still
    /// reports that state — so state changed behind the backend's back
    /// (another process, a thermal daemon) is re-asserted on the next
    /// quantum instead of persisting silently. Returns the state in force.
    ///
    /// # Errors
    ///
    /// Propagates the backend's typed error as [`ControlError::Platform`].
    /// Schedules must be built from the backend's own table; a foreign
    /// state surfaces as
    /// [`powerdial_platform::PlatformError::StateNotInTable`].
    pub fn follow_schedule(
        &mut self,
        backend: &mut dyn DvfsBackend,
        schedule: &PowerCapSchedule,
        now: Timestamp,
    ) -> Result<FrequencyState, ControlError> {
        let state = schedule.state_at(now);
        let still_in_force =
            self.last_requested == Some(state) && backend.current_state().ok() == Some(state);
        if !still_in_force {
            self.apply_state(backend, state)?;
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_platform::{FrequencyTable, PlatformError, SimBackend};

    #[test]
    fn apply_capacity_picks_the_slowest_sufficient_state() {
        let mut backend = SimBackend::paper();
        let mut actuator = DvfsActuator::new();
        let state = actuator.apply_capacity(&mut backend, 2.0 / 3.0).unwrap();
        assert_eq!(state.khz(), 1_600_000);
        assert_eq!(backend.current_state().unwrap(), state);
        let state = actuator.apply_capacity(&mut backend, 1.0).unwrap();
        assert_eq!(state.khz(), 2_400_000);
        assert_eq!(actuator.last_requested(), Some(state));
    }

    #[test]
    fn follow_schedule_writes_only_on_change() {
        let mut backend = SimBackend::paper();
        let table = backend.table().clone();
        let schedule = PowerCapSchedule::mid_run_cap(&table, Timestamp::from_secs(100));
        let mut actuator = DvfsActuator::new();
        for secs in 0..100 {
            let state = actuator
                .follow_schedule(&mut backend, &schedule, Timestamp::from_secs(secs))
                .unwrap();
            assert_eq!(backend.current_state().unwrap(), state);
        }
        // Uncapped → capped → uncapped: two transitions after the initial
        // set, because unchanged quanta skip the platform write.
        assert_eq!(backend.transitions(), 2);
    }

    #[test]
    fn follow_schedule_reasserts_states_changed_behind_its_back() {
        let mut backend = SimBackend::paper();
        let table = backend.table().clone();
        let schedule = PowerCapSchedule::constant(table.lowest());
        let mut actuator = DvfsActuator::new();
        actuator
            .follow_schedule(&mut backend, &schedule, Timestamp::ZERO)
            .unwrap();
        assert_eq!(backend.current_state().unwrap(), table.lowest());

        // Something else moves the platform; the actuator notices on the
        // next quantum and re-asserts the schedule's state.
        backend.set_state(table.highest()).unwrap();
        let state = actuator
            .follow_schedule(&mut backend, &schedule, Timestamp::from_secs(1))
            .unwrap();
        assert_eq!(state, table.lowest());
        assert_eq!(backend.current_state().unwrap(), table.lowest());
    }

    #[test]
    fn foreign_schedule_states_surface_as_typed_platform_errors() {
        let mut backend = SimBackend::paper();
        let foreign = FrequencyTable::new(vec![5_000_000]).unwrap();
        let mut actuator = DvfsActuator::new();
        let err = actuator
            .apply_state(&mut backend, foreign.highest())
            .unwrap_err();
        assert_eq!(
            err,
            ControlError::Platform(PlatformError::StateNotInTable { khz: 5_000_000 })
        );
        assert!(!err.to_string().is_empty());
        assert_eq!(actuator.last_requested(), None);
    }
}
