//! Z-domain analysis of the PowerDial control loop.
//!
//! The paper demonstrates three properties of the closed loop formed by the
//! controller `F(z) = z / (b(z−1))` and the application model `G(z) = b/z`:
//! the loop converges (unit steady-state gain), it is stable and does not
//! oscillate (all poles strictly inside the unit circle), and it converges
//! quickly (the convergence time estimate `t_c ≈ −4 / log|p_d|` is minimal
//! because the dominant pole is at the origin). This module provides the
//! small rational-function toolkit needed to reproduce that analysis for any
//! baseline speed `b`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A polynomial in `z` with real coefficients, stored lowest degree first
/// (`coefficients[k]` multiplies `z^k`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coefficients: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients, lowest degree first. Trailing
    /// zero coefficients are trimmed.
    pub fn new(coefficients: Vec<f64>) -> Self {
        let mut coefficients = coefficients;
        while coefficients.len() > 1 && coefficients.last() == Some(&0.0) {
            coefficients.pop();
        }
        if coefficients.is_empty() {
            coefficients.push(0.0);
        }
        Polynomial { coefficients }
    }

    /// The polynomial's degree (0 for constants).
    pub fn degree(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// The coefficients, lowest degree first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Evaluates the polynomial at `z`.
    pub fn evaluate(&self, z: f64) -> f64 {
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * z + c)
    }

    /// Multiplies two polynomials.
    pub fn multiply(&self, other: &Polynomial) -> Polynomial {
        let mut result = vec![0.0; self.coefficients.len() + other.coefficients.len() - 1];
        for (i, &a) in self.coefficients.iter().enumerate() {
            for (j, &b) in other.coefficients.iter().enumerate() {
                result[i + j] += a * b;
            }
        }
        Polynomial::new(result)
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let len = self.coefficients.len().max(other.coefficients.len());
        let mut result = vec![0.0; len];
        for (i, slot) in result.iter_mut().enumerate() {
            *slot = self.coefficients.get(i).copied().unwrap_or(0.0)
                + other.coefficients.get(i).copied().unwrap_or(0.0);
        }
        Polynomial::new(result)
    }

    /// The real roots of the polynomial, for degrees up to 2. Complex roots
    /// of quadratics are returned by magnitude (both entries equal to the
    /// modulus), which is what stability analysis needs.
    ///
    /// # Panics
    ///
    /// Panics for polynomials of degree 3 or higher.
    pub fn root_magnitudes(&self) -> Vec<f64> {
        match self.degree() {
            0 => Vec::new(),
            1 => {
                // c0 + c1 z = 0  =>  z = -c0/c1
                vec![(-self.coefficients[0] / self.coefficients[1]).abs()]
            }
            2 => {
                let c = self.coefficients[0];
                let b = self.coefficients[1];
                let a = self.coefficients[2];
                let discriminant = b * b - 4.0 * a * c;
                if discriminant >= 0.0 {
                    let sqrt_d = discriminant.sqrt();
                    vec![
                        ((-b + sqrt_d) / (2.0 * a)).abs(),
                        ((-b - sqrt_d) / (2.0 * a)).abs(),
                    ]
                } else {
                    // Complex conjugate pair: |z| = sqrt(c/a).
                    let modulus = (c / a).abs().sqrt();
                    vec![modulus, modulus]
                }
            }
            d => panic!("root finding is only implemented for degree <= 2, got {d}"),
        }
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.coefficients.iter().enumerate().rev() {
            if i < self.coefficients.len() - 1 {
                write!(f, " + ")?;
            }
            write!(f, "{c}·z^{i}")?;
        }
        Ok(())
    }
}

/// A rational transfer function `numerator(z) / denominator(z)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    numerator: Polynomial,
    denominator: Polynomial,
}

impl TransferFunction {
    /// Creates a transfer function from numerator and denominator
    /// polynomials.
    pub fn new(numerator: Polynomial, denominator: Polynomial) -> Self {
        TransferFunction {
            numerator,
            denominator,
        }
    }

    /// The controller transfer function `F(z) = z / (b(z − 1))` (Equation 5).
    pub fn powerdial_controller(base_speed: f64) -> Self {
        TransferFunction::new(
            Polynomial::new(vec![0.0, 1.0]),
            Polynomial::new(vec![-base_speed, base_speed]),
        )
    }

    /// The application model transfer function `G(z) = b / z` (Equation 6).
    pub fn application_model(base_speed: f64) -> Self {
        TransferFunction::new(
            Polynomial::new(vec![base_speed]),
            Polynomial::new(vec![0.0, 1.0]),
        )
    }

    /// The numerator polynomial.
    pub fn numerator(&self) -> &Polynomial {
        &self.numerator
    }

    /// The denominator polynomial.
    pub fn denominator(&self) -> &Polynomial {
        &self.denominator
    }

    /// Evaluates the transfer function at a real `z`. Returns `None` when the
    /// denominator vanishes there.
    pub fn evaluate(&self, z: f64) -> Option<f64> {
        let den = self.denominator.evaluate(z);
        if den == 0.0 {
            None
        } else {
            Some(self.numerator.evaluate(z) / den)
        }
    }

    /// The closed loop `F·G / (1 + F·G)` formed with `plant` (Equation 7).
    pub fn closed_loop_with(&self, plant: &TransferFunction) -> TransferFunction {
        let open_num = self.numerator.multiply(&plant.numerator);
        let open_den = self.denominator.multiply(&plant.denominator);
        TransferFunction::new(open_num.clone(), open_den.add(&open_num))
    }

    /// The steady-state gain `H(1)`; a unit gain means the loop converges to
    /// the target with zero steady-state error. Returns `None` for a pole at
    /// `z = 1`.
    pub fn steady_state_gain(&self) -> Option<f64> {
        self.evaluate(1.0)
    }

    /// Magnitudes of the poles (roots of the denominator).
    pub fn pole_magnitudes(&self) -> Vec<f64> {
        self.denominator.root_magnitudes()
    }

    /// True when every pole lies strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        self.pole_magnitudes().iter().all(|&m| m < 1.0)
    }

    /// The paper's convergence-time estimate `t_c ≈ −4 / log|p_d|`, in
    /// control periods, where `p_d` is the dominant pole. Returns 0 when the
    /// dominant pole is at the origin (instant convergence) and `None` for an
    /// unstable system.
    pub fn convergence_time(&self) -> Option<f64> {
        let dominant = self.pole_magnitudes().into_iter().fold(0.0f64, f64::max);
        if dominant >= 1.0 {
            None
        } else if dominant == 0.0 {
            Some(0.0)
        } else {
            Some(-4.0 / dominant.log10())
        }
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.numerator, self.denominator)
    }
}

/// The complete closed-loop analysis for a PowerDial controller with baseline
/// speed `b`, as performed in Section 2.3.2 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopAnalysis {
    /// The baseline speed the loop was analyzed for.
    pub base_speed: f64,
    /// The closed-loop transfer function.
    pub closed_loop: TransferFunction,
    /// Steady-state gain (should be exactly 1).
    pub steady_state_gain: f64,
    /// Pole magnitudes (should all be 0).
    pub pole_magnitudes: Vec<f64>,
    /// Whether the loop is stable.
    pub stable: bool,
    /// Convergence time estimate in control periods.
    pub convergence_time: f64,
}

/// Analyzes the PowerDial closed loop for a given baseline speed.
///
/// # Example
///
/// ```
/// use powerdial_control::ztransform::analyze_closed_loop;
///
/// let analysis = analyze_closed_loop(30.0);
/// assert!((analysis.steady_state_gain - 1.0).abs() < 1e-9);
/// assert!(analysis.stable);
/// assert_eq!(analysis.convergence_time, 0.0);
/// ```
pub fn analyze_closed_loop(base_speed: f64) -> ClosedLoopAnalysis {
    let controller = TransferFunction::powerdial_controller(base_speed);
    let plant = TransferFunction::application_model(base_speed);
    let closed_loop = controller.closed_loop_with(&plant);
    let steady_state_gain = closed_loop
        .steady_state_gain()
        .expect("closed loop has no pole at z = 1");
    let pole_magnitudes = closed_loop.pole_magnitudes();
    let stable = closed_loop.is_stable();
    let convergence_time = closed_loop.convergence_time().unwrap_or(f64::INFINITY);
    ClosedLoopAnalysis {
        base_speed,
        closed_loop,
        steady_state_gain,
        pole_magnitudes,
        stable,
        convergence_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_evaluation_and_arithmetic() {
        // p(z) = 1 + 2z + 3z^2
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.evaluate(0.0), 1.0);
        assert_eq!(p.evaluate(1.0), 6.0);
        assert_eq!(p.evaluate(2.0), 17.0);

        let q = Polynomial::new(vec![0.0, 1.0]); // z
        let product = p.multiply(&q); // z + 2z^2 + 3z^3
        assert_eq!(product.coefficients(), &[0.0, 1.0, 2.0, 3.0]);
        let sum = p.add(&q); // 1 + 3z + 3z^2
        assert_eq!(sum.coefficients(), &[1.0, 3.0, 3.0]);
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let p = Polynomial::new(vec![1.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 0);
        let zero = Polynomial::new(vec![]);
        assert_eq!(zero.coefficients(), &[0.0]);
    }

    #[test]
    fn linear_and_quadratic_roots() {
        // z - 0.5 = 0 -> root magnitude 0.5
        let linear = Polynomial::new(vec![-0.5, 1.0]);
        assert_eq!(linear.root_magnitudes(), vec![0.5]);

        // z^2 - 1 = 0 -> roots ±1
        let quadratic = Polynomial::new(vec![-1.0, 0.0, 1.0]);
        let mut roots = quadratic.root_magnitudes();
        roots.sort_by(f64::total_cmp);
        assert_eq!(roots, vec![1.0, 1.0]);

        // z^2 + 0.25 = 0 -> complex pair with modulus 0.5
        let complex = Polynomial::new(vec![0.25, 0.0, 1.0]);
        assert_eq!(complex.root_magnitudes(), vec![0.5, 0.5]);

        // Constants have no roots.
        assert!(Polynomial::new(vec![3.0]).root_magnitudes().is_empty());
    }

    #[test]
    #[should_panic(expected = "degree <= 2")]
    fn cubic_roots_are_unsupported() {
        Polynomial::new(vec![1.0, 0.0, 0.0, 1.0]).root_magnitudes();
    }

    #[test]
    fn controller_and_plant_transfer_functions_match_paper() {
        let b = 25.0;
        let controller = TransferFunction::powerdial_controller(b);
        // F(z) = z / (b(z-1)); at z = 2: 2 / (25 * 1) = 0.08.
        assert!((controller.evaluate(2.0).unwrap() - 0.08).abs() < 1e-12);
        // Pole at z = 1.
        assert_eq!(controller.pole_magnitudes(), vec![1.0]);

        let plant = TransferFunction::application_model(b);
        // G(z) = b/z; at z = 5: 5.
        assert!((plant.evaluate(5.0).unwrap() - 5.0).abs() < 1e-12);
        assert!(plant.evaluate(0.0).is_none());
    }

    #[test]
    fn closed_loop_is_one_over_z() {
        // Equation 8: Floop(z) = 1/z independent of b.
        for &b in &[1.0, 10.0, 30.0, 250.0] {
            let analysis = analyze_closed_loop(b);
            // H(2) should be 0.5, H(4) should be 0.25.
            assert!((analysis.closed_loop.evaluate(2.0).unwrap() - 0.5).abs() < 1e-9);
            assert!((analysis.closed_loop.evaluate(4.0).unwrap() - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn closed_loop_has_paper_properties() {
        let analysis = analyze_closed_loop(30.0);
        assert!((analysis.steady_state_gain - 1.0).abs() < 1e-9);
        assert!(analysis.stable);
        assert!(analysis.pole_magnitudes.iter().all(|&p| p.abs() < 1e-9));
        assert_eq!(analysis.convergence_time, 0.0);
        assert_eq!(analysis.base_speed, 30.0);
        assert!(analysis.closed_loop.to_string().contains('/'));
    }

    #[test]
    fn convergence_time_for_nonzero_dominant_pole() {
        // A first-order lag with pole at 0.5: tc = -4 / log10(0.5) ≈ 13.3.
        let tf =
            TransferFunction::new(Polynomial::new(vec![0.5]), Polynomial::new(vec![-0.5, 1.0]));
        let tc = tf.convergence_time().unwrap();
        assert!((tc - (-4.0 / 0.5f64.log10())).abs() < 1e-9);
        assert!(tf.is_stable());

        // Unstable system: pole outside the unit circle.
        let unstable =
            TransferFunction::new(Polynomial::new(vec![1.0]), Polynomial::new(vec![-2.0, 1.0]));
        assert!(!unstable.is_stable());
        assert!(unstable.convergence_time().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The paper's closed-loop properties hold for any positive baseline
        /// speed: unit gain, poles at the origin, stability.
        #[test]
        fn closed_loop_properties_hold_for_any_base_speed(b in 0.01f64..10_000.0) {
            let analysis = analyze_closed_loop(b);
            prop_assert!((analysis.steady_state_gain - 1.0).abs() < 1e-6);
            prop_assert!(analysis.stable);
            for p in &analysis.pole_magnitudes {
                prop_assert!(p.abs() < 1e-6);
            }
        }

        /// Polynomial evaluation of a product equals the product of
        /// evaluations.
        #[test]
        fn multiplication_is_pointwise(
            a in proptest::collection::vec(-5.0f64..5.0, 1..4),
            b in proptest::collection::vec(-5.0f64..5.0, 1..4),
            z in -3.0f64..3.0,
        ) {
            let pa = Polynomial::new(a);
            let pb = Polynomial::new(b);
            let product = pa.multiply(&pb);
            let expected = pa.evaluate(z) * pb.evaluate(z);
            prop_assert!((product.evaluate(z) - expected).abs() < 1e-6 * (1.0 + expected.abs()));
        }
    }
}
