//! Error type for the control system.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring the controller, actuator, or runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// The target heart rate is zero, negative, or not finite.
    InvalidTargetRate {
        /// The offending target rate in beats per second.
        rate: f64,
    },
    /// The baseline speed is zero, negative, or not finite.
    InvalidBaseSpeed {
        /// The offending baseline speed in beats per second.
        speed: f64,
    },
    /// The speedup clamp range is invalid (minimum above maximum or
    /// non-positive values).
    InvalidSpeedupRange {
        /// Requested minimum speedup.
        min: f64,
        /// Requested maximum speedup.
        max: f64,
    },
    /// The time quantum is zero heartbeats.
    ZeroQuantum,
    /// The knob table cannot deliver the requested speedup even at its
    /// fastest setting; the schedule saturates at maximum speedup.
    SpeedupUnattainable {
        /// The speedup the controller requested.
        requested: f64,
        /// The fastest speedup the knob table offers.
        available: f64,
    },
    /// A daemon channel capacity of zero records was requested.
    ZeroChannelCapacity,
    /// A daemon sliding-window size of zero heartbeats was requested.
    ZeroWindowSize,
    /// The platform's DVFS backend rejected an actuation.
    Platform(powerdial_platform::PlatformError),
    /// A daemon worker thread died (panicked mid-quantum). The daemon
    /// stays serviceable in degraded form: the dead shard's applications
    /// stop receiving fresh decisions, every other shard keeps ticking.
    ShardDead {
        /// Index of the dead worker shard.
        shard: usize,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::InvalidTargetRate { rate } => {
                write!(f, "target heart rate must be positive and finite, got {rate}")
            }
            ControlError::InvalidBaseSpeed { speed } => {
                write!(f, "baseline speed must be positive and finite, got {speed}")
            }
            ControlError::InvalidSpeedupRange { min, max } => {
                write!(f, "invalid speedup range [{min}, {max}]")
            }
            ControlError::ZeroQuantum => write!(f, "time quantum must be at least one heartbeat"),
            ControlError::SpeedupUnattainable {
                requested,
                available,
            } => write!(
                f,
                "requested speedup {requested:.3} exceeds the fastest available knob speedup {available:.3}"
            ),
            ControlError::ZeroChannelCapacity => {
                write!(f, "daemon channel capacity must be at least one record")
            }
            ControlError::ZeroWindowSize => {
                write!(f, "daemon window size must be at least one heartbeat")
            }
            ControlError::Platform(inner) => write!(f, "dvfs backend: {inner}"),
            ControlError::ShardDead { shard } => {
                write!(
                    f,
                    "daemon worker shard {shard} died; its apps are orphaned, \
                     other shards remain serviceable"
                )
            }
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Platform(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<powerdial_platform::PlatformError> for ControlError {
    fn from(inner: powerdial_platform::PlatformError) -> Self {
        ControlError::Platform(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            ControlError::InvalidTargetRate { rate: -1.0 },
            ControlError::InvalidBaseSpeed { speed: 0.0 },
            ControlError::InvalidSpeedupRange { min: 2.0, max: 1.0 },
            ControlError::ZeroQuantum,
            ControlError::SpeedupUnattainable {
                requested: 5.0,
                available: 2.0,
            },
            ControlError::ZeroChannelCapacity,
            ControlError::ZeroWindowSize,
            ControlError::ShardDead { shard: 3 },
            ControlError::Platform(powerdial_platform::PlatformError::StateNotInTable {
                khz: 3_000_000,
            }),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ControlError>();
    }
}
