//! The PowerDial runtime: controller + actuator driven once per heartbeat.

use std::fmt;

use serde::{Deserialize, Serialize};

use powerdial_knobs::{CalibrationPoint, KnobTable, ParameterSetting, PointIdx};

use crate::actuator::{ActuationPolicy, Actuator, CompactSchedule, MAX_PLAN_SEGMENTS};
use crate::controller::{ControllerConfig, HeartRateController};
use crate::error::ControlError;

/// The number of heartbeats in one actuation time quantum (the paper's
/// heuristic).
pub const DEFAULT_QUANTUM_HEARTBEATS: u32 = 20;

/// Configuration of the [`PowerDialRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Configuration of the feedback controller.
    pub controller: ControllerConfig,
    /// The actuation policy used to realize the controller's speedup.
    pub policy: ActuationPolicy,
    /// Number of heartbeats per actuation quantum.
    pub quantum_heartbeats: u32,
}

impl RuntimeConfig {
    /// Creates a runtime configuration with the default policy
    /// (minimal-speedup) and the default 20-heartbeat quantum.
    pub fn new(controller: ControllerConfig) -> Self {
        RuntimeConfig {
            controller,
            policy: ActuationPolicy::default(),
            quantum_heartbeats: DEFAULT_QUANTUM_HEARTBEATS,
        }
    }

    /// Sets the actuation policy.
    pub fn with_policy(mut self, policy: ActuationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the quantum length in heartbeats.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroQuantum`] when `heartbeats` is zero.
    pub fn with_quantum_heartbeats(mut self, heartbeats: u32) -> Result<Self, ControlError> {
        if heartbeats == 0 {
            return Err(ControlError::ZeroQuantum);
        }
        self.quantum_heartbeats = heartbeats;
        Ok(self)
    }
}

/// The runtime's decision for the next unit of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeDecision {
    /// The calibrated knob setting to apply before processing the next unit.
    pub point: CalibrationPoint,
    /// The instantaneous speedup of that setting — the "knob gain" plotted in
    /// the paper's power-cap figures.
    pub gain: f64,
    /// The fraction of the current quantum the platform may idle
    /// (race-to-idle only; zero otherwise).
    pub planned_idle_fraction: f64,
    /// The continuous speedup the controller requested for this quantum.
    pub requested_speedup: f64,
}

impl RuntimeDecision {
    /// The parameter setting to apply.
    pub fn setting(&self) -> &ParameterSetting {
        &self.point.setting
    }
}

impl fmt::Display for RuntimeDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "apply {} (gain {:.2}, requested {:.2})",
            self.point.setting, self.gain, self.requested_speedup
        )
    }
}

/// The runtime's decision for the next unit of work, in index form.
///
/// This is the allocation-free counterpart of [`RuntimeDecision`]: a `Copy`
/// value carrying the [`PointIdx`] of the knob setting to apply instead of a
/// cloned [`CalibrationPoint`]. Resolve the index against
/// [`PowerDialRuntime::table`] when the full setting is needed — typically
/// once per *applied change*, not once per heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexedDecision {
    /// Index (into the runtime's knob table) of the setting to apply.
    pub point_idx: PointIdx,
    /// The instantaneous speedup of that setting (the paper's "knob gain").
    pub gain: f64,
    /// The fraction of the current quantum the platform may idle
    /// (race-to-idle only; zero otherwise).
    pub planned_idle_fraction: f64,
    /// The continuous speedup the controller requested for this quantum.
    pub requested_speedup: f64,
}

/// The PowerDial runtime: call [`PowerDialRuntime::on_heartbeat`] once per
/// application heartbeat with the observed windowed heart rate, and apply the
/// returned knob setting before processing the next unit of work.
///
/// # Example
///
/// ```
/// use powerdial_control::{ControllerConfig, PowerDialRuntime, RuntimeConfig};
/// use powerdial_knobs::{Calibrator, ConfigParameter, Measurement, ParameterSpace};
/// use powerdial_qos::{OutputAbstraction, QosLossBound};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Calibrate a single knob whose smaller values run proportionally faster.
/// let space = ParameterSpace::builder()
///     .parameter(ConfigParameter::new("sims", vec![250.0, 500.0, 1000.0], 1000.0)?)
///     .build()?;
/// let mut calibrator = Calibrator::new(&space);
/// for (i, setting) in space.settings().enumerate() {
///     let sims = setting.value("sims").unwrap();
///     calibrator.record(Measurement {
///         setting_index: i,
///         input_index: 0,
///         work: sims,
///         output: OutputAbstraction::from_components([1.0 + (1000.0 - sims) * 1e-5]),
///     })?;
/// }
/// let table = calibrator.build()?.knob_table(QosLossBound::UNBOUNDED)?;
///
/// // Target 30 beats/s; the platform only delivers 20 beats/s at baseline.
/// let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0)?);
/// let mut runtime = PowerDialRuntime::new(config, table)?;
/// let decision = runtime.on_heartbeat(Some(20.0));
/// assert!(decision.requested_speedup > 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PowerDialRuntime {
    controller: HeartRateController,
    actuator: Actuator,
    table: KnobTable,
    quantum: u32,
    beat_in_quantum: u32,
    /// One knob-setting index per heartbeat of the current quantum. The
    /// buffer is allocated once (capacity = quantum) and refilled in place
    /// at every quantum boundary, so steady-state planning never allocates.
    per_beat_idx: Vec<PointIdx>,
    current_schedule: Option<CompactSchedule>,
    quanta_planned: u64,
}

impl PowerDialRuntime {
    /// Creates a runtime from its configuration and a calibrated knob table.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::ZeroQuantum`] when the configured quantum is
    /// zero heartbeats.
    pub fn new(config: RuntimeConfig, table: KnobTable) -> Result<Self, ControlError> {
        if config.quantum_heartbeats == 0 {
            return Err(ControlError::ZeroQuantum);
        }
        Ok(PowerDialRuntime {
            controller: HeartRateController::new(config.controller),
            actuator: Actuator::new(config.policy),
            table,
            quantum: config.quantum_heartbeats,
            beat_in_quantum: 0,
            per_beat_idx: Vec::with_capacity(config.quantum_heartbeats as usize),
            current_schedule: None,
            quanta_planned: 0,
        })
    }

    /// The feedback controller (read-only).
    pub fn controller(&self) -> &HeartRateController {
        &self.controller
    }

    /// The knob table the runtime actuates over.
    pub fn table(&self) -> &KnobTable {
        &self.table
    }

    /// The schedule planned for the current quantum, if one exists. Use
    /// [`CompactSchedule::to_schedule`] with [`PowerDialRuntime::table`] to
    /// expand it for reporting.
    pub fn current_schedule(&self) -> Option<&CompactSchedule> {
        self.current_schedule.as_ref()
    }

    /// The per-heartbeat knob-setting indices planned for the current
    /// quantum (empty before the first heartbeat). Exposed so equivalence
    /// tests and diagnostics can inspect the exact interleaving.
    pub fn planned_beat_indices(&self) -> &[PointIdx] {
        &self.per_beat_idx
    }

    /// Number of quanta planned so far.
    pub fn quanta_planned(&self) -> u64 {
        self.quanta_planned
    }

    /// The quantum length in heartbeats.
    pub fn quantum_heartbeats(&self) -> u32 {
        self.quantum
    }

    /// Feeds one heartbeat observation (the windowed heart rate in beats per
    /// second, or `None` before enough beats exist) and returns the knob
    /// setting to apply for the next unit of work.
    ///
    /// A new schedule is planned at the start of every quantum; within a
    /// quantum the runtime walks the planned per-heartbeat settings.
    ///
    /// This convenience form clones the decided [`CalibrationPoint`] into
    /// the returned [`RuntimeDecision`]; the steady-state hot path should
    /// use [`PowerDialRuntime::on_heartbeat_idx`], which is allocation-free.
    pub fn on_heartbeat(&mut self, observed_rate: Option<f64>) -> RuntimeDecision {
        let decision = self.on_heartbeat_idx(observed_rate);
        RuntimeDecision {
            point: self.table.point(decision.point_idx).clone(),
            gain: decision.gain,
            planned_idle_fraction: decision.planned_idle_fraction,
            requested_speedup: decision.requested_speedup,
        }
    }

    /// Feeds one heartbeat observation and returns the decision in index
    /// form. O(1) per beat (amortized over the quantum) and performs **no
    /// heap allocation** after the first quantum: planning refills the
    /// runtime's preallocated per-beat buffer in place.
    pub fn on_heartbeat_idx(&mut self, observed_rate: Option<f64>) -> IndexedDecision {
        if self.beat_in_quantum == 0 {
            self.plan_quantum(observed_rate);
        }
        let index = self.beat_in_quantum as usize;
        let point_idx = self
            .per_beat_idx
            .get(index)
            .copied()
            .unwrap_or_else(|| self.table.baseline_idx());

        self.beat_in_quantum += 1;
        if self.beat_in_quantum >= self.quantum {
            self.beat_in_quantum = 0;
        }

        let schedule = self
            .current_schedule
            .as_ref()
            .expect("schedule exists after planning");
        IndexedDecision {
            point_idx,
            gain: self.table.speedup_of(point_idx),
            planned_idle_fraction: schedule.idle_fraction,
            requested_speedup: schedule.requested_speedup,
        }
    }

    /// Advances `span` heartbeats *inside* the current quantum in one step
    /// and returns the decision for the span's **last** beat — the batched
    /// counterpart of calling [`on_heartbeat_idx`](Self::on_heartbeat_idx)
    /// `span` times for beats that are not at a quantum boundary.
    ///
    /// Within a quantum the runtime only walks the already-planned
    /// `per_beat_idx` buffer: the observed rate is not consulted until the
    /// next boundary beat replans. That makes this skip exactly — bit for
    /// bit — what the per-beat walk would have computed and discarded, so
    /// callers batching whole drains (the daemon's batched kernel) remain
    /// decision-equivalent to the per-beat path. The intermediate beats'
    /// decisions are *not* materialized; callers that publish only the
    /// last decision of a drain (as the daemon does) lose nothing.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero, if no quantum is in progress
    /// (`beat_in_quantum() == 0` — the next beat must replan, so it has to
    /// go through `on_heartbeat_idx`), or if the span would cross the next
    /// quantum boundary (`beat_in_quantum() + span > quantum`): boundary
    /// beats consume an observation and must be stepped individually.
    pub fn advance_in_quantum(&mut self, span: u32) -> IndexedDecision {
        assert!(span > 0, "span must be at least one beat");
        assert!(
            self.beat_in_quantum != 0,
            "advance_in_quantum requires a quantum in progress; \
             step the boundary beat through on_heartbeat_idx first"
        );
        assert!(
            self.beat_in_quantum + span <= self.quantum,
            "span of {span} from beat {} would cross the {}-beat quantum boundary",
            self.beat_in_quantum,
            self.quantum
        );
        let last = (self.beat_in_quantum + span - 1) as usize;
        let point_idx = self
            .per_beat_idx
            .get(last)
            .copied()
            .unwrap_or_else(|| self.table.baseline_idx());

        self.beat_in_quantum += span;
        if self.beat_in_quantum >= self.quantum {
            self.beat_in_quantum = 0;
        }

        let schedule = self
            .current_schedule
            .as_ref()
            .expect("schedule exists while a quantum is in progress");
        IndexedDecision {
            point_idx,
            gain: self.table.speedup_of(point_idx),
            planned_idle_fraction: schedule.idle_fraction,
            requested_speedup: schedule.requested_speedup,
        }
    }

    fn plan_quantum(&mut self, observed_rate: Option<f64>) {
        let observed = observed_rate.unwrap_or_else(|| self.controller.config().target_rate());
        let requested = self.controller.update(observed);
        let schedule = self.actuator.plan_compact(&self.table, requested);

        // Expand the schedule into one knob setting per heartbeat of the
        // quantum. Segments are interleaved (largest-deficit first) rather
        // than run back to back so the windowed heart rate observed anywhere
        // in the quantum reflects the quantum's average speedup. Idle time
        // (race-to-idle) does not change the setting; the application simply
        // finishes its work early, so the remaining beats reuse the first
        // (fastest) segment's setting.
        //
        // Everything below runs in fixed-size stack arrays (a schedule has
        // at most MAX_PLAN_SEGMENTS segments) plus the preallocated
        // `per_beat_idx` buffer: zero heap allocation per quantum. The
        // deficit interleaving is beat-for-beat identical to the original
        // clone-based expansion, which `crate::naive` preserves and the
        // equivalence tests replay.
        let mut seg_beats = [(PointIdx::new(0), 0u32); MAX_PLAN_SEGMENTS];
        let segment_count =
            schedule.beats_per_segment_into(self.quantum, &self.table, &mut seg_beats);
        let remaining = &mut seg_beats[..segment_count];
        let mut totals = [0.0f64; MAX_PLAN_SEGMENTS];
        let mut busy_beats = 0u32;
        for (i, (_, beats)) in remaining.iter().enumerate() {
            totals[i] = f64::from(*beats);
            busy_beats += *beats;
        }

        self.per_beat_idx.clear();
        let mut assigned = [0.0f64; MAX_PLAN_SEGMENTS];
        for beat in 0..busy_beats {
            // Pick the segment whose assignment lags its target share most.
            let progress = f64::from(beat + 1) / f64::from(busy_beats.max(1));
            let mut best = None;
            let mut best_deficit = f64::NEG_INFINITY;
            for (index, (_, left)) in remaining.iter().enumerate() {
                if *left == 0 {
                    continue;
                }
                let deficit = totals[index] * progress - assigned[index];
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = Some(index);
                }
            }
            let index = best.expect("at least one segment has beats left");
            self.per_beat_idx.push(remaining[index].0);
            assigned[index] += 1.0;
            remaining[index].1 -= 1;
        }
        let filler = self
            .per_beat_idx
            .first()
            .copied()
            .unwrap_or_else(|| self.table.fastest_idx());
        while self.per_beat_idx.len() < self.quantum as usize {
            self.per_beat_idx.push(filler);
        }

        self.current_schedule = Some(schedule);
        self.quanta_planned += 1;
    }

    /// Resets the controller and discards the current schedule, keeping the
    /// knob table (and the preallocated planning buffer).
    pub fn reset(&mut self) {
        self.controller.reset();
        self.beat_in_quantum = 0;
        self.per_beat_idx.clear();
        self.current_schedule = None;
        self.quanta_planned = 0;
    }

    /// The beat position within the current quantum (0 at a quantum
    /// boundary). Exported alongside the controller speedup into the
    /// segment's warm-start block so a successor daemon can measure how
    /// far into a quantum its predecessor died.
    pub fn beat_in_quantum(&self) -> u32 {
        self.beat_in_quantum
    }

    /// Warm-starts this runtime from a dead predecessor's exported
    /// integrator state: the restored speedup (clamped to the controller's
    /// configured range) becomes the base the first post-recovery
    /// `update` integrates from, so the successor resumes from the last
    /// actuation instead of re-converging from a cold speedup of 1. The
    /// next heartbeat plans a fresh quantum.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidSpeedupRange`] when `speedup` is not
    /// finite (a scribbled warm-start block); the runtime is left cold.
    pub fn warm_start(&mut self, speedup: f64) -> Result<(), ControlError> {
        self.controller.restore_speedup(speedup)?;
        self.beat_in_quantum = 0;
        self.per_beat_idx.clear();
        self.current_schedule = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerdial_knobs::{ConfigParameter, ParameterSpace};
    use powerdial_qos::{QosLoss, QosLossBound};

    fn test_table() -> KnobTable {
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", vec![0.0, 1.0, 2.0], 0.0).unwrap())
            .build()
            .unwrap();
        let specs = [(0usize, 1.0, 0.0), (1, 2.0, 0.05), (2, 4.0, 0.10)];
        let points = specs
            .iter()
            .map(|(i, speedup, loss)| CalibrationPoint {
                setting_index: *i,
                setting: space.setting(*i).unwrap(),
                speedup: *speedup,
                qos_loss: QosLoss::new(*loss),
            })
            .collect();
        KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
    }

    fn runtime(quantum: u32) -> PowerDialRuntime {
        let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
            .with_quantum_heartbeats(quantum)
            .unwrap();
        PowerDialRuntime::new(config, test_table()).unwrap()
    }

    #[test]
    fn zero_quantum_is_rejected() {
        let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap());
        assert!(config.with_quantum_heartbeats(0).is_err());
        let mut bad = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap());
        bad.quantum_heartbeats = 0;
        assert!(matches!(
            PowerDialRuntime::new(bad, test_table()),
            Err(ControlError::ZeroQuantum)
        ));
    }

    #[test]
    fn on_target_rate_keeps_baseline_setting() {
        let mut rt = runtime(4);
        for _ in 0..8 {
            let decision = rt.on_heartbeat(Some(30.0));
            assert!((decision.gain - 1.0).abs() < 1e-12);
            assert_eq!(decision.setting().values(), &[0.0]);
        }
        assert_eq!(rt.quanta_planned(), 2);
    }

    #[test]
    fn slow_rate_triggers_faster_settings() {
        let mut rt = runtime(4);
        // Observed rate is half the target: controller asks for ~1.33 then
        // more; the quantum should mix the speedup-2 setting with baseline.
        let mut gains = Vec::new();
        for _ in 0..8 {
            gains.push(rt.on_heartbeat(Some(15.0)).gain);
        }
        assert!(
            gains.iter().any(|&g| g > 1.0),
            "gains {gains:?} should include a boosted setting"
        );
        assert!(rt.current_schedule().is_some());
        assert!(rt.controller().speedup() > 1.0);
    }

    #[test]
    fn quantum_boundary_replans() {
        let mut rt = runtime(2);
        rt.on_heartbeat(Some(30.0));
        rt.on_heartbeat(Some(30.0));
        assert_eq!(rt.quanta_planned(), 1);
        rt.on_heartbeat(Some(10.0));
        assert_eq!(rt.quanta_planned(), 2);
        // The second plan reacts to the slow observation.
        assert!(rt.current_schedule().unwrap().requested_speedup > 1.0);
    }

    #[test]
    fn missing_observation_uses_target_rate() {
        let mut rt = runtime(4);
        let decision = rt.on_heartbeat(None);
        assert!((decision.requested_speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn race_to_idle_reports_idle_fraction() {
        let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
            .with_policy(ActuationPolicy::RaceToIdle)
            .with_quantum_heartbeats(4)
            .unwrap();
        let mut rt = PowerDialRuntime::new(config, test_table()).unwrap();
        // On-target: requested speedup 1, fastest is 4 -> idle 3/4.
        let decision = rt.on_heartbeat(Some(30.0));
        assert!((decision.planned_idle_fraction - 0.75).abs() < 1e-12);
        assert!((decision.gain - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut rt = runtime(4);
        rt.on_heartbeat(Some(10.0));
        rt.reset();
        assert_eq!(rt.quanta_planned(), 0);
        assert!(rt.current_schedule().is_none());
        assert_eq!(rt.controller().speedup(), 1.0);
        assert_eq!(rt.quantum_heartbeats(), 4);
        assert_eq!(rt.table().len(), 3);
    }

    #[test]
    fn closed_loop_with_capacity_drop_recovers_target() {
        // Simulate the power-cap scenario end to end: each work unit takes
        // 1 / (baseline · capacity · gain) seconds, and the controller sees
        // the windowed heart rate over the last 20 units — the same feedback
        // the real heartbeat monitor provides.
        let mut rt = runtime(5);
        let capacity = 0.5;
        let mut latencies: Vec<f64> = Vec::new();
        let mut rates = Vec::new();
        for _ in 0..200 {
            let window: Vec<f64> = latencies.iter().rev().take(20).copied().collect();
            let observed = if window.is_empty() {
                None
            } else {
                Some(window.len() as f64 / window.iter().sum::<f64>())
            };
            let decision = rt.on_heartbeat(observed);
            latencies.push(1.0 / (30.0 * capacity * decision.gain));
            if let Some(rate) = observed {
                rates.push(rate);
            }
        }
        let tail_mean: f64 = rates[rates.len() - 50..].iter().sum::<f64>() / 50.0;
        assert!(
            (tail_mean - 30.0).abs() < 3.0,
            "mean rate {tail_mean} should recover close to the 30 beats/s target"
        );
    }

    #[test]
    fn warm_started_runtime_matches_uninterrupted_run() {
        // An uninterrupted runtime converges somewhere; a successor that
        // warm-starts from its exported speedup at a quantum boundary makes
        // bit-identical decisions from the first post-recovery beat on.
        let mut uninterrupted = runtime(4);
        for _ in 0..12 {
            uninterrupted.on_heartbeat_idx(Some(15.0));
        }
        let exported = uninterrupted.controller().speedup();

        let mut successor = runtime(4);
        successor.warm_start(exported).unwrap();
        assert_eq!(
            successor.controller().speedup().to_bits(),
            exported.to_bits()
        );
        for _ in 0..12 {
            let a = uninterrupted.on_heartbeat_idx(Some(15.0));
            let b = successor.on_heartbeat_idx(Some(15.0));
            assert_eq!(a.point_idx, b.point_idx);
            assert_eq!(a.gain.to_bits(), b.gain.to_bits());
            assert_eq!(a.requested_speedup.to_bits(), b.requested_speedup.to_bits());
        }

        // A cold successor diverges on its first quantum — the glitch the
        // warm start exists to avoid.
        let mut cold = runtime(4);
        let warm_first = successor.current_schedule().unwrap().requested_speedup;
        let cold_first = cold.on_heartbeat_idx(Some(15.0)).requested_speedup;
        assert_ne!(warm_first.to_bits(), cold_first.to_bits());

        // Garbage warm state is refused and leaves the runtime cold.
        let mut refused = runtime(4);
        assert!(refused.warm_start(f64::NAN).is_err());
        assert_eq!(refused.controller().speedup(), 1.0);
    }

    #[test]
    fn advance_in_quantum_matches_per_beat_walk() {
        // Walk two identical runtimes through several quanta: one per-beat,
        // one stepping the boundary beat then batching the interior in
        // ragged spans. Every decision the batched walk *does* surface must
        // be bit-identical to the per-beat walk's decision for that beat.
        let mut per_beat = runtime(7);
        let mut batched = runtime(7);
        let rates = [10.0, 15.0, 30.0, 45.0, 5.0, 30.0];
        for (q, rate) in rates.iter().enumerate() {
            // Boundary beat: consumes the observation on both sides.
            let a = per_beat.on_heartbeat_idx(Some(*rate));
            let b = batched.on_heartbeat_idx(Some(*rate));
            assert_eq!(a.point_idx, b.point_idx, "boundary of quantum {q}");
            // Interior: 6 beats, split into ragged spans 2 + 1 + 3.
            let mut last_per_beat = None;
            for _ in 0..6 {
                last_per_beat = Some(per_beat.on_heartbeat_idx(Some(*rate)));
            }
            batched.advance_in_quantum(2);
            batched.advance_in_quantum(1);
            let last_batched = batched.advance_in_quantum(3);
            let last_per_beat = last_per_beat.unwrap();
            assert_eq!(last_per_beat.point_idx, last_batched.point_idx);
            assert_eq!(last_per_beat.gain.to_bits(), last_batched.gain.to_bits());
            assert_eq!(
                last_per_beat.requested_speedup.to_bits(),
                last_batched.requested_speedup.to_bits()
            );
            assert_eq!(per_beat.beat_in_quantum(), 0);
            assert_eq!(batched.beat_in_quantum(), 0);
            assert_eq!(per_beat.quanta_planned(), batched.quanta_planned());
        }
    }

    #[test]
    #[should_panic(expected = "quantum in progress")]
    fn advance_at_boundary_panics() {
        let mut rt = runtime(4);
        rt.advance_in_quantum(1);
    }

    #[test]
    #[should_panic(expected = "cross the")]
    fn advance_across_boundary_panics() {
        let mut rt = runtime(4);
        rt.on_heartbeat_idx(Some(30.0));
        rt.advance_in_quantum(4);
    }

    #[test]
    fn decision_display_mentions_gain() {
        let mut rt = runtime(4);
        let decision = rt.on_heartbeat(Some(30.0));
        assert!(decision.to_string().contains("gain"));
    }

    #[test]
    fn indexed_and_cloned_decisions_agree() {
        let mut by_index = runtime(4);
        let mut by_clone = runtime(4);
        for rate in [10.0, 15.0, 30.0, 45.0, 30.0, 5.0, 30.0, 30.0] {
            let indexed = by_index.on_heartbeat_idx(Some(rate));
            let cloned = by_clone.on_heartbeat(Some(rate));
            assert_eq!(by_index.table().point(indexed.point_idx), &cloned.point);
            assert_eq!(indexed.gain.to_bits(), cloned.gain.to_bits());
            assert_eq!(
                indexed.requested_speedup.to_bits(),
                cloned.requested_speedup.to_bits()
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::naive::NaivePowerDialRuntime;
    use powerdial_knobs::{ConfigParameter, ParameterSpace};
    use powerdial_qos::{QosLoss, QosLossBound};
    use proptest::prelude::*;

    fn arbitrary_table(speedups: &[f64]) -> KnobTable {
        let values: Vec<f64> = (0..speedups.len()).map(|i| i as f64).collect();
        let space = ParameterSpace::builder()
            .parameter(ConfigParameter::new("k", values, 0.0).unwrap())
            .build()
            .unwrap();
        let points = speedups
            .iter()
            .enumerate()
            .map(|(i, &s)| CalibrationPoint {
                setting_index: i,
                setting: space.setting(i).unwrap(),
                speedup: s,
                qos_loss: QosLoss::new((s - 1.0).max(0.0) * 0.01),
            })
            .collect();
        KnobTable::from_points(points, 0, QosLossBound::UNBOUNDED).unwrap()
    }

    proptest! {
        /// The index-based runtime plans beat-for-beat identical schedules
        /// to the pre-optimization clone-based expansion, across arbitrary
        /// tables, quanta, policies, and observed-rate sequences — the
        /// equivalence guarantee for the allocation-free rework.
        #[test]
        fn indexed_runtime_matches_naive_expansion(
            mut extra_speedups in proptest::collection::vec(1.05f64..40.0, 1..5),
            observed in proptest::collection::vec(2.0f64..90.0, 8..60),
            quantum in 1u32..12,
            race_to_idle in 0usize..2,
        ) {
            extra_speedups.sort_by(f64::total_cmp);
            let mut speedups = vec![1.0];
            speedups.extend(extra_speedups);
            let table = arbitrary_table(&speedups);

            let policy = if race_to_idle == 1 {
                ActuationPolicy::RaceToIdle
            } else {
                ActuationPolicy::MinimalSpeedup
            };
            let config = RuntimeConfig::new(ControllerConfig::new(30.0, 30.0).unwrap())
                .with_policy(policy)
                .with_quantum_heartbeats(quantum)
                .unwrap();

            let mut indexed = PowerDialRuntime::new(config, table.clone()).unwrap();
            let mut naive = NaivePowerDialRuntime::new(config, table).unwrap();

            for (beat, rate) in observed.iter().enumerate() {
                let fast = indexed.on_heartbeat_idx(Some(*rate));
                let slow = naive.on_heartbeat(Some(*rate));
                prop_assert_eq!(
                    indexed.table().point(fast.point_idx),
                    &slow.point,
                    "decision diverged at beat {}",
                    beat
                );
                prop_assert_eq!(fast.gain.to_bits(), slow.gain.to_bits());
                prop_assert_eq!(
                    fast.planned_idle_fraction.to_bits(),
                    slow.planned_idle_fraction.to_bits()
                );
                prop_assert_eq!(
                    fast.requested_speedup.to_bits(),
                    slow.requested_speedup.to_bits()
                );

                // The full planned quantum is identical, not just the beat
                // that happened to be returned.
                let planned: Vec<&CalibrationPoint> = indexed
                    .planned_beat_indices()
                    .iter()
                    .map(|&idx| indexed.table().point(idx))
                    .collect();
                let reference: Vec<&CalibrationPoint> =
                    naive.planned_beat_points().iter().collect();
                prop_assert_eq!(planned, reference);
            }
            prop_assert_eq!(indexed.quanta_planned(), naive.quanta_planned());
        }
    }
}
